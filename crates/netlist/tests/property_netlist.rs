//! Property-based tests of circuit generation, placement and extraction —
//! including the malformed-input contract: any corruption of a placement
//! file (truncation, duplicated lines, NaN coordinates) is either
//! harmless or surfaces as a typed [`NetlistError`], never a panic.

use leakage_cells::library::CellLibrary;
use leakage_cells::{CellId, UsageHistogram};
use leakage_fault::FaultPlan;
use leakage_netlist::extract::extract_characteristics;
use leakage_netlist::generate::RandomCircuitGenerator;
use leakage_netlist::placement::{place_in_die, PlacementStyle};
use leakage_netlist::{iscas85, NetlistError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn library() -> &'static CellLibrary {
    static LIB: OnceLock<CellLibrary> = OnceLock::new();
    LIB.get_or_init(CellLibrary::standard_62)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exact_generation_apportions_within_one(
        weights in proptest::collection::vec(0.0_f64..10.0, 2..10),
        n in 1usize..500,
        seed in 0u64..1000,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let hist = UsageHistogram::from_weights(weights.clone()).unwrap();
        let gen = RandomCircuitGenerator::new(hist.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let c = gen.generate_exact(n, &mut rng).unwrap();
        prop_assert_eq!(c.n_gates(), n);
        let mut counts = vec![0usize; weights.len()];
        for g in c.gates() {
            counts[g.0] += 1;
        }
        for (i, count) in counts.iter().enumerate() {
            let expect = hist.alpha(CellId(i)) * n as f64;
            prop_assert!(
                (*count as f64 - expect).abs() <= 1.0 + 1e-9,
                "type {i}: {count} vs {expect}"
            );
        }
    }

    #[test]
    fn placement_roundtrip_through_extraction(
        n in 1usize..200,
        seed in 0u64..1000,
        style_pick in 0usize..3,
        w in 20.0_f64..300.0,
        h in 20.0_f64..300.0,
    ) {
        let lib = library();
        let hist = UsageHistogram::uniform(lib.len()).unwrap();
        let gen = RandomCircuitGenerator::new(hist);
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = gen.generate(n, &mut rng).unwrap();
        let style = match style_pick {
            0 => PlacementStyle::RowMajor,
            1 => PlacementStyle::RandomShuffle { seed },
            _ => PlacementStyle::Clustered,
        };
        let placed = place_in_die(&circuit, style, w, h).unwrap();
        prop_assert_eq!(placed.n_gates(), n);
        // every gate strictly inside the die
        for g in placed.gates() {
            prop_assert!(g.x > 0.0 && g.x < placed.width());
            prop_assert!(g.y > 0.0 && g.y < placed.height());
        }
        // extraction recovers the circuit's histogram and count exactly
        let chars = extract_characteristics(&placed, lib.len(), 0.5).unwrap();
        prop_assert_eq!(chars.n_cells(), n);
        let direct = circuit.usage_histogram(lib.len()).unwrap();
        for i in 0..lib.len() {
            prop_assert!(
                (chars.histogram().alpha(CellId(i)) - direct.alpha(CellId(i))).abs() < 1e-12
            );
        }
        // die dimensions preserved through placement and extraction
        prop_assert!((chars.width() - placed.width()).abs() < 1e-9);
        prop_assert!((chars.height() - placed.height()).abs() < 1e-9);
    }

    #[test]
    fn io_roundtrip_random_designs(n in 1usize..60, seed in 0u64..500) {
        let lib = library();
        let hist = UsageHistogram::uniform(lib.len()).unwrap();
        let gen = RandomCircuitGenerator::new(hist);
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = gen.generate(n, &mut rng).unwrap();
        let placed = place_in_die(&circuit, PlacementStyle::RowMajor, 100.0, 100.0).unwrap();
        let mut buf = Vec::new();
        leakage_netlist::io::write_placement(&mut buf, &placed, lib).unwrap();
        let back = leakage_netlist::io::read_placement(buf.as_slice(), lib).unwrap();
        prop_assert_eq!(back.n_gates(), placed.n_gates());
        for (a, b) in back.gates().iter().zip(placed.gates()) {
            prop_assert_eq!(a.cell, b.cell);
            prop_assert!((a.x - b.x).abs() < 1e-12);
            prop_assert!((a.y - b.y).abs() < 1e-12);
        }
    }

    #[test]
    fn corrupted_random_placements_fail_typed_or_stay_valid(
        n in 1usize..60,
        gen_seed in 0u64..500,
        fault_seed in 0u64..10_000,
    ) {
        let lib = library();
        let hist = UsageHistogram::uniform(lib.len()).unwrap();
        let generator = RandomCircuitGenerator::new(hist);
        let mut rng = StdRng::seed_from_u64(gen_seed);
        let circuit = generator.generate(n, &mut rng).unwrap();
        let placed = place_in_die(&circuit, PlacementStyle::RowMajor, 100.0, 100.0).unwrap();
        let mut buf = Vec::new();
        leakage_netlist::io::write_placement(&mut buf, &placed, lib).unwrap();
        let clean = String::from_utf8(buf).unwrap();
        let plan = FaultPlan::new(fault_seed);
        for corrupted in [
            plan.truncated(&clean),
            plan.duplicated(&clean),
            plan.nan_number(&clean),
        ] {
            match leakage_netlist::io::read_placement(corrupted.as_bytes(), lib) {
                // A cut on a line boundary legitimately still parses; the
                // surviving prefix must at least honor the gate count.
                Ok(p) => prop_assert!(p.n_gates() <= placed.n_gates()),
                Err(NetlistError::InvalidArgument { reason }) => {
                    prop_assert!(!reason.is_empty());
                }
                Err(other) => prop_assert!(false, "untyped failure: {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_iscas85_placements_fail_typed_or_stay_valid(
        spec_pick in 0usize..10,
        fault_seed in 0u64..10_000,
    ) {
        let lib = library();
        let spec = &iscas85::TABLE1_SPECS[spec_pick % iscas85::TABLE1_SPECS.len()];
        let placed = iscas85::build(spec, lib).unwrap();
        let mut buf = Vec::new();
        leakage_netlist::io::write_placement(&mut buf, &placed, lib).unwrap();
        let clean = String::from_utf8(buf).unwrap();
        let plan = FaultPlan::new(fault_seed);
        for corrupted in [
            plan.truncated(&clean),
            plan.duplicated(&clean),
            plan.nan_number(&clean),
        ] {
            match leakage_netlist::io::read_placement(corrupted.as_bytes(), lib) {
                Ok(p) => prop_assert!(p.n_gates() <= placed.n_gates()),
                Err(NetlistError::InvalidArgument { reason }) => {
                    prop_assert!(!reason.is_empty());
                }
                Err(other) => prop_assert!(false, "untyped failure: {other:?}"),
            }
        }
    }

    #[test]
    fn duplicated_gate_lines_always_name_the_duplicate(
        n in 2usize..40,
        seed in 0u64..500,
    ) {
        let lib = library();
        let hist = UsageHistogram::uniform(lib.len()).unwrap();
        let generator = RandomCircuitGenerator::new(hist);
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = generator.generate(n, &mut rng).unwrap();
        let placed = place_in_die(&circuit, PlacementStyle::RowMajor, 100.0, 100.0).unwrap();
        let mut buf = Vec::new();
        leakage_netlist::io::write_placement(&mut buf, &placed, lib).unwrap();
        let clean = String::from_utf8(buf).unwrap();
        // Re-append a known gate line: the parser must refuse with the
        // duplicate instance name and a line number.
        let gate_line = clean.lines().nth(1).unwrap().to_owned();
        let corrupted = format!("{clean}{gate_line}\n");
        match leakage_netlist::io::read_placement(corrupted.as_bytes(), lib) {
            Err(NetlistError::InvalidArgument { reason }) => {
                prop_assert!(reason.contains("duplicate instance"), "{}", reason);
                prop_assert!(reason.contains("line"), "{}", reason);
            }
            other => prop_assert!(false, "expected duplicate rejection, got {other:?}"),
        }
    }

    #[test]
    fn nan_and_inf_coordinates_are_always_rejected(
        bad_pick in 0usize..4,
        xy_pick in 0usize..2,
    ) {
        let lib = library();
        let bad_token = ["NaN", "inf", "-inf", "nan"][bad_pick];
        let (x, y) = if xy_pick == 0 { (bad_token, "5.0") } else { ("5.0", bad_token) };
        let text = format!("design d 100.0 100.0\ng0 inv_x1 {x} {y}\n");
        match leakage_netlist::io::read_placement(text.as_bytes(), lib) {
            Err(NetlistError::InvalidArgument { reason }) => {
                prop_assert!(reason.contains("finite"), "{}", reason);
            }
            other => prop_assert!(false, "expected non-finite rejection, got {other:?}"),
        }
    }
}
