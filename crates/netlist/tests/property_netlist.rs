//! Property-based tests of circuit generation, placement and extraction.

use leakage_cells::library::CellLibrary;
use leakage_cells::{CellId, UsageHistogram};
use leakage_netlist::extract::extract_characteristics;
use leakage_netlist::generate::RandomCircuitGenerator;
use leakage_netlist::placement::{place_in_die, PlacementStyle};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn library() -> &'static CellLibrary {
    static LIB: OnceLock<CellLibrary> = OnceLock::new();
    LIB.get_or_init(CellLibrary::standard_62)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exact_generation_apportions_within_one(
        weights in proptest::collection::vec(0.0_f64..10.0, 2..10),
        n in 1usize..500,
        seed in 0u64..1000,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let hist = UsageHistogram::from_weights(weights.clone()).unwrap();
        let gen = RandomCircuitGenerator::new(hist.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let c = gen.generate_exact(n, &mut rng).unwrap();
        prop_assert_eq!(c.n_gates(), n);
        let mut counts = vec![0usize; weights.len()];
        for g in c.gates() {
            counts[g.0] += 1;
        }
        for (i, count) in counts.iter().enumerate() {
            let expect = hist.alpha(CellId(i)) * n as f64;
            prop_assert!(
                (*count as f64 - expect).abs() <= 1.0 + 1e-9,
                "type {i}: {count} vs {expect}"
            );
        }
    }

    #[test]
    fn placement_roundtrip_through_extraction(
        n in 1usize..200,
        seed in 0u64..1000,
        style_pick in 0usize..3,
        w in 20.0_f64..300.0,
        h in 20.0_f64..300.0,
    ) {
        let lib = library();
        let hist = UsageHistogram::uniform(lib.len()).unwrap();
        let gen = RandomCircuitGenerator::new(hist);
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = gen.generate(n, &mut rng).unwrap();
        let style = match style_pick {
            0 => PlacementStyle::RowMajor,
            1 => PlacementStyle::RandomShuffle { seed },
            _ => PlacementStyle::Clustered,
        };
        let placed = place_in_die(&circuit, style, w, h).unwrap();
        prop_assert_eq!(placed.n_gates(), n);
        // every gate strictly inside the die
        for g in placed.gates() {
            prop_assert!(g.x > 0.0 && g.x < placed.width());
            prop_assert!(g.y > 0.0 && g.y < placed.height());
        }
        // extraction recovers the circuit's histogram and count exactly
        let chars = extract_characteristics(&placed, lib.len(), 0.5).unwrap();
        prop_assert_eq!(chars.n_cells(), n);
        let direct = circuit.usage_histogram(lib.len()).unwrap();
        for i in 0..lib.len() {
            prop_assert!(
                (chars.histogram().alpha(CellId(i)) - direct.alpha(CellId(i))).abs() < 1e-12
            );
        }
        // die dimensions preserved through placement and extraction
        prop_assert!((chars.width() - placed.width()).abs() < 1e-9);
        prop_assert!((chars.height() - placed.height()).abs() < 1e-9);
    }

    #[test]
    fn io_roundtrip_random_designs(n in 1usize..60, seed in 0u64..500) {
        let lib = library();
        let hist = UsageHistogram::uniform(lib.len()).unwrap();
        let gen = RandomCircuitGenerator::new(hist);
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = gen.generate(n, &mut rng).unwrap();
        let placed = place_in_die(&circuit, PlacementStyle::RowMajor, 100.0, 100.0).unwrap();
        let mut buf = Vec::new();
        leakage_netlist::io::write_placement(&mut buf, &placed, lib).unwrap();
        let back = leakage_netlist::io::read_placement(buf.as_slice(), lib).unwrap();
        prop_assert_eq!(back.n_gates(), placed.n_gates());
        for (a, b) in back.gates().iter().zip(placed.gates()) {
            prop_assert_eq!(a.cell, b.cell);
            prop_assert!((a.x - b.x).abs() < 1e-12);
            prop_assert!((a.y - b.y).abs() < 1e-12);
        }
    }
}
