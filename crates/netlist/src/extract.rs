//! Late-mode extraction of high-level characteristics (§1, §3.1.1).
//!
//! Given a placed design, extraction recovers exactly the four
//! characteristics the Random Gate model consumes: the usage histogram,
//! the gate count, and the layout dimensions (the characterized library is
//! shared). This is the "late mode" entry into the estimation flow — the
//! extraction is a single pass over the instances, i.e. linear time,
//! matching the paper's footnote on extraction cost.

use crate::circuit::PlacedCircuit;
use crate::error::NetlistError;
use leakage_core::HighLevelCharacteristics;

/// Extracts the high-level characteristics of a placed design.
///
/// `library_len` is the number of types in the target library;
/// `signal_probability` is carried through to state weighting.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidArgument`] if a gate type falls outside
/// the library or the characteristics fail validation.
pub fn extract_characteristics(
    placed: &PlacedCircuit,
    library_len: usize,
    signal_probability: f64,
) -> Result<HighLevelCharacteristics, NetlistError> {
    let mut counts = vec![0.0; library_len];
    for g in placed.gates() {
        let slot = counts
            .get_mut(g.cell.0)
            .ok_or_else(|| NetlistError::InvalidArgument {
                reason: format!("gate type {} outside library of {library_len}", g.cell.0),
            })?;
        *slot += 1.0;
    }
    let histogram = leakage_cells::UsageHistogram::from_weights(counts)?;
    Ok(HighLevelCharacteristics::builder()
        .histogram(histogram)
        .n_cells(placed.n_gates())
        .die_dimensions(placed.width(), placed.height())
        .signal_probability(signal_probability)
        .build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_cells::CellId;
    use leakage_core::PlacedGate;

    fn placed() -> PlacedCircuit {
        PlacedCircuit::new(
            "t",
            vec![
                PlacedGate {
                    cell: CellId(0),
                    x: 1.0,
                    y: 1.0,
                },
                PlacedGate {
                    cell: CellId(0),
                    x: 2.0,
                    y: 1.0,
                },
                PlacedGate {
                    cell: CellId(2),
                    x: 3.0,
                    y: 1.0,
                },
            ],
            10.0,
            8.0,
        )
        .unwrap()
    }

    #[test]
    fn extraction_recovers_characteristics() {
        let chars = extract_characteristics(&placed(), 3, 0.5).unwrap();
        assert_eq!(chars.n_cells(), 3);
        assert_eq!(chars.width(), 10.0);
        assert_eq!(chars.height(), 8.0);
        assert!((chars.histogram().alpha(CellId(0)) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(chars.histogram().alpha(CellId(1)), 0.0);
        assert_eq!(chars.signal_probability(), 0.5);
    }

    #[test]
    fn extraction_rejects_small_library() {
        assert!(extract_characteristics(&placed(), 2, 0.5).is_err());
    }

    #[test]
    fn extraction_roundtrips_with_circuit_histogram() {
        let p = placed();
        let chars = extract_characteristics(&p, 5, 0.5).unwrap();
        let direct = crate::circuit::Circuit::new("t", p.gate_types())
            .unwrap()
            .usage_histogram(5)
            .unwrap();
        assert_eq!(chars.histogram().probs(), direct.probs());
    }
}
