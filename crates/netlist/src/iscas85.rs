//! Synthetic ISCAS85 benchmark suite (paper Table 1).
//!
//! The paper extracts high-level characteristics from placed-and-routed
//! ISCAS85 circuits. Those layouts are proprietary to their flow; what the
//! experiment consumes, however, is only (a) the gate count, (b) the
//! gate-type histogram, (c) placement coordinates and (d) die dimensions.
//! This module rebuilds equivalent designs from the *published* ISCAS85
//! gate counts and function mixes, mapped onto the 62-cell library, and
//! places them deterministically — preserving everything the Table 1
//! experiment actually measures.

use crate::circuit::{Circuit, PlacedCircuit};
use crate::error::NetlistError;
use crate::generate::RandomCircuitGenerator;
use crate::placement::{place, PlacementStyle};
use leakage_cells::library::CellLibrary;
use leakage_cells::UsageHistogram;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One benchmark: name, published total gate count, and a coarse function
/// mix as `(cell_name, weight)` pairs over the 62-cell library.
#[derive(Debug, Clone)]
pub struct Iscas85Spec {
    /// Benchmark name (e.g. `"c6288"`).
    pub name: &'static str,
    /// Published gate count.
    pub n_gates: usize,
    /// Gate-type mix as `(library cell name, relative weight)`.
    pub mix: &'static [(&'static str, f64)],
}

/// A generic random-logic mix used by most control-dominated benchmarks.
const CONTROL_MIX: &[(&str, f64)] = &[
    ("inv_x1", 20.0),
    ("inv_x2", 6.0),
    ("buf_x1", 6.0),
    ("nand2_x1", 24.0),
    ("nand3_x1", 8.0),
    ("nand4_x1", 4.0),
    ("nor2_x1", 14.0),
    ("nor3_x1", 4.0),
    ("and2_x1", 6.0),
    ("or2_x1", 4.0),
    ("aoi21_x1", 2.0),
    ("oai21_x1", 2.0),
];

/// The ECAT/parity circuits (c499/c1355/c1908) are XOR-rich.
const XOR_MIX: &[(&str, f64)] = &[
    ("inv_x1", 12.0),
    ("buf_x1", 6.0),
    ("xor2_x1", 28.0),
    ("xnor2_x1", 8.0),
    ("nand2_x1", 22.0),
    ("nor2_x1", 10.0),
    ("and2_x1", 10.0),
    ("or2_x1", 4.0),
];

/// c6288 is a 16×16 multiplier: almost entirely full/half adders realized
/// from AND/NOR in the original netlist.
const MULTIPLIER_MIX: &[(&str, f64)] = &[
    ("and2_x1", 30.0),
    ("nor2_x1", 50.0),
    ("inv_x1", 8.0),
    ("halfadder_x1", 6.0),
    ("fulladder_x1", 6.0),
];

/// The nine benchmarks of the paper's Table 1 with their published gate
/// counts.
pub const TABLE1_SPECS: &[Iscas85Spec] = &[
    Iscas85Spec {
        name: "c499",
        n_gates: 202,
        mix: XOR_MIX,
    },
    Iscas85Spec {
        name: "c1355",
        n_gates: 546,
        mix: XOR_MIX,
    },
    Iscas85Spec {
        name: "c432",
        n_gates: 160,
        mix: CONTROL_MIX,
    },
    Iscas85Spec {
        name: "c1908",
        n_gates: 880,
        mix: XOR_MIX,
    },
    Iscas85Spec {
        name: "c880",
        n_gates: 383,
        mix: CONTROL_MIX,
    },
    Iscas85Spec {
        name: "c2670",
        n_gates: 1193,
        mix: CONTROL_MIX,
    },
    Iscas85Spec {
        name: "c5315",
        n_gates: 2307,
        mix: CONTROL_MIX,
    },
    Iscas85Spec {
        name: "c7552",
        n_gates: 3512,
        mix: CONTROL_MIX,
    },
    Iscas85Spec {
        name: "c6288",
        n_gates: 2416,
        mix: MULTIPLIER_MIX,
    },
];

/// Builds the histogram of a spec over the given library.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidArgument`] if a mix entry names a cell
/// missing from the library.
pub fn spec_histogram(
    spec: &Iscas85Spec,
    library: &CellLibrary,
) -> Result<UsageHistogram, NetlistError> {
    let mut weights = vec![0.0; library.len()];
    for (name, w) in spec.mix {
        let cell = library
            .cell_by_name(name)
            .ok_or_else(|| NetlistError::InvalidArgument {
                reason: format!("mix cell {name} not in library"),
            })?;
        weights[cell.id().0] += w;
    }
    Ok(UsageHistogram::from_weights(weights)?)
}

/// Builds and places one benchmark (deterministic: the instance mix and
/// shuffle are seeded from the circuit name).
///
/// # Errors
///
/// Propagates histogram/placement failures.
pub fn build(spec: &Iscas85Spec, library: &CellLibrary) -> Result<PlacedCircuit, NetlistError> {
    let hist = spec_histogram(spec, library)?;
    let generator = RandomCircuitGenerator::new(hist);
    let seed = spec
        .name
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
    let mut rng = StdRng::seed_from_u64(seed);
    let circuit = generator.generate_exact(spec.n_gates, &mut rng)?;
    let circuit = Circuit::new(spec.name, circuit.gates().to_vec())?;
    place(
        &circuit,
        library,
        PlacementStyle::RandomShuffle { seed },
        0.7,
    )
}

/// Builds the whole Table 1 suite.
///
/// # Errors
///
/// Propagates per-benchmark failures.
pub fn build_suite(library: &CellLibrary) -> Result<Vec<PlacedCircuit>, NetlistError> {
    TABLE1_SPECS.iter().map(|s| build(s, library)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_published_gate_counts() {
        let lib = CellLibrary::standard_62();
        let suite = build_suite(&lib).unwrap();
        assert_eq!(suite.len(), 9);
        let counts: Vec<(String, usize)> = suite
            .iter()
            .map(|c| (c.name().to_owned(), c.n_gates()))
            .collect();
        for (name, n) in [
            ("c432", 160),
            ("c499", 202),
            ("c880", 383),
            ("c1355", 546),
            ("c1908", 880),
            ("c2670", 1193),
            ("c5315", 2307),
            ("c6288", 2416),
            ("c7552", 3512),
        ] {
            assert!(
                counts.iter().any(|(cn, cc)| cn == name && *cc == n),
                "{name} should have {n} gates, got {counts:?}"
            );
        }
    }

    #[test]
    fn build_is_deterministic() {
        let lib = CellLibrary::standard_62();
        let a = build(&TABLE1_SPECS[0], &lib).unwrap();
        let b = build(&TABLE1_SPECS[0], &lib).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn multiplier_mix_differs_from_control() {
        let lib = CellLibrary::standard_62();
        let c6288 = build(
            TABLE1_SPECS.iter().find(|s| s.name == "c6288").unwrap(),
            &lib,
        )
        .unwrap();
        let nor2 = lib.cell_by_name("nor2_x1").unwrap().id();
        let nor_count = c6288.gates().iter().filter(|g| g.cell == nor2).count();
        assert!(
            nor_count as f64 / c6288.n_gates() as f64 > 0.4,
            "multiplier is NOR-dominated"
        );
    }

    #[test]
    fn spec_histogram_rejects_unknown_cell() {
        let lib = CellLibrary::standard_62();
        let bad = Iscas85Spec {
            name: "bogus",
            n_gates: 10,
            mix: &[("not_a_cell", 1.0)],
        };
        assert!(spec_histogram(&bad, &lib).is_err());
    }

    #[test]
    fn die_grows_with_gate_count() {
        let lib = CellLibrary::standard_62();
        let small = build(
            TABLE1_SPECS.iter().find(|s| s.name == "c432").unwrap(),
            &lib,
        )
        .unwrap();
        let big = build(
            TABLE1_SPECS.iter().find(|s| s.name == "c7552").unwrap(),
            &lib,
        )
        .unwrap();
        assert!(big.width() * big.height() > 5.0 * small.width() * small.height());
    }
}
