//! Error type for circuit generation and placement.

use std::fmt;

/// Errors from circuit construction, placement, or extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// An argument was out of range or inconsistent.
    InvalidArgument {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A cell-library operation failed.
    Cells(leakage_cells::CellError),
    /// A core-model operation failed.
    Core(leakage_core::CoreError),
    /// A process-model operation failed.
    Process(leakage_process::ProcessError),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            NetlistError::Cells(e) => write!(f, "cell library failure: {e}"),
            NetlistError::Core(e) => write!(f, "core model failure: {e}"),
            NetlistError::Process(e) => write!(f, "process model failure: {e}"),
        }
    }
}

impl std::error::Error for NetlistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetlistError::Cells(e) => Some(e),
            NetlistError::Core(e) => Some(e),
            NetlistError::Process(e) => Some(e),
            _ => None,
        }
    }
}

impl From<leakage_cells::CellError> for NetlistError {
    fn from(e: leakage_cells::CellError) -> NetlistError {
        NetlistError::Cells(e)
    }
}

impl From<leakage_core::CoreError> for NetlistError {
    fn from(e: leakage_core::CoreError) -> NetlistError {
        NetlistError::Core(e)
    }
}

impl From<leakage_process::ProcessError> for NetlistError {
    fn from(e: leakage_process::ProcessError) -> NetlistError {
        NetlistError::Process(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_works() {
        let e = NetlistError::InvalidArgument {
            reason: "no gates".into(),
        };
        assert!(e.to_string().contains("no gates"));
    }
}
