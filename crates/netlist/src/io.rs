//! Plain-text placement interchange format.
//!
//! The late-mode flow needs to ingest *somebody else's* placed design. The
//! format is deliberately trivial (one header line, one line per
//! instance) so any placer can emit it with a ten-line script:
//!
//! ```text
//! # comment lines and blank lines are ignored
//! design <name> <die_width_um> <die_height_um>
//! <instance_name> <cell_name> <x_um> <y_um>
//! ...
//! ```
//!
//! Cell names resolve against the library at load time; unknown cells are
//! reported with their line number.

use crate::circuit::PlacedCircuit;
use crate::error::NetlistError;
use leakage_cells::library::CellLibrary;
use leakage_core::PlacedGate;
use std::collections::HashSet;
use std::io::{BufRead, Write};

/// Parses a placement from a reader.
///
/// A mutable reference to a reader can be passed (e.g. `&mut file`).
///
/// # Errors
///
/// Returns [`NetlistError::InvalidArgument`] with a line number for any
/// syntax problem, unknown cell, duplicate instance name, missing header,
/// or I/O failure.
pub fn read_placement<R: BufRead>(
    mut reader: R,
    library: &CellLibrary,
) -> Result<PlacedCircuit, NetlistError> {
    let mut line = String::new();
    let mut line_no = 0usize;
    let mut header: Option<(String, f64, f64)> = None;
    let mut gates: Vec<PlacedGate> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();

    loop {
        line.clear();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| NetlistError::InvalidArgument {
                reason: format!("i/o error on line {}: {e}", line_no + 1),
            })?;
        if read == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if header.is_none() {
            if fields.len() != 4 || fields[0] != "design" {
                return Err(NetlistError::InvalidArgument {
                    reason: format!("line {line_no}: expected 'design <name> <width> <height>'"),
                });
            }
            let width = parse_num(fields[2], line_no, "die width")?;
            let height = parse_num(fields[3], line_no, "die height")?;
            header = Some((fields[1].to_owned(), width, height));
            continue;
        }
        if fields.len() != 4 {
            return Err(NetlistError::InvalidArgument {
                reason: format!(
                    "line {line_no}: expected '<instance> <cell> <x> <y>', got {} fields",
                    fields.len()
                ),
            });
        }
        if !seen.insert(fields[0].to_owned()) {
            return Err(NetlistError::InvalidArgument {
                reason: format!("line {line_no}: duplicate instance '{}'", fields[0]),
            });
        }
        let cell =
            library
                .cell_by_name(fields[1])
                .ok_or_else(|| NetlistError::InvalidArgument {
                    reason: format!("line {line_no}: unknown cell '{}'", fields[1]),
                })?;
        let x = parse_num(fields[2], line_no, "x coordinate")?;
        let y = parse_num(fields[3], line_no, "y coordinate")?;
        gates.push(PlacedGate {
            cell: cell.id(),
            x,
            y,
        });
    }

    let (name, width, height) = header.ok_or_else(|| NetlistError::InvalidArgument {
        reason: "missing 'design' header line".into(),
    })?;
    PlacedCircuit::new(name, gates, width, height)
}

fn parse_num(s: &str, line_no: usize, what: &str) -> Result<f64, NetlistError> {
    let v: f64 = s.parse().map_err(|_| NetlistError::InvalidArgument {
        reason: format!("line {line_no}: cannot parse {what} '{s}'"),
    })?;
    if !v.is_finite() {
        return Err(NetlistError::InvalidArgument {
            reason: format!("line {line_no}: {what} must be finite"),
        });
    }
    Ok(v)
}

/// Writes a placement in the interchange format.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidArgument`] if a gate's type is missing
/// from the library or on I/O failure.
pub fn write_placement<W: Write>(
    mut writer: W,
    placed: &PlacedCircuit,
    library: &CellLibrary,
) -> Result<(), NetlistError> {
    let io_err = |e: std::io::Error| NetlistError::InvalidArgument {
        reason: format!("i/o error: {e}"),
    };
    writeln!(
        writer,
        "design {} {} {}",
        placed.name(),
        placed.width(),
        placed.height()
    )
    .map_err(io_err)?;
    for (i, g) in placed.gates().iter().enumerate() {
        let cell = library
            .cell(g.cell)
            .ok_or_else(|| NetlistError::InvalidArgument {
                reason: format!("gate {i}: type {} not in library", g.cell.0),
            })?;
        writeln!(writer, "u{i} {} {} {}", cell.name(), g.x, g.y).map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::RandomCircuitGenerator;
    use crate::placement::{place, PlacementStyle};
    use leakage_cells::UsageHistogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn library() -> CellLibrary {
        CellLibrary::standard_62()
    }

    #[test]
    fn roundtrip_preserves_placement() {
        let lib = library();
        let hist = UsageHistogram::uniform(lib.len()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let circuit = RandomCircuitGenerator::new(hist)
            .generate_exact(50, &mut rng)
            .unwrap();
        let placed = place(&circuit, &lib, PlacementStyle::RowMajor, 0.7).unwrap();

        let mut buf = Vec::new();
        write_placement(&mut buf, &placed, &lib).unwrap();
        let back = read_placement(buf.as_slice(), &lib).unwrap();
        assert_eq!(back.name(), placed.name());
        assert_eq!(back.n_gates(), placed.n_gates());
        assert_eq!(back.width(), placed.width());
        assert_eq!(back.height(), placed.height());
        for (a, b) in back.gates().iter().zip(placed.gates()) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.x, b.x);
            assert_eq!(a.y, b.y);
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let lib = library();
        let text = "# a placed design\n\ndesign tiny 10 10\n# the one gate\nu0 inv_x1 5 5\n";
        let placed = read_placement(text.as_bytes(), &lib).unwrap();
        assert_eq!(placed.name(), "tiny");
        assert_eq!(placed.n_gates(), 1);
        assert_eq!(
            placed.gates()[0].cell,
            lib.cell_by_name("inv_x1").unwrap().id()
        );
    }

    #[test]
    fn reports_unknown_cell_with_line_number() {
        let lib = library();
        let text = "design t 10 10\nu0 warpdrive_x9 1 1\n";
        let err = read_placement(text.as_bytes(), &lib).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("warpdrive_x9"), "{msg}");
    }

    #[test]
    fn rejects_missing_header() {
        let lib = library();
        let text = "u0 inv_x1 1 1\n";
        assert!(read_placement(text.as_bytes(), &lib).is_err());
        let empty = "";
        let err = read_placement(empty.as_bytes(), &lib).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn rejects_malformed_rows() {
        let lib = library();
        for bad in [
            "design t 10\nu0 inv_x1 1 1\n",    // short header
            "design t 10 10\nu0 inv_x1 1\n",   // short row
            "design t 10 10\nu0 inv_x1 a 1\n", // non-numeric
            "design t 10 10\nu0 inv_x1 inf 1\n",
            "design t ten 10\n",
        ] {
            assert!(read_placement(bad.as_bytes(), &lib).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn rejects_out_of_die_gate() {
        let lib = library();
        let text = "design t 10 10\nu0 inv_x1 50 1\n";
        assert!(read_placement(text.as_bytes(), &lib).is_err());
    }
}
