//! Placement of circuits onto the site grid.
//!
//! The Random Gate model predicts that, for fixed high-level
//! characteristics, leakage statistics are insensitive to *where* each
//! gate type lands — the placement styles here exist to test exactly that
//! claim (and they matter for the O(n²) "true leakage" of a specific
//! design, which does see positions).

use crate::circuit::{Circuit, PlacedCircuit};
use crate::error::NetlistError;
use leakage_cells::library::CellLibrary;
use leakage_core::PlacedGate;
use leakage_process::field::GridGeometry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How instances are assigned to grid sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementStyle {
    /// Instance order, row by row (what a naive placer produces).
    RowMajor,
    /// Random permutation of sites (seeded for reproducibility).
    RandomShuffle {
        /// Shuffle seed.
        seed: u64,
    },
    /// Same-type instances clustered contiguously (adversarial for the
    /// placement-independence claim: like types share nearby lengths).
    Clustered,
}

/// Places a circuit into an automatically sized near-square die.
///
/// The die area is the summed cell area divided by `utilization`
/// (`0 < utilization ≤ 1`); sites come from
/// [`GridGeometry::for_die`].
///
/// # Errors
///
/// Returns [`NetlistError::InvalidArgument`] for an invalid utilization or
/// a gate type missing from the library.
pub fn place(
    circuit: &Circuit,
    library: &CellLibrary,
    style: PlacementStyle,
    utilization: f64,
) -> Result<PlacedCircuit, NetlistError> {
    if !(utilization > 0.0 && utilization <= 1.0) {
        return Err(NetlistError::InvalidArgument {
            reason: format!("utilization must be in (0, 1], got {utilization}"),
        });
    }
    let mut total_area = 0.0;
    for id in circuit.gates() {
        let cell = library
            .cell(*id)
            .ok_or_else(|| NetlistError::InvalidArgument {
                reason: format!("gate type {} not in library", id.0),
            })?;
        total_area += cell.area_um2();
    }
    let die_area = total_area / utilization;
    let side = die_area.sqrt();
    place_in_die(circuit, style, side, side)
}

/// Places a circuit into an explicitly sized die.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidArgument`] for non-positive dimensions.
pub fn place_in_die(
    circuit: &Circuit,
    style: PlacementStyle,
    width: f64,
    height: f64,
) -> Result<PlacedCircuit, NetlistError> {
    let n = circuit.n_gates();
    let grid = GridGeometry::for_die(n, width, height)?;
    // Order the instances according to the style, then fill sites 0..n.
    let order: Vec<usize> = match style {
        PlacementStyle::RowMajor => (0..n).collect(),
        PlacementStyle::RandomShuffle { seed } => {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut StdRng::seed_from_u64(seed));
            order
        }
        PlacementStyle::Clustered => {
            let mut order: Vec<usize> = (0..n).collect();
            debug_assert!(n == circuit.gates().len(), "order indexes the gate list");
            order.sort_by_key(|i| circuit.gates()[*i].0);
            order
        }
    };
    let mut gates = Vec::with_capacity(n);
    for (site, inst) in order.iter().enumerate() {
        let row = site / grid.cols();
        let col = site % grid.cols();
        let (x, y) = grid.site_center(row, col);
        gates.push(PlacedGate {
            cell: circuit.gates()[*inst],
            x,
            y,
        });
    }
    // Instance order in the output follows site order; the circuit's type
    // multiset is preserved by construction.
    PlacedCircuit::new(circuit.name(), gates, grid.width(), grid.height())
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_cells::CellId;

    fn circuit(n: usize) -> Circuit {
        Circuit::new("t", (0..n).map(|i| CellId(i % 3)).collect()).unwrap()
    }

    #[test]
    fn place_in_die_covers_all_gates_in_bounds() {
        let c = circuit(100);
        let p = place_in_die(&c, PlacementStyle::RowMajor, 50.0, 50.0).unwrap();
        assert_eq!(p.n_gates(), 100);
        for g in p.gates() {
            assert!(g.x > 0.0 && g.x < p.width());
            assert!(g.y > 0.0 && g.y < p.height());
        }
    }

    #[test]
    fn placements_preserve_type_multiset() {
        let c = circuit(91);
        for style in [
            PlacementStyle::RowMajor,
            PlacementStyle::RandomShuffle { seed: 3 },
            PlacementStyle::Clustered,
        ] {
            let p = place_in_die(&c, style, 40.0, 40.0).unwrap();
            let mut orig: Vec<usize> = c.gates().iter().map(|g| g.0).collect();
            let mut placed: Vec<usize> = p.gates().iter().map(|g| g.cell.0).collect();
            orig.sort();
            placed.sort();
            assert_eq!(orig, placed, "style {style:?}");
        }
    }

    #[test]
    fn distinct_sites_for_distinct_gates() {
        let c = circuit(50);
        let p = place_in_die(&c, PlacementStyle::RandomShuffle { seed: 1 }, 30.0, 30.0).unwrap();
        let mut coords: Vec<(u64, u64)> = p
            .gates()
            .iter()
            .map(|g| (g.x.to_bits(), g.y.to_bits()))
            .collect();
        coords.sort();
        coords.dedup();
        assert_eq!(coords.len(), 50, "one site per gate");
    }

    #[test]
    fn clustered_groups_types() {
        let c = circuit(99);
        let p = place_in_die(&c, PlacementStyle::Clustered, 40.0, 40.0).unwrap();
        // site order must be sorted by type
        let types: Vec<usize> = p.gates().iter().map(|g| g.cell.0).collect();
        let mut sorted = types.clone();
        sorted.sort();
        assert_eq!(types, sorted);
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let c = circuit(60);
        let a = place_in_die(&c, PlacementStyle::RandomShuffle { seed: 9 }, 30.0, 30.0).unwrap();
        let b = place_in_die(&c, PlacementStyle::RandomShuffle { seed: 9 }, 30.0, 30.0).unwrap();
        assert_eq!(a, b);
        let c2 = place_in_die(&c, PlacementStyle::RandomShuffle { seed: 10 }, 30.0, 30.0).unwrap();
        assert_ne!(a, c2);
    }

    #[test]
    fn auto_sizing_uses_library_area() {
        let lib = leakage_cells::library::CellLibrary::standard_62();
        let c = Circuit::new("t", vec![CellId(0); 200]).unwrap();
        let p = place(&c, &lib, PlacementStyle::RowMajor, 0.7).unwrap();
        let cell_area = lib.cell(CellId(0)).unwrap().area_um2();
        let expect_area = 200.0 * cell_area / 0.7;
        let got = p.width() * p.height();
        assert!(
            (got - expect_area).abs() / expect_area < 0.1,
            "{got} vs {expect_area}"
        );
    }

    #[test]
    fn rejects_bad_utilization() {
        let lib = leakage_cells::library::CellLibrary::standard_62();
        let c = circuit(10);
        assert!(place(&c, &lib, PlacementStyle::RowMajor, 0.0).is_err());
        assert!(place(&c, &lib, PlacementStyle::RowMajor, 1.5).is_err());
    }
}
