//! Circuit containers: unplaced gate lists and placed designs.
//!
//! Leakage analysis consumes only what the paper's model consumes: the
//! gate *types*, their *positions*, and the die dimensions. Connectivity
//! does not enter the leakage statistics (it is absorbed by the signal
//! probabilities), so nets are deliberately not modeled.

use crate::error::NetlistError;
use leakage_cells::{CellId, UsageHistogram};
use leakage_core::PlacedGate;
use serde::{Deserialize, Serialize};

/// An unplaced circuit: a named bag of gate instances by type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    name: String,
    gates: Vec<CellId>,
}

impl Circuit {
    /// Creates a circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidArgument`] if the gate list is empty.
    pub fn new(name: impl Into<String>, gates: Vec<CellId>) -> Result<Circuit, NetlistError> {
        if gates.is_empty() {
            return Err(NetlistError::InvalidArgument {
                reason: "circuit must contain at least one gate".into(),
            });
        }
        Ok(Circuit {
            name: name.into(),
            gates,
        })
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Gate types, one entry per instance.
    pub fn gates(&self) -> &[CellId] {
        &self.gates
    }

    /// Number of gate instances.
    pub fn n_gates(&self) -> usize {
        self.gates.len()
    }

    /// The circuit's actual usage histogram over a library of
    /// `library_len` types.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidArgument`] if a gate id exceeds the
    /// library size.
    pub fn usage_histogram(&self, library_len: usize) -> Result<UsageHistogram, NetlistError> {
        let mut counts = vec![0.0; library_len];
        for g in &self.gates {
            let slot = counts
                .get_mut(g.0)
                .ok_or_else(|| NetlistError::InvalidArgument {
                    reason: format!("gate type {} outside library of {library_len}", g.0),
                })?;
            *slot += 1.0;
        }
        Ok(UsageHistogram::from_weights(counts)?)
    }
}

/// A placed circuit: gate instances with coordinates inside a die outline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedCircuit {
    name: String,
    gates: Vec<PlacedGate>,
    width: f64,
    height: f64,
}

impl PlacedCircuit {
    /// Creates a placed circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidArgument`] for an empty gate list,
    /// non-positive die dimensions, or gates outside the outline.
    pub fn new(
        name: impl Into<String>,
        gates: Vec<PlacedGate>,
        width: f64,
        height: f64,
    ) -> Result<PlacedCircuit, NetlistError> {
        if gates.is_empty() {
            return Err(NetlistError::InvalidArgument {
                reason: "placed circuit must contain at least one gate".into(),
            });
        }
        if !(width > 0.0 && height > 0.0) {
            return Err(NetlistError::InvalidArgument {
                reason: format!("die dimensions must be positive, got {width} x {height}"),
            });
        }
        for (i, g) in gates.iter().enumerate() {
            if g.x < 0.0 || g.x > width || g.y < 0.0 || g.y > height {
                return Err(NetlistError::InvalidArgument {
                    reason: format!(
                        "gate {i} at ({}, {}) lies outside the {width} x {height} die",
                        g.x, g.y
                    ),
                });
            }
        }
        Ok(PlacedCircuit {
            name: name.into(),
            gates,
            width,
            height,
        })
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The placed instances.
    pub fn gates(&self) -> &[PlacedGate] {
        &self.gates
    }

    /// Number of gate instances.
    pub fn n_gates(&self) -> usize {
        self.gates.len()
    }

    /// Die width (µm).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Die height (µm).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Gate types in instance order (drops coordinates).
    pub fn gate_types(&self) -> Vec<CellId> {
        self.gates.iter().map(|g| g.cell).collect()
    }

    /// Columnar (struct-of-arrays) view of the placement for the tiled
    /// O(n²) kernel. Coordinates round-trip bit-for-bit.
    pub fn placement_soa(&self) -> leakage_core::PlacementSoA {
        leakage_core::PlacementSoA::from_gates(&self.gates)
    }

    /// Distinct types used, sorted.
    pub fn support(&self) -> Vec<CellId> {
        let mut ids: Vec<CellId> = self.gates.iter().map(|g| g.cell).collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuit_histogram_counts() {
        let c = Circuit::new("t", vec![CellId(0), CellId(0), CellId(2), CellId(0)]).unwrap();
        let h = c.usage_histogram(3).unwrap();
        assert!((h.alpha(CellId(0)) - 0.75).abs() < 1e-12);
        assert_eq!(h.alpha(CellId(1)), 0.0);
        assert!((h.alpha(CellId(2)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn circuit_rejects_empty_and_out_of_range() {
        assert!(Circuit::new("t", vec![]).is_err());
        let c = Circuit::new("t", vec![CellId(9)]).unwrap();
        assert!(c.usage_histogram(3).is_err());
    }

    #[test]
    fn placement_soa_round_trips_placed_gates() {
        let gates: Vec<PlacedGate> = (0..37)
            .map(|i| PlacedGate {
                cell: CellId(i % 3),
                x: 0.1 + i as f64 * 0.73,
                y: 0.2 + (i % 7) as f64 * 1.31,
            })
            .collect();
        let pc = PlacedCircuit::new("t", gates.clone(), 100.0, 100.0).unwrap();
        let soa = pc.placement_soa();
        assert_eq!(soa.len(), gates.len());
        for (i, g) in gates.iter().enumerate() {
            let r = soa.gate(i);
            assert_eq!(g.cell, r.cell);
            assert_eq!(g.x.to_bits(), r.x.to_bits());
            assert_eq!(g.y.to_bits(), r.y.to_bits());
        }
    }

    #[test]
    fn placed_circuit_validates_bounds() {
        let ok = PlacedCircuit::new(
            "t",
            vec![PlacedGate {
                cell: CellId(0),
                x: 5.0,
                y: 5.0,
            }],
            10.0,
            10.0,
        );
        assert!(ok.is_ok());
        let bad = PlacedCircuit::new(
            "t",
            vec![PlacedGate {
                cell: CellId(0),
                x: 15.0,
                y: 5.0,
            }],
            10.0,
            10.0,
        );
        assert!(bad.is_err());
        assert!(PlacedCircuit::new("t", vec![], 10.0, 10.0).is_err());
    }

    #[test]
    fn support_is_sorted_unique() {
        let p = PlacedCircuit::new(
            "t",
            vec![
                PlacedGate {
                    cell: CellId(3),
                    x: 1.0,
                    y: 1.0,
                },
                PlacedGate {
                    cell: CellId(1),
                    x: 2.0,
                    y: 1.0,
                },
                PlacedGate {
                    cell: CellId(3),
                    x: 3.0,
                    y: 1.0,
                },
            ],
            10.0,
            10.0,
        )
        .unwrap();
        assert_eq!(p.support(), vec![CellId(1), CellId(3)]);
    }
}
