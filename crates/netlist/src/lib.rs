//! Gate-level circuits for validating the Random Gate model.
//!
//! The paper's validation (§3.1.1) uses two circuit populations:
//!
//! 1. **randomly generated circuits** matching an a-priori cell-usage
//!    histogram, placed and routed, whose "true" (O(n²)) leakage is
//!    compared against the Random Gate estimate as the gate count grows
//!    (Fig. 6);
//! 2. the **ISCAS85 benchmarks**, from which the high-level
//!    characteristics are *extracted* and fed to the model (Table 1).
//!
//! The original ISCAS85 layouts are not shippable, so [`iscas85`] builds a
//! synthetic suite with the published gate counts and realistic gate-type
//! mixes mapped onto the 62-cell library; what the experiments consume —
//! gate count, histogram, placement coordinates, die dimensions — is fully
//! determined by those public parameters.
//!
//! # Example
//!
//! ```
//! use leakage_cells::library::CellLibrary;
//! use leakage_cells::UsageHistogram;
//! use leakage_netlist::generate::RandomCircuitGenerator;
//! use leakage_netlist::placement::{place, PlacementStyle};
//! use rand::SeedableRng;
//!
//! let lib = CellLibrary::standard_62();
//! let hist = UsageHistogram::uniform(62)?;
//! let gen = RandomCircuitGenerator::new(hist);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let circuit = gen.generate_exact(1000, &mut rng)?;
//! let placed = place(&circuit, &lib, PlacementStyle::RowMajor, 0.7)?;
//! assert_eq!(placed.gates().len(), 1000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `!(x > 0.0)`-style comparisons deliberately treat NaN as invalid input;
// rewriting them per clippy would silently accept NaN. Index-based loops in
// the math kernels mirror the paper's summation notation.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod circuit;
pub mod error;
pub mod extract;
pub mod generate;
pub mod io;
pub mod iscas85;
pub mod placement;

pub use circuit::{Circuit, PlacedCircuit};
pub use error::NetlistError;
