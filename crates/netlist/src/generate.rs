//! Random circuit generation matching a target usage histogram (§3.1.1).

use crate::circuit::Circuit;
use crate::error::NetlistError;
use leakage_cells::{CellId, UsageHistogram};
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates random circuits whose cell mix follows a target histogram.
///
/// Two modes mirror the two ways a "random design with given
/// characteristics" can be construed:
///
/// * [`RandomCircuitGenerator::generate`] — every gate type is an i.i.d.
///   draw from the histogram (the circuit's *empirical* histogram
///   fluctuates around the target, shrinking as `1/√n`);
/// * [`RandomCircuitGenerator::generate_exact`] — type counts match the
///   target exactly (largest-remainder rounding), with the instance order
///   shuffled.
#[derive(Debug, Clone)]
pub struct RandomCircuitGenerator {
    histogram: UsageHistogram,
    counter: std::cell::Cell<u64>,
}

impl RandomCircuitGenerator {
    /// Creates a generator for the target histogram.
    pub fn new(histogram: UsageHistogram) -> RandomCircuitGenerator {
        RandomCircuitGenerator {
            histogram,
            counter: std::cell::Cell::new(0),
        }
    }

    /// The target histogram.
    pub fn histogram(&self) -> &UsageHistogram {
        &self.histogram
    }

    fn next_name(&self, prefix: &str, n: usize) -> String {
        let k = self.counter.get();
        self.counter.set(k + 1);
        format!("{prefix}_{n}g_{k}")
    }

    /// Generates a circuit of `n` i.i.d. gates.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidArgument`] if `n == 0`.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Circuit, NetlistError> {
        if n == 0 {
            return Err(NetlistError::InvalidArgument {
                reason: "cannot generate an empty circuit".into(),
            });
        }
        let gates: Vec<CellId> = (0..n).map(|_| self.histogram.sample(rng)).collect();
        Circuit::new(self.next_name("rand", n), gates)
    }

    /// Generates a circuit of exactly `n` gates whose type counts match
    /// `round(αᵢ·n)` with largest-remainder correction, shuffled.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidArgument`] if `n == 0`.
    pub fn generate_exact<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Circuit, NetlistError> {
        if n == 0 {
            return Err(NetlistError::InvalidArgument {
                reason: "cannot generate an empty circuit".into(),
            });
        }
        // Largest-remainder apportionment of n instances to types.
        let probs = self.histogram.probs();
        let mut counts: Vec<usize> = Vec::with_capacity(probs.len());
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(probs.len());
        let mut assigned = 0usize;
        for (i, p) in probs.iter().enumerate() {
            let exactly = p * n as f64;
            let floor = exactly.floor() as usize;
            counts.push(floor);
            assigned += floor;
            remainders.push((i, exactly - floor as f64));
        }
        remainders.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (i, _) in remainders.iter().take(n - assigned) {
            counts[*i] += 1;
        }
        let mut gates: Vec<CellId> = Vec::with_capacity(n);
        for (i, c) in counts.iter().enumerate() {
            gates.extend(std::iter::repeat_n(CellId(i), *c));
        }
        gates.shuffle(rng);
        Circuit::new(self.next_name("randx", n), gates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hist() -> UsageHistogram {
        UsageHistogram::from_weights(vec![1.0, 3.0, 0.0, 4.0]).unwrap()
    }

    #[test]
    fn iid_generation_approximates_histogram() {
        let g = RandomCircuitGenerator::new(hist());
        let mut rng = StdRng::seed_from_u64(5);
        let c = g.generate(50_000, &mut rng).unwrap();
        let h = c.usage_histogram(4).unwrap();
        assert!((h.alpha(CellId(1)) - 0.375).abs() < 0.01);
        assert_eq!(h.alpha(CellId(2)), 0.0);
    }

    #[test]
    fn exact_generation_matches_counts() {
        let g = RandomCircuitGenerator::new(hist());
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1usize, 7, 100, 1234] {
            let c = g.generate_exact(n, &mut rng).unwrap();
            assert_eq!(c.n_gates(), n);
            let mut counts = [0usize; 4];
            for gate in c.gates() {
                counts[gate.0] += 1;
            }
            // exact apportionment: each count within 1 of α·n
            for (i, alpha) in [0.125, 0.375, 0.0, 0.5].iter().enumerate() {
                let expect = alpha * n as f64;
                assert!(
                    (counts[i] as f64 - expect).abs() < 1.0 + 1e-9,
                    "n={n}, type {i}: {} vs {expect}",
                    counts[i]
                );
            }
        }
    }

    #[test]
    fn exact_generation_is_shuffled() {
        let g = RandomCircuitGenerator::new(UsageHistogram::uniform(2).unwrap());
        let mut rng = StdRng::seed_from_u64(5);
        let c = g.generate_exact(100, &mut rng).unwrap();
        // If unshuffled, the first 50 would all be type 0.
        let first_half_type0 = c.gates()[..50].iter().filter(|g| g.0 == 0).count();
        assert!(first_half_type0 < 40, "gates are interleaved");
    }

    #[test]
    fn names_are_unique() {
        let g = RandomCircuitGenerator::new(hist());
        let mut rng = StdRng::seed_from_u64(5);
        let a = g.generate(10, &mut rng).unwrap();
        let b = g.generate(10, &mut rng).unwrap();
        assert_ne!(a.name(), b.name());
    }

    #[test]
    fn zero_gate_request_rejected() {
        let g = RandomCircuitGenerator::new(hist());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(g.generate(0, &mut rng).is_err());
        assert!(g.generate_exact(0, &mut rng).is_err());
    }
}
