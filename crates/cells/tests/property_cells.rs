//! Property-based tests of the cell-model layer on synthetic
//! characterizations (no transistor solves — these check the statistical
//! algebra, not the simulator).

use leakage_cells::corrmap::{cell_leakage_covariance, CorrelationPolicy};
use leakage_cells::library::CellId;
use leakage_cells::model::{CharacterizedCell, StateModel};
use leakage_cells::state::{per_input_state_probabilities, state_probabilities};
use leakage_cells::{LeakageTriplet, UsageHistogram};
use proptest::prelude::*;

const SIGMA: f64 = 4.5;

fn triplet_strategy() -> impl Strategy<Value = LeakageTriplet> {
    (1e-10_f64..1e-8, -0.09_f64..-0.02, 1e-5_f64..1e-3)
        .prop_map(|(a, b, c)| LeakageTriplet::new(a, b, c).expect("valid"))
}

fn cell_strategy(n_inputs: usize) -> impl Strategy<Value = CharacterizedCell> {
    proptest::collection::vec(triplet_strategy(), 1 << n_inputs).prop_map(move |ts| {
        CharacterizedCell {
            id: CellId(0),
            name: format!("syn{n_inputs}"),
            n_inputs,
            states: ts
                .into_iter()
                .enumerate()
                .map(|(s, t)| StateModel {
                    state: s as u32,
                    mean: t.mean(SIGMA).expect("finite"),
                    std: t.std(SIGMA).expect("finite"),
                    triplet: Some(t),
                    fit_r2: Some(1.0),
                })
                .collect(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mixture_mean_between_state_extremes(
        cell in (0usize..3).prop_flat_map(cell_strategy),
        p in 0.0_f64..=1.0,
    ) {
        let probs = state_probabilities(cell.n_inputs, p).unwrap();
        let (mean, std) = cell.mixture_stats(&probs).unwrap();
        let lo = cell.min_leakage_state().mean;
        let hi = cell.max_leakage_state().mean;
        prop_assert!(mean >= lo - 1e-18 && mean <= hi + 1e-18);
        prop_assert!(std >= 0.0);
        prop_assert!(cell.state_spread() >= 1.0);
    }

    #[test]
    fn mixture_variance_at_least_weighted_state_variance(
        cell in (1usize..3).prop_flat_map(cell_strategy),
        p in 0.0_f64..=1.0,
    ) {
        // Law of total variance: Var ≥ E[Var | state].
        let probs = state_probabilities(cell.n_inputs, p).unwrap();
        let (_, std) = cell.mixture_stats(&probs).unwrap();
        let within: f64 = cell
            .states
            .iter()
            .zip(&probs)
            .map(|(s, q)| q * s.std * s.std)
            .sum();
        prop_assert!(std * std >= within - 1e-24);
    }

    #[test]
    fn covariance_policies_agree_at_zero_and_bounded(
        ca in (0usize..2).prop_flat_map(cell_strategy),
        cb in (0usize..2).prop_flat_map(cell_strategy),
        p in 0.1_f64..0.9,
        rho in 0.0_f64..=1.0,
    ) {
        let pa = state_probabilities(ca.n_inputs, p).unwrap();
        let pb = state_probabilities(cb.n_inputs, p).unwrap();
        let exact = cell_leakage_covariance(
            &ca, &pa, &cb, &pb, SIGMA, rho, CorrelationPolicy::Exact,
        ).unwrap();
        let simple = cell_leakage_covariance(
            &ca, &pa, &cb, &pb, SIGMA, rho, CorrelationPolicy::Simplified,
        ).unwrap();
        if rho == 0.0 {
            prop_assert!(exact.abs() < 1e-24);
            prop_assert!(simple.abs() < 1e-24);
        }
        prop_assert!(exact >= -1e-24, "non-negative for non-negative rho");
        // Both are bounded by the product of mixture stds (Cauchy–Schwarz).
        let (_, sa) = ca.mixture_stats(&pa).unwrap();
        let (_, sb) = cb.mixture_stats(&pb).unwrap();
        prop_assert!(exact <= sa * sb * (1.0 + 1e-9));
        prop_assert!(simple <= sa * sb * (1.0 + 1e-9));
        // The mapping bows under the identity: exact ≤ simplified for ρ≥0.
        prop_assert!(exact <= simple + sa * sb * 1e-9);
    }

    #[test]
    fn per_input_probabilities_marginalize_correctly(
        ps in proptest::collection::vec(0.0_f64..=1.0, 1..4),
    ) {
        let probs = per_input_state_probabilities(&ps).unwrap();
        // Marginal of input i over all states recovers ps[i].
        for (i, want) in ps.iter().enumerate() {
            let marginal: f64 = probs
                .iter()
                .enumerate()
                .filter(|(s, _)| (s >> i) & 1 == 1)
                .map(|(_, q)| q)
                .sum();
            prop_assert!((marginal - want).abs() < 1e-12, "input {i}");
        }
    }

    #[test]
    fn histogram_normalization_invariant(
        weights in proptest::collection::vec(0.0_f64..100.0, 1..12),
        scale in 0.001_f64..1000.0,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let h1 = UsageHistogram::from_weights(weights.clone()).unwrap();
        let scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let h2 = UsageHistogram::from_weights(scaled).unwrap();
        for i in 0..weights.len() {
            prop_assert!((h1.alpha(CellId(i)) - h2.alpha(CellId(i))).abs() < 1e-12);
        }
    }
}
