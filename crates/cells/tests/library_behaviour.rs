//! Behavioural invariants of the characterized 62-cell library — the
//! physics every standard-cell library must exhibit. These run on the
//! analytical characterization (7-point fits, shared across tests).

use leakage_cells::charax::{CharMethod, Characterizer};
use leakage_cells::library::{CellClass, CellLibrary};
use leakage_cells::model::CharacterizedLibrary;
use leakage_process::Technology;
use std::sync::OnceLock;

struct Ctx {
    lib: CellLibrary,
    charlib: CharacterizedLibrary,
}

fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| {
        let tech = Technology::cmos90();
        let lib = CellLibrary::standard_62();
        let charlib = Characterizer::new(&tech)
            .characterize_library(&lib, CharMethod::Analytical { sweep_points: 7 })
            .expect("characterization");
        Ctx { lib, charlib }
    })
}

fn mean_at_state0(name: &str) -> f64 {
    let ctx = ctx();
    let cell = ctx.lib.cell_by_name(name).expect("cell");
    ctx.charlib.cell(cell.id()).expect("model").states[0].mean
}

#[test]
fn drive_strength_scales_leakage_monotonically() {
    // Wider devices leak more — across every drive family.
    for family in ["inv", "nand2", "nor2", "buf", "mux2", "dff"] {
        let mut prev = 0.0;
        for d in [1, 2, 4, 8, 16] {
            let name = format!("{family}_x{d}");
            if ctx().lib.cell_by_name(&name).is_none() {
                continue;
            }
            let mean = mean_at_state0(&name);
            assert!(mean > prev, "{name}: {mean} !> {prev}");
            prev = mean;
        }
    }
}

#[test]
fn inverter_drive_scaling_is_roughly_linear() {
    let x1 = mean_at_state0("inv_x1");
    let x4 = mean_at_state0("inv_x4");
    let x16 = mean_at_state0("inv_x16");
    assert!((x4 / x1 - 4.0).abs() < 0.8, "x4/x1 = {}", x4 / x1);
    assert!((x16 / x4 - 4.0).abs() < 0.8, "x16/x4 = {}", x16 / x4);
}

#[test]
fn nand_stack_state_is_always_the_quietest() {
    let ctx = ctx();
    for name in ["nand2_x1", "nand3_x1", "nand4_x1"] {
        let cell = ctx.lib.cell_by_name(name).expect("cell");
        let model = ctx.charlib.cell(cell.id()).expect("model");
        assert_eq!(
            model.min_leakage_state().state,
            0,
            "{name}: full NMOS stack (all inputs low) must leak least"
        );
    }
}

#[test]
fn nor_stack_state_is_always_the_quietest() {
    let ctx = ctx();
    for name in ["nor2_x1", "nor3_x1", "nor4_x1"] {
        let cell = ctx.lib.cell_by_name(name).expect("cell");
        let model = ctx.charlib.cell(cell.id()).expect("model");
        let all_high = cell.n_states() - 1;
        assert_eq!(
            model.min_leakage_state().state,
            all_high,
            "{name}: full PMOS stack (all inputs high) must leak least"
        );
    }
}

#[test]
fn deeper_stacks_leak_less() {
    // all-inputs-low NANDs: nand4 < nand3 < nand2 in the stacked state.
    let n2 = mean_at_state0("nand2_x1");
    let n3 = mean_at_state0("nand3_x1");
    let n4 = mean_at_state0("nand4_x1");
    assert!(n3 < n2, "nand3 stack {n3} < nand2 stack {n2}");
    assert!(n4 < n3, "nand4 stack {n4} < nand3 stack {n3}");
}

#[test]
fn buffer_leaks_more_than_its_first_stage() {
    // A buffer is an x1 inverter plus a drive-d output stage, so it must
    // leak more than a lone x1 inverter in every state (the comparison
    // with inv_xd is not an invariant: the output stage sees the
    // *complemented* input, and off-PMOS leaks less than off-NMOS).
    let ctx = ctx();
    let inv = ctx.lib.cell_by_name("inv_x1").expect("cell");
    let inv_states = &ctx.charlib.cell(inv.id()).expect("model").states;
    for d in [1, 2, 4, 8] {
        let buf = ctx.lib.cell_by_name(&format!("buf_x{d}")).expect("cell");
        let buf_states = &ctx.charlib.cell(buf.id()).expect("model").states;
        for s in 0..2 {
            assert!(
                buf_states[s].mean > inv_states[s].mean,
                "buf_x{d} state {s}: {} vs inv_x1 {}",
                buf_states[s].mean,
                inv_states[s].mean
            );
        }
    }
}

#[test]
fn sequential_cells_leak_more_than_simple_gates() {
    let dff = mean_at_state0("dff_x1");
    let nand = mean_at_state0("nand2_x1");
    assert!(
        dff > 2.0 * nand,
        "18T flip-flop vs 4T nand: {dff} vs {nand}"
    );
}

#[test]
fn state_spreads_match_paper_magnitudes() {
    // The paper (§2.1.4) reports single-gate spreads up to ~10×; complex
    // stacked gates can exceed that, inverters must stay small.
    let ctx = ctx();
    let inv = ctx.lib.cell_by_name("inv_x1").expect("cell");
    let spread = ctx.charlib.cell(inv.id()).expect("model").state_spread();
    assert!(spread < 5.0, "inverter spread {spread}");
    let mut max_spread = 0.0_f64;
    for cell in ctx.lib.cells() {
        max_spread = max_spread.max(ctx.charlib.cell(cell.id()).expect("model").state_spread());
    }
    assert!(max_spread > 8.0, "library max spread {max_spread}");
}

#[test]
fn relative_sigma_is_similar_across_cells() {
    // All cells see the same underlying L distribution, and ln I has
    // similar slope b across topologies, so σ/μ should cluster.
    let ctx = ctx();
    let mut rels: Vec<f64> = Vec::new();
    for cell in ctx.lib.cells() {
        let s = &ctx.charlib.cell(cell.id()).expect("model").states[0];
        rels.push(s.std / s.mean);
    }
    let lo = rels.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = rels.iter().cloned().fold(0.0, f64::max);
    assert!(lo > 0.15 && hi < 0.60, "σ/μ spread [{lo}, {hi}]");
}

#[test]
fn every_class_has_sane_magnitudes() {
    let ctx = ctx();
    for cell in ctx.lib.cells() {
        let model = ctx.charlib.cell(cell.id()).expect("model");
        for s in &model.states {
            assert!(
                s.mean > 1e-11 && s.mean < 1e-6,
                "{} [{:?}] state {}: mean {}",
                cell.name(),
                cell.class(),
                s.state,
                s.mean
            );
        }
    }
    // reference the class enum so the import is used meaningfully
    assert_eq!(
        ctx.lib.cell_by_name("sram6t").expect("cell").class(),
        CellClass::Sram
    );
}
