//! Characterized-library persistence: the JSON the `chipleak` CLI writes
//! must round-trip losslessly — a corrupted or hand-edited library file
//! must be rejected, not silently misread.

use leakage_cells::charax::{CharMethod, Characterizer};
use leakage_cells::library::CellLibrary;
use leakage_cells::model::CharacterizedLibrary;
use leakage_process::Technology;

fn small_characterization() -> CharacterizedLibrary {
    // Characterize a handful of cells only — enough structure, fast tests.
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    let charax = Characterizer::new(&tech);
    let mut cells = Vec::new();
    for name in ["inv_x1", "nand2_x1", "xor2_x1"] {
        let cell = lib.cell_by_name(name).expect("known cell");
        cells.push(
            charax
                .characterize_cell(cell, CharMethod::Analytical { sweep_points: 7 })
                .expect("characterization"),
        );
    }
    CharacterizedLibrary {
        cells,
        l_sigma: charax.l_sigma(),
    }
}

#[test]
fn json_roundtrip_is_lossless() {
    let charlib = small_characterization();
    let json = serde_json::to_string(&charlib).expect("serialize");
    let back: CharacterizedLibrary = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, charlib);
    // Spot-check the semantic payload survives.
    let orig = &charlib.cells[0].states[0];
    let restored = &back.cells[0].states[0];
    assert_eq!(orig.mean, restored.mean);
    assert_eq!(
        orig.triplet.expect("analytical").b(),
        restored.triplet.expect("analytical").b()
    );
}

#[test]
fn malformed_json_is_rejected() {
    assert!(serde_json::from_str::<CharacterizedLibrary>("{}").is_err());
    assert!(serde_json::from_str::<CharacterizedLibrary>("not json at all").is_err());
    // Field with the wrong type.
    let bad = r#"{"cells": "nope", "l_sigma": 4.5}"#;
    assert!(serde_json::from_str::<CharacterizedLibrary>(bad).is_err());
}

#[test]
fn pretty_and_compact_forms_agree() {
    let charlib = small_characterization();
    let compact = serde_json::to_string(&charlib).expect("serialize");
    let pretty = serde_json::to_string_pretty(&charlib).expect("serialize");
    let a: CharacterizedLibrary = serde_json::from_str(&compact).expect("deserialize");
    let b: CharacterizedLibrary = serde_json::from_str(&pretty).expect("deserialize");
    assert_eq!(a, b);
}
