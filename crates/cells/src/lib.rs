//! Standard-cell library with statistical leakage characterization.
//!
//! This crate is the in-repo substitute for the commercial 90 nm library
//! the paper characterizes (§2.1): 62 cells spanning inverters/buffers,
//! NAND/NOR/AND/OR up to 4 inputs, AOI/OAI complex gates, XOR/XNOR,
//! multiplexers, tristate buffers, latches, flip-flops, adders and the
//! 6-T SRAM cell, each at one or more drive strengths.
//!
//! Two characterization paths, as in the paper:
//!
//! * **Monte-Carlo** ([`charax::Characterizer::mc_state`]) — sample the
//!   channel length (fully correlated within a cell), solve the DC leakage,
//!   accumulate statistics;
//! * **Analytical** ([`charax::Characterizer::fit_state`]) — fit
//!   `X = a·exp(bL + cL²)` on a small L sweep, then obtain moments exactly
//!   from the non-central-χ² MGF (paper Eqs. 1–5).
//!
//! The analytical triplets also yield the leakage-correlation mapping
//! `ρ_{m,n} = f_{m,n}(ρ_L)` of §2.1.3 ([`corrmap`]), and the per-state
//! data supports the signal-probability analysis of §2.1.4 ([`state`]).
//!
//! # Example
//!
//! ```
//! use leakage_cells::library::CellLibrary;
//!
//! let lib = CellLibrary::standard_62();
//! assert_eq!(lib.len(), 62);
//! assert!(lib.cell_by_name("nand2_x1").is_some());
//! ```

// `!(x > 0.0)`-style comparisons deliberately treat NaN as invalid input;
// rewriting them per clippy would silently accept NaN. Index-based loops in
// the math kernels mirror the paper's summation notation.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod charax;
pub mod corrmap;
pub mod error;
pub mod histogram;
pub mod library;
pub mod model;
pub mod presets;
pub mod state;

pub use error::CellError;
pub use histogram::UsageHistogram;
pub use library::{CellId, CellLibrary};
pub use model::{CharacterizedCell, CharacterizedLibrary, LeakageTriplet};
