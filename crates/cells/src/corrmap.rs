//! The leakage-correlation mapping `ρ_{m,n} = f_{m,n}(ρ_L)` (§2.1.3).
//!
//! The paper states that an analytical mapping from channel-length
//! correlation to leakage correlation exists for fitted cells but omits
//! the derivation. We derive it exactly: for two cells with triplets
//! `(a_m, b_m, c_m)` and `(a_n, b_n, c_n)` and bivariate-normal `ΔL`s
//! with correlation `ρ_L`,
//!
//! ```text
//! E[X_m X_n] = a_m a_n · E[exp(b_m L₁ + c_m L₁² + b_n L₂ + c_n L₂²)]
//! ```
//!
//! is the MGF of a Gaussian quadratic form with a closed 2×2 solution
//! ([`leakage_numeric::quadform::bivariate_exp_quadratic_mean`]). The
//! resulting `f_{m,n}` hugs the `y = x` line (paper Fig. 2), motivating
//! the *simplified assumption* `ρ_{m,n} ≈ ρ_L` (§3.1.2) used when only
//! Monte-Carlo statistics are available.

use crate::error::CellError;
use crate::model::{CharacterizedCell, LeakageTriplet};
use leakage_numeric::quadform::{bivariate_exp_quadratic_mean, gaussian_quadratic_mgf};
use serde::{Deserialize, Serialize};

/// How pairwise leakage correlation is derived from length correlation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorrelationPolicy {
    /// Exact analytical mapping from the fitted triplets (§2.1.3).
    Exact,
    /// `ρ_{m,n} = ρ_L` (paper §3.1.2; error < 2.8 % in the full-chip std).
    Simplified,
}

/// Correlations this close to ±1 are clamped before the bivariate solve;
/// beyond it the 2×2 inversion loses too many digits and the univariate
/// limit is used instead.
const RHO_CLAMP: f64 = 1.0 - 1e-7;

/// Exact `E[X_m X_n]` for two fitted states under length correlation
/// `ρ_L ∈ [-1, 1]`.
///
/// # Errors
///
/// Returns an error if the expectation diverges (MGF condition violated).
pub fn cross_moment(
    tm: &LeakageTriplet,
    tn: &LeakageTriplet,
    sigma: f64,
    rho_l: f64,
) -> Result<f64, CellError> {
    if !(-1.0..=1.0).contains(&rho_l) {
        return Err(CellError::InvalidArgument {
            reason: format!("length correlation must be in [-1, 1], got {rho_l}"),
        });
    }
    if sigma == 0.0 {
        return Ok(tm.eval(0.0) * tn.eval(0.0));
    }
    let scale = tm.a() * tn.a();
    if rho_l >= RHO_CLAMP {
        // Perfectly correlated: one Gaussian drives both exponents.
        let v = gaussian_quadratic_mgf(1.0, tm.c() + tn.c(), tm.b() + tn.b(), 0.0, 0.0, sigma)?;
        return Ok(scale * v);
    }
    if rho_l <= -RHO_CLAMP {
        // Anti-correlated: L₂ = −L₁.
        let v = gaussian_quadratic_mgf(1.0, tm.c() + tn.c(), tm.b() - tn.b(), 0.0, 0.0, sigma)?;
        return Ok(scale * v);
    }
    let v = bivariate_exp_quadratic_mean(
        tm.c(),
        tm.b(),
        tn.c(),
        tn.b(),
        0.0,
        0.0,
        sigma,
        sigma,
        rho_l,
    )?;
    Ok(scale * v)
}

/// Exact leakage correlation `f_{m,n}(ρ_L)` between two fitted states.
///
/// # Errors
///
/// Propagates moment-computation failures.
pub fn state_leakage_correlation(
    tm: &LeakageTriplet,
    tn: &LeakageTriplet,
    sigma: f64,
    rho_l: f64,
) -> Result<f64, CellError> {
    let mm = tm.mean(sigma)?;
    let mn = tn.mean(sigma)?;
    let sm = tm.std(sigma)?;
    let sn = tn.std(sigma)?;
    if sm == 0.0 || sn == 0.0 {
        return Ok(0.0);
    }
    let cov = cross_moment(tm, tn, sigma, rho_l)? - mm * mn;
    Ok((cov / (sm * sn)).clamp(-1.0, 1.0))
}

/// Leakage covariance between two cells whose input states follow the
/// given probability mixtures, under length correlation `ρ_L`.
///
/// The gate-selection and state spaces are independent of the process
/// space (§2.2.3), so
/// `E[X_m X_n] = Σ_s Σ_t π_s π_t E[X_m^s X_n^t]` and
/// `Cov = E[X_m X_n] − μ_m μ_n` with mixture means.
///
/// With [`CorrelationPolicy::Simplified`] the per-state-pair correlation
/// is taken as `ρ_L`, so the covariance collapses to
/// `ρ_L · σ̄_m · σ̄_n` with `σ̄ = Σ_s π_s σ^s` the state-weighted
/// *within-state* standard deviation. (Between-state variance never
/// correlates across sites — the two instances draw their states
/// independently — so the mixture std must not appear here.) This is also
/// the only option when triplets are absent (Monte-Carlo
/// characterization).
///
/// # Errors
///
/// Returns [`CellError::InvalidArgument`] if the exact policy is requested
/// but a state lacks a triplet, or the probability vectors are malformed.
#[allow(clippy::too_many_arguments)]
pub fn cell_leakage_covariance(
    cm: &CharacterizedCell,
    probs_m: &[f64],
    cn: &CharacterizedCell,
    probs_n: &[f64],
    sigma: f64,
    rho_l: f64,
    policy: CorrelationPolicy,
) -> Result<f64, CellError> {
    let (mean_m, _) = cm.mixture_stats(probs_m)?;
    let (mean_n, _) = cn.mixture_stats(probs_n)?;
    match policy {
        CorrelationPolicy::Simplified => {
            let sbar_m: f64 = cm.states.iter().zip(probs_m).map(|(s, p)| p * s.std).sum();
            let sbar_n: f64 = cn.states.iter().zip(probs_n).map(|(s, p)| p * s.std).sum();
            Ok(rho_l * sbar_m * sbar_n)
        }
        CorrelationPolicy::Exact => {
            let mut cross = 0.0;
            for (sm, pm) in cm.states.iter().zip(probs_m) {
                if *pm == 0.0 {
                    continue;
                }
                let tm = sm
                    .triplet
                    .as_ref()
                    .ok_or_else(|| CellError::InvalidArgument {
                        reason: format!(
                            "{} state {} has no fitted triplet; use the simplified policy",
                            cm.name, sm.state
                        ),
                    })?;
                for (sn, pn) in cn.states.iter().zip(probs_n) {
                    if *pn == 0.0 {
                        continue;
                    }
                    let tn = sn
                        .triplet
                        .as_ref()
                        .ok_or_else(|| CellError::InvalidArgument {
                            reason: format!(
                                "{} state {} has no fitted triplet; use the simplified policy",
                                cn.name, sn.state
                            ),
                        })?;
                    cross += pm * pn * cross_moment(tm, tn, sigma, rho_l)?;
                }
            }
            Ok(cross - mean_m * mean_n)
        }
    }
}

/// Leakage correlation between two cells (covariance normalized by the
/// mixture standard deviations), clamped to `[-1, 1]`.
///
/// # Errors
///
/// See [`cell_leakage_covariance`].
#[allow(clippy::too_many_arguments)]
pub fn cell_leakage_correlation(
    cm: &CharacterizedCell,
    probs_m: &[f64],
    cn: &CharacterizedCell,
    probs_n: &[f64],
    sigma: f64,
    rho_l: f64,
    policy: CorrelationPolicy,
) -> Result<f64, CellError> {
    let (_, std_m) = cm.mixture_stats(probs_m)?;
    let (_, std_n) = cn.mixture_stats(probs_n)?;
    if std_m == 0.0 || std_n == 0.0 {
        return Ok(0.0);
    }
    let cov = cell_leakage_covariance(cm, probs_m, cn, probs_n, sigma, rho_l, policy)?;
    Ok((cov / (std_m * std_n)).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellId;
    use crate::model::StateModel;

    // Magnitudes matching the characterized library: |b| ≈ rolloff/(n·V_T)
    // ≈ 0.057 per nm, so b·σ ≈ 0.26 — moderate lognormality, which is what
    // keeps f_{m,n} near the y = x line in the paper's Fig. 2.
    fn triplets() -> (LeakageTriplet, LeakageTriplet) {
        (
            LeakageTriplet::new(1e-9, -0.060, 0.0009).unwrap(),
            LeakageTriplet::new(3e-9, -0.050, 0.0006).unwrap(),
        )
    }

    const SIGMA: f64 = 4.5;

    #[test]
    fn cross_moment_at_zero_correlation_factorizes() {
        let (tm, tn) = triplets();
        let joint = cross_moment(&tm, &tn, SIGMA, 0.0).unwrap();
        let product = tm.mean(SIGMA).unwrap() * tn.mean(SIGMA).unwrap();
        assert!((joint - product).abs() / product < 1e-10);
    }

    #[test]
    fn cross_moment_at_unit_correlation_matches_combined_mgf() {
        let (tm, _) = triplets();
        // m with itself at ρ = 1 must equal E[X²].
        let joint = cross_moment(&tm, &tm, SIGMA, 1.0).unwrap();
        let second = tm.second_moment(SIGMA).unwrap();
        assert!((joint - second).abs() / second < 1e-10);
    }

    #[test]
    fn correlation_endpoints() {
        let (tm, tn) = triplets();
        let rho0 = state_leakage_correlation(&tm, &tn, SIGMA, 0.0).unwrap();
        assert!(rho0.abs() < 1e-9);
        let rho1 = state_leakage_correlation(&tm, &tm, SIGMA, 1.0).unwrap();
        assert!((rho1 - 1.0).abs() < 1e-9, "self at ρ=1 is 1, got {rho1}");
    }

    #[test]
    fn mapping_hugs_identity_line() {
        // The paper's Fig. 2 observation: f_{m,n}(ρ) ≈ ρ.
        let (tm, tn) = triplets();
        for i in 1..10 {
            let rho = i as f64 / 10.0;
            let f = state_leakage_correlation(&tm, &tn, SIGMA, rho).unwrap();
            assert!(
                (f - rho).abs() < 0.08,
                "f({rho}) = {f} strays from identity"
            );
        }
    }

    #[test]
    fn mapping_is_monotone() {
        let (tm, tn) = triplets();
        let mut prev = -2.0;
        for i in 0..=20 {
            let rho = i as f64 / 20.0;
            let f = state_leakage_correlation(&tm, &tn, SIGMA, rho).unwrap();
            assert!(f > prev, "monotone at ρ = {rho}");
            prev = f;
        }
    }

    #[test]
    fn cross_moment_rejects_out_of_range() {
        let (tm, tn) = triplets();
        assert!(cross_moment(&tm, &tn, SIGMA, 1.5).is_err());
        assert!(cross_moment(&tm, &tn, SIGMA, -1.5).is_err());
    }

    fn cell_from(triplet: LeakageTriplet, name: &str) -> CharacterizedCell {
        CharacterizedCell {
            id: CellId(0),
            name: name.into(),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: triplet.mean(SIGMA).unwrap(),
                std: triplet.std(SIGMA).unwrap(),
                triplet: Some(triplet),
                fit_r2: Some(1.0),
            }],
        }
    }

    #[test]
    fn cell_covariance_single_state_matches_state_level() {
        let (tm, tn) = triplets();
        let cm = cell_from(tm, "m");
        let cn = cell_from(tn, "n");
        let rho = 0.6;
        let cov = cell_leakage_covariance(
            &cm,
            &[1.0],
            &cn,
            &[1.0],
            SIGMA,
            rho,
            CorrelationPolicy::Exact,
        )
        .unwrap();
        let expect = cross_moment(&tm, &tn, SIGMA, rho).unwrap()
            - tm.mean(SIGMA).unwrap() * tn.mean(SIGMA).unwrap();
        assert!((cov - expect).abs() / expect.abs() < 1e-12);
    }

    #[test]
    fn simplified_policy_equals_rho_sigma_product() {
        let (tm, tn) = triplets();
        let cm = cell_from(tm, "m");
        let cn = cell_from(tn, "n");
        let cov = cell_leakage_covariance(
            &cm,
            &[1.0],
            &cn,
            &[1.0],
            SIGMA,
            0.5,
            CorrelationPolicy::Simplified,
        )
        .unwrap();
        let expect = 0.5 * tm.std(SIGMA).unwrap() * tn.std(SIGMA).unwrap();
        assert!((cov - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn exact_policy_requires_triplets() {
        let (tm, tn) = triplets();
        let cm = cell_from(tm, "m");
        let mut cn = cell_from(tn, "n");
        cn.states[0].triplet = None;
        assert!(cell_leakage_covariance(
            &cm,
            &[1.0],
            &cn,
            &[1.0],
            SIGMA,
            0.5,
            CorrelationPolicy::Exact
        )
        .is_err());
        // ... but simplified still works
        assert!(cell_leakage_covariance(
            &cm,
            &[1.0],
            &cn,
            &[1.0],
            SIGMA,
            0.5,
            CorrelationPolicy::Simplified
        )
        .is_ok());
    }

    #[test]
    fn exact_and_simplified_agree_closely() {
        // This is the quantitative basis of §3.1.2's < 2.8 % claim.
        let (tm, tn) = triplets();
        let cm = cell_from(tm, "m");
        let cn = cell_from(tn, "n");
        for i in 0..=10 {
            let rho = i as f64 / 10.0;
            let exact = cell_leakage_correlation(
                &cm,
                &[1.0],
                &cn,
                &[1.0],
                SIGMA,
                rho,
                CorrelationPolicy::Exact,
            )
            .unwrap();
            assert!((exact - rho).abs() < 0.08, "ρ = {rho}: exact = {exact}");
        }
    }
}
