//! Cell-usage histograms (the frequency-of-use distribution `α`).
//!
//! The usage histogram is one of the four high-level characteristics the
//! paper shows to determine full-chip leakage: `α_i = P{I = i}` is the
//! probability that a random gate drawn from the design is of type `i`
//! (paper Eq. 6).

use crate::error::CellError;
use crate::library::CellId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A normalized frequency-of-use distribution over library cells.
///
/// # Example
///
/// ```
/// use leakage_cells::{CellId, UsageHistogram};
///
/// let h = UsageHistogram::from_weights(vec![3.0, 1.0])?;
/// assert!((h.alpha(CellId(0)) - 0.75).abs() < 1e-12);
/// assert!((h.alpha(CellId(1)) - 0.25).abs() < 1e-12);
/// # Ok::<(), leakage_cells::CellError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageHistogram {
    probs: Vec<f64>,
    cumulative: Vec<f64>,
}

impl UsageHistogram {
    /// Uniform usage across `len` cell types.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InvalidArgument`] if `len == 0`.
    pub fn uniform(len: usize) -> Result<UsageHistogram, CellError> {
        UsageHistogram::from_weights(vec![1.0; len])
    }

    /// Builds a histogram by normalizing non-negative weights (e.g. raw
    /// instance counts), indexed by [`CellId`].
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InvalidArgument`] for an empty weight vector,
    /// negative/non-finite weights, or an all-zero total.
    pub fn from_weights(weights: Vec<f64>) -> Result<UsageHistogram, CellError> {
        if weights.is_empty() {
            return Err(CellError::InvalidArgument {
                reason: "histogram must cover at least one cell".into(),
            });
        }
        if weights.iter().any(|w| !(*w >= 0.0) || !w.is_finite()) {
            return Err(CellError::InvalidArgument {
                reason: "weights must be finite and non-negative".into(),
            });
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(CellError::InvalidArgument {
                reason: "at least one weight must be positive".into(),
            });
        }
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in &probs {
            acc += p;
            cumulative.push(acc);
        }
        // Guard against rounding: the last entry must be exactly 1.
        // chipleak-lint: allow(l5): probs is validated non-empty at fn entry
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Ok(UsageHistogram { probs, cumulative })
    }

    /// Builds a histogram from `(CellId, count)` pairs over a library of
    /// `library_len` cells; unmentioned cells get zero usage.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InvalidArgument`] if an id is out of range or
    /// all counts are zero.
    pub fn from_counts(
        library_len: usize,
        counts: &[(CellId, u64)],
    ) -> Result<UsageHistogram, CellError> {
        let mut weights = vec![0.0; library_len];
        for (id, count) in counts {
            let slot = weights
                .get_mut(id.0)
                .ok_or_else(|| CellError::InvalidArgument {
                    reason: format!("cell id {} out of range for library of {library_len}", id.0),
                })?;
            *slot += *count as f64;
        }
        UsageHistogram::from_weights(weights)
    }

    /// Usage probability `α_i` of a cell (0 for out-of-range ids).
    pub fn alpha(&self, id: CellId) -> f64 {
        self.probs.get(id.0).copied().unwrap_or(0.0)
    }

    /// All probabilities, indexed by cell id.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of cell types covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the histogram covers no cells.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Ids with non-zero usage.
    pub fn support(&self) -> Vec<CellId> {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, p)| **p > 0.0)
            .map(|(i, _)| CellId(i))
            .collect()
    }

    /// Draws a random cell id according to the distribution — this is the
    /// sampling step that turns the Random Gate abstraction into concrete
    /// design instances.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> CellId {
        let u: f64 = rng.gen();
        let idx = self
            .cumulative
            .partition_point(|&c| c < u)
            .min(self.probs.len() - 1);
        CellId(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_is_uniform() {
        let h = UsageHistogram::uniform(4).unwrap();
        for i in 0..4 {
            assert!((h.alpha(CellId(i)) - 0.25).abs() < 1e-12);
        }
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn from_weights_normalizes() {
        let h = UsageHistogram::from_weights(vec![2.0, 6.0]).unwrap();
        assert!((h.alpha(CellId(0)) - 0.25).abs() < 1e-12);
        assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_counts_accumulates() {
        let h = UsageHistogram::from_counts(3, &[(CellId(0), 1), (CellId(2), 2), (CellId(0), 1)])
            .unwrap();
        assert!((h.alpha(CellId(0)) - 0.5).abs() < 1e-12);
        assert_eq!(h.alpha(CellId(1)), 0.0);
        assert!((h.alpha(CellId(2)) - 0.5).abs() < 1e-12);
        assert_eq!(h.support(), vec![CellId(0), CellId(2)]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(UsageHistogram::from_weights(vec![]).is_err());
        assert!(UsageHistogram::from_weights(vec![-1.0, 2.0]).is_err());
        assert!(UsageHistogram::from_weights(vec![0.0, 0.0]).is_err());
        assert!(UsageHistogram::from_weights(vec![f64::NAN]).is_err());
        assert!(UsageHistogram::from_counts(2, &[(CellId(5), 1)]).is_err());
        assert!(UsageHistogram::uniform(0).is_err());
    }

    #[test]
    fn out_of_range_alpha_is_zero() {
        let h = UsageHistogram::uniform(2).unwrap();
        assert_eq!(h.alpha(CellId(99)), 0.0);
    }

    #[test]
    fn sampling_matches_distribution() {
        let h = UsageHistogram::from_weights(vec![1.0, 3.0, 0.0, 4.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(123);
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[h.sample(&mut rng).0] += 1;
        }
        assert_eq!(counts[2], 0, "zero-probability cell never sampled");
        for (i, expect) in [(0usize, 0.125), (1, 0.375), (3, 0.5)] {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - expect).abs() < 0.01, "cell {i}: {freq} vs {expect}");
        }
    }

    #[test]
    fn sample_handles_edge_uniform() {
        let h = UsageHistogram::uniform(1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(h.sample(&mut rng), CellId(0));
        }
    }
}
