//! Input states and signal probabilities (paper §2.1.4).
//!
//! Each cell is characterized for *all* input states; the probability of
//! a state follows from the signal probabilities of the inputs (assumed
//! independent). The paper's conservative policy is implemented in
//! [`max_mean_signal_probability`]: sweep a global signal probability and
//! keep the setting that maximizes the design's mean leakage.

use crate::error::CellError;
use crate::histogram::UsageHistogram;
use crate::model::CharacterizedLibrary;

/// State probabilities for a cell with `n_inputs` pins when every input
/// has (independent) probability `p` of being logic 1. Entry `s` is
/// `P{state = s} = p^{popcount(s)} (1−p)^{n−popcount(s)}`.
///
/// # Errors
///
/// Returns [`CellError::InvalidArgument`] if `p ∉ [0, 1]` or
/// `n_inputs ≥ 32`.
///
/// # Example
///
/// ```
/// let probs = leakage_cells::state::state_probabilities(2, 0.5)?;
/// assert_eq!(probs.len(), 4);
/// assert!(probs.iter().all(|p| (p - 0.25).abs() < 1e-12));
/// # Ok::<(), leakage_cells::CellError>(())
/// ```
pub fn state_probabilities(n_inputs: usize, p: f64) -> Result<Vec<f64>, CellError> {
    per_input_state_probabilities(&vec![p; n_inputs])
}

/// State probabilities when each input pin `i` has its own probability
/// `ps[i]` of being logic 1.
///
/// # Errors
///
/// Returns [`CellError::InvalidArgument`] if any probability is outside
/// `[0, 1]` or there are 32+ inputs.
pub fn per_input_state_probabilities(ps: &[f64]) -> Result<Vec<f64>, CellError> {
    if ps.len() >= 32 {
        return Err(CellError::InvalidArgument {
            reason: format!("{} inputs is not a standard cell", ps.len()),
        });
    }
    if ps.iter().any(|p| !(0.0..=1.0).contains(p)) {
        return Err(CellError::InvalidArgument {
            reason: "signal probabilities must lie in [0, 1]".into(),
        });
    }
    let n_states = 1usize << ps.len();
    let mut out = Vec::with_capacity(n_states);
    for s in 0..n_states {
        let mut prob = 1.0;
        for (i, p) in ps.iter().enumerate() {
            prob *= if (s >> i) & 1 == 1 { *p } else { 1.0 - *p };
        }
        out.push(prob);
    }
    Ok(out)
}

/// Design-level leakage mean and std at a global signal probability `p`:
/// the histogram-weighted mixture over cells and their input states
/// (paper Eqs. 7–8 with state-probability-weighted cell statistics).
///
/// # Errors
///
/// Returns [`CellError::InvalidArgument`] if the histogram and library
/// lengths disagree or `p` is out of range.
pub fn design_stats_at_probability(
    lib: &CharacterizedLibrary,
    histogram: &UsageHistogram,
    p: f64,
) -> Result<(f64, f64), CellError> {
    if histogram.len() != lib.len() {
        return Err(CellError::InvalidArgument {
            reason: format!(
                "histogram covers {} cells, library has {}",
                histogram.len(),
                lib.len()
            ),
        });
    }
    let mut mean = 0.0;
    let mut second = 0.0;
    for (cell, alpha) in lib.cells.iter().zip(histogram.probs()) {
        if *alpha == 0.0 {
            continue;
        }
        let probs = state_probabilities(cell.n_inputs, p)?;
        let (m, s) = cell.mixture_stats(&probs)?;
        mean += alpha * m;
        second += alpha * (s * s + m * m);
    }
    Ok((mean, (second - mean * mean).max(0.0).sqrt()))
}

/// Result of the conservative signal-probability search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalProbabilityOptimum {
    /// The maximizing global signal probability.
    pub p: f64,
    /// Design mean leakage at the optimum (A per gate).
    pub mean: f64,
    /// Design leakage standard deviation at the optimum (A per gate).
    pub std: f64,
}

/// Finds the global signal probability in `[0, 1]` that maximizes the
/// design's mean leakage (the paper's conservative setting, §2.1.4),
/// by evaluating `grid_points ≥ 2` equally spaced candidates.
///
/// # Errors
///
/// Returns [`CellError::InvalidArgument`] for a degenerate grid or
/// mismatched histogram.
pub fn max_mean_signal_probability(
    lib: &CharacterizedLibrary,
    histogram: &UsageHistogram,
    grid_points: usize,
) -> Result<SignalProbabilityOptimum, CellError> {
    if grid_points < 2 {
        return Err(CellError::InvalidArgument {
            reason: "need at least two grid points".into(),
        });
    }
    let mut best: Option<SignalProbabilityOptimum> = None;
    for i in 0..grid_points {
        let p = i as f64 / (grid_points - 1) as f64;
        let (mean, std) = design_stats_at_probability(lib, histogram, p)?;
        if best.is_none_or(|b| mean > b.mean) {
            best = Some(SignalProbabilityOptimum { p, mean, std });
        }
    }
    // chipleak-lint: allow(l5): loop above runs grid_points >= 2 iterations, so best is Some
    Ok(best.expect("grid_points >= 2 guarantees at least one candidate"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellId;
    use crate::model::{CharacterizedCell, StateModel};

    #[test]
    fn state_probabilities_sum_to_one() {
        for n in 0..5 {
            for p in [0.0, 0.3, 0.5, 1.0] {
                let probs = state_probabilities(n, p).unwrap();
                assert_eq!(probs.len(), 1 << n);
                let total: f64 = probs.iter().sum();
                assert!((total - 1.0).abs() < 1e-12, "n={n}, p={p}");
            }
        }
    }

    #[test]
    fn extreme_probabilities_are_deterministic() {
        let probs = state_probabilities(3, 1.0).unwrap();
        assert_eq!(probs[7], 1.0);
        assert!(probs[..7].iter().all(|p| *p == 0.0));
        let probs = state_probabilities(3, 0.0).unwrap();
        assert_eq!(probs[0], 1.0);
    }

    #[test]
    fn per_input_probabilities() {
        let probs = per_input_state_probabilities(&[1.0, 0.0]).unwrap();
        // state bit0 = input0 = 1, bit1 = input1 = 0 -> state 0b01
        assert_eq!(probs[0b01], 1.0);
        assert_eq!(probs.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn rejects_invalid_probabilities() {
        assert!(state_probabilities(2, -0.1).is_err());
        assert!(state_probabilities(2, 1.5).is_err());
        assert!(per_input_state_probabilities(&[0.5; 32]).is_err());
    }

    fn toy_library() -> CharacterizedLibrary {
        // One inverter-like cell: leaks more when input is 0.
        let cell = CharacterizedCell {
            id: CellId(0),
            name: "inv".into(),
            n_inputs: 1,
            states: vec![
                StateModel {
                    state: 0,
                    triplet: None,
                    mean: 10.0,
                    std: 2.0,
                    fit_r2: None,
                },
                StateModel {
                    state: 1,
                    triplet: None,
                    mean: 2.0,
                    std: 0.5,
                    fit_r2: None,
                },
            ],
        };
        CharacterizedLibrary {
            cells: vec![cell],
            l_sigma: 4.5,
        }
    }

    #[test]
    fn design_stats_interpolate_between_states() {
        let lib = toy_library();
        let h = UsageHistogram::uniform(1).unwrap();
        let (m0, _) = design_stats_at_probability(&lib, &h, 0.0).unwrap();
        let (m1, _) = design_stats_at_probability(&lib, &h, 1.0).unwrap();
        let (mh, _) = design_stats_at_probability(&lib, &h, 0.5).unwrap();
        assert_eq!(m0, 10.0);
        assert_eq!(m1, 2.0);
        assert!((mh - 6.0).abs() < 1e-12);
    }

    #[test]
    fn optimum_finds_leakiest_setting() {
        let lib = toy_library();
        let h = UsageHistogram::uniform(1).unwrap();
        let opt = max_mean_signal_probability(&lib, &h, 11).unwrap();
        assert_eq!(opt.p, 0.0, "input low maximizes inverter leakage");
        assert_eq!(opt.mean, 10.0);
    }

    #[test]
    fn optimum_rejects_degenerate_grid() {
        let lib = toy_library();
        let h = UsageHistogram::uniform(1).unwrap();
        assert!(max_mean_signal_probability(&lib, &h, 1).is_err());
    }

    #[test]
    fn design_stats_reject_mismatch() {
        let lib = toy_library();
        let h = UsageHistogram::uniform(2).unwrap();
        assert!(design_stats_at_probability(&lib, &h, 0.5).is_err());
    }
}
