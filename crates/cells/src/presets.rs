//! Usage-histogram presets for early-mode estimation.
//!
//! Before a netlist exists, the usage histogram is an *expected* quantity
//! (paper §1: "specified as expected values based on previous design
//! experience"). These presets encode the gate mixes of common design
//! styles so planning sweeps have realistic starting points.

use crate::error::CellError;
use crate::histogram::UsageHistogram;
use crate::library::CellLibrary;

fn from_mix(lib: &CellLibrary, mix: &[(&str, f64)]) -> Result<UsageHistogram, CellError> {
    let mut weights = vec![0.0; lib.len()];
    for (name, w) in mix {
        let cell = lib
            .cell_by_name(name)
            .ok_or_else(|| CellError::UnknownCell {
                what: (*name).to_owned(),
            })?;
        debug_assert!(
            cell.id().0 < weights.len(),
            "library ids are dense in 0..len"
        );
        weights[cell.id().0] += *w;
    }
    UsageHistogram::from_weights(weights)
}

/// Control-dominated logic: NAND/NOR/inverter heavy, a sprinkle of complex
/// gates, ~8 % sequential.
///
/// # Errors
///
/// Returns [`CellError::UnknownCell`] if the library lacks a preset cell
/// (never for [`CellLibrary::standard_62`]).
pub fn control_logic(lib: &CellLibrary) -> Result<UsageHistogram, CellError> {
    from_mix(
        lib,
        &[
            ("inv_x1", 18.0),
            ("inv_x2", 6.0),
            ("buf_x1", 5.0),
            ("nand2_x1", 22.0),
            ("nand3_x1", 7.0),
            ("nor2_x1", 13.0),
            ("nor3_x1", 4.0),
            ("aoi21_x1", 4.0),
            ("oai21_x1", 4.0),
            ("and2_x1", 5.0),
            ("or2_x1", 4.0),
            ("dff_x1", 8.0),
        ],
    )
}

/// Datapath: arithmetic cells, XORs and muxes dominate, wider drives.
///
/// # Errors
///
/// Returns [`CellError::UnknownCell`] if the library lacks a preset cell.
pub fn datapath(lib: &CellLibrary) -> Result<UsageHistogram, CellError> {
    from_mix(
        lib,
        &[
            ("fulladder_x1", 14.0),
            ("halfadder_x1", 6.0),
            ("xor2_x1", 12.0),
            ("xnor2_x1", 6.0),
            ("mux2_x1", 10.0),
            ("mux2_x2", 4.0),
            ("nand2_x2", 10.0),
            ("nor2_x2", 6.0),
            ("inv_x2", 10.0),
            ("buf_x2", 6.0),
            ("and2_x2", 6.0),
            ("dff_x2", 10.0),
        ],
    )
}

/// Memory-dominated block: mostly SRAM bit cells with peripheral logic.
///
/// # Errors
///
/// Returns [`CellError::UnknownCell`] if the library lacks a preset cell.
pub fn memory_dominated(lib: &CellLibrary) -> Result<UsageHistogram, CellError> {
    from_mix(
        lib,
        &[
            ("sram6t", 70.0),
            ("inv_x1", 6.0),
            ("inv_x4", 3.0),
            ("nand2_x1", 6.0),
            ("nor2_x1", 4.0),
            ("buf_x4", 3.0),
            ("tbuf_x1", 3.0),
            ("dff_x1", 5.0),
        ],
    )
}

/// Clock-tree / repeater fabric: buffers and wide inverters.
///
/// # Errors
///
/// Returns [`CellError::UnknownCell`] if the library lacks a preset cell.
pub fn clock_tree(lib: &CellLibrary) -> Result<UsageHistogram, CellError> {
    from_mix(
        lib,
        &[
            ("buf_x2", 20.0),
            ("buf_x4", 25.0),
            ("buf_x8", 20.0),
            ("inv_x4", 15.0),
            ("inv_x8", 12.0),
            ("inv_x16", 8.0),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellId;

    #[test]
    fn all_presets_build_on_standard_library() {
        let lib = CellLibrary::standard_62();
        for (name, preset) in [
            ("control", control_logic(&lib)),
            ("datapath", datapath(&lib)),
            ("memory", memory_dominated(&lib)),
            ("clock", clock_tree(&lib)),
        ] {
            let h = preset.unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(h.len(), 62);
            assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(!h.support().is_empty());
        }
    }

    #[test]
    fn memory_preset_is_sram_dominated() {
        let lib = CellLibrary::standard_62();
        let h = memory_dominated(&lib).unwrap();
        let sram = lib.cell_by_name("sram6t").unwrap().id();
        assert!(h.alpha(sram) > 0.5);
    }

    #[test]
    fn presets_are_distinct() {
        let lib = CellLibrary::standard_62();
        let c = control_logic(&lib).unwrap();
        let d = datapath(&lib).unwrap();
        assert_ne!(c.probs(), d.probs());
    }

    #[test]
    fn unknown_cell_is_reported() {
        let lib = CellLibrary::standard_62();
        let r = from_mix(&lib, &[("tardis_x1", 1.0)]);
        assert!(matches!(r, Err(CellError::UnknownCell { .. })));
        let _ = CellId(0);
    }
}
