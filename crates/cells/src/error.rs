//! Error type for library construction and characterization.

use std::fmt;

/// Errors from cell-library operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CellError {
    /// A referenced cell does not exist in the library.
    UnknownCell {
        /// What was looked up.
        what: String,
    },
    /// A histogram or probability argument was malformed.
    InvalidArgument {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A transistor-level simulation failed.
    Sim(leakage_sim::SimError),
    /// A numerical routine failed.
    Numeric(leakage_numeric::NumericError),
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::UnknownCell { what } => write!(f, "unknown cell: {what}"),
            CellError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            CellError::Sim(e) => write!(f, "simulation failure: {e}"),
            CellError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl std::error::Error for CellError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CellError::Sim(e) => Some(e),
            CellError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<leakage_sim::SimError> for CellError {
    fn from(e: leakage_sim::SimError) -> CellError {
        CellError::Sim(e)
    }
}

impl From<leakage_numeric::NumericError> for CellError {
    fn from(e: leakage_numeric::NumericError) -> CellError {
        CellError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_chain() {
        use std::error::Error;
        let e = CellError::UnknownCell {
            what: "nand9_x1".into(),
        };
        assert!(e.to_string().contains("nand9_x1"));
        let e: CellError = leakage_numeric::NumericError::Singular { pivot: 2 }.into();
        assert!(e.source().is_some());
    }
}
