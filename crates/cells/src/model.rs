//! Statistical leakage models of characterized cells.
//!
//! Each (cell, input-state) pair carries either fitted `(a, b, c)`
//! parameters of the Rao et al. functional form `X = a·exp(bΔL + cΔL²)`
//! (analytical path) or Monte-Carlo moments. `ΔL` is the deviation of the
//! channel length from nominal in nm, so the underlying Gaussian is
//! `ΔL ~ N(0, σ_L)`; this is the paper's model up to a shift of variable.

use crate::error::CellError;
use crate::library::CellId;
use leakage_numeric::quadform::gaussian_quadratic_mgf;
use serde::{Deserialize, Serialize};

/// Fitted leakage model `X = a·exp(b·ΔL + c·ΔL²)` for one cell and input
/// state (`ΔL` in nm).
///
/// # Example
///
/// ```
/// use leakage_cells::LeakageTriplet;
///
/// let t = LeakageTriplet::new(1e-9, -0.15, 0.004)?;
/// let sigma = 4.5;
/// let mean = t.mean(sigma)?;
/// let std = t.std(sigma)?;
/// assert!(mean > 0.0 && std > 0.0);
/// // lognormal-like: mean exceeds the nominal-corner value
/// assert!(mean > t.eval(0.0));
/// # Ok::<(), leakage_cells::CellError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageTriplet {
    a: f64,
    b: f64,
    c: f64,
}

impl LeakageTriplet {
    /// Creates a triplet.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InvalidArgument`] if `a ≤ 0` or any parameter
    /// is non-finite.
    pub fn new(a: f64, b: f64, c: f64) -> Result<LeakageTriplet, CellError> {
        if !(a > 0.0) || !a.is_finite() || !b.is_finite() || !c.is_finite() {
            return Err(CellError::InvalidArgument {
                reason: format!("invalid triplet (a={a}, b={b}, c={c})"),
            });
        }
        Ok(LeakageTriplet { a, b, c })
    }

    /// Scale parameter `a` (A).
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Linear exponent coefficient `b` (1/nm).
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Quadratic exponent coefficient `c` (1/nm²).
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Deterministic leakage at a given `ΔL` (nm).
    pub fn eval(&self, dl: f64) -> f64 {
        self.a * (self.b * dl + self.c * dl * dl).exp()
    }

    /// Mean leakage under `ΔL ~ N(0, σ)`: `μ_X = M_Y(1)` (paper Eq. 1).
    ///
    /// # Errors
    ///
    /// Returns an error if the MGF does not exist at `t = 1`
    /// (`1 − 2cσ² ≤ 0`).
    pub fn mean(&self, sigma: f64) -> Result<f64, CellError> {
        Ok(gaussian_quadratic_mgf(
            1.0,
            self.c,
            self.b,
            self.a.ln(),
            0.0,
            sigma,
        )?)
    }

    /// Second moment `E[X²] = M_Y(2)` (paper Eq. 2).
    ///
    /// # Errors
    ///
    /// Returns an error if the MGF does not exist at `t = 2`.
    pub fn second_moment(&self, sigma: f64) -> Result<f64, CellError> {
        Ok(gaussian_quadratic_mgf(
            2.0,
            self.c,
            self.b,
            self.a.ln(),
            0.0,
            sigma,
        )?)
    }

    /// Variance `E[X²] − μ²`.
    ///
    /// # Errors
    ///
    /// See [`LeakageTriplet::second_moment`].
    pub fn variance(&self, sigma: f64) -> Result<f64, CellError> {
        let m = self.mean(sigma)?;
        Ok((self.second_moment(sigma)? - m * m).max(0.0))
    }

    /// Standard deviation of the leakage.
    ///
    /// # Errors
    ///
    /// See [`LeakageTriplet::second_moment`].
    pub fn std(&self, sigma: f64) -> Result<f64, CellError> {
        Ok(self.variance(sigma)?.sqrt())
    }
}

/// Per-input-state leakage model of a characterized cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateModel {
    /// Input state (bit `i` = input pin `i`).
    pub state: u32,
    /// Fitted functional form (present on the analytical path).
    pub triplet: Option<LeakageTriplet>,
    /// Mean leakage (A), by the active characterization method.
    pub mean: f64,
    /// Leakage standard deviation (A).
    pub std: f64,
    /// R² of the log-space fit (analytical path only).
    pub fit_r2: Option<f64>,
}

/// A cell with leakage statistics for every input state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizedCell {
    /// Library id of the cell.
    pub id: CellId,
    /// Cell name.
    pub name: String,
    /// Number of input pins.
    pub n_inputs: usize,
    /// Per-state models, indexed by state.
    pub states: Vec<StateModel>,
}

impl CharacterizedCell {
    /// The model for one input state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn state(&self, state: u32) -> &StateModel {
        &self.states[state as usize]
    }

    /// The input state with the highest mean leakage (ties: lowest state
    /// index) — the worst-case vector for this cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no states (cannot happen for characterized
    /// cells).
    pub fn max_leakage_state(&self) -> &StateModel {
        self.states
            .iter()
            .max_by(|a, b| a.mean.total_cmp(&b.mean))
            // chipleak-lint: allow(l5): documented `# Panics` API; characterization always emits >= 1 state
            .expect("characterized cells have at least one state")
    }

    /// The input state with the lowest mean leakage — the sleep vector.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no states.
    pub fn min_leakage_state(&self) -> &StateModel {
        self.states
            .iter()
            .min_by(|a, b| a.mean.total_cmp(&b.mean))
            // chipleak-lint: allow(l5): documented `# Panics` API; characterization always emits >= 1 state
            .expect("characterized cells have at least one state")
    }

    /// Ratio of the leakiest to the quietest state mean (the paper's
    /// "spread of 10X in some cases", §2.1.4).
    pub fn state_spread(&self) -> f64 {
        self.max_leakage_state().mean / self.min_leakage_state().mean
    }

    /// Mixture mean and standard deviation over input states with the
    /// given state probabilities (which must sum to ≈ 1 and match the
    /// state count).
    ///
    /// Mixture moments: `μ = Σ π_s μ_s`, `E[X²] = Σ π_s (σ_s² + μ_s²)`.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::InvalidArgument`] on a length mismatch or
    /// non-normalized probabilities.
    pub fn mixture_stats(&self, probs: &[f64]) -> Result<(f64, f64), CellError> {
        if probs.len() != self.states.len() {
            return Err(CellError::InvalidArgument {
                reason: format!(
                    "{}: {} state probabilities for {} states",
                    self.name,
                    probs.len(),
                    self.states.len()
                ),
            });
        }
        let total: f64 = probs.iter().sum();
        if (total - 1.0).abs() > 1e-9 || probs.iter().any(|p| *p < 0.0) {
            return Err(CellError::InvalidArgument {
                reason: format!("state probabilities must be a distribution (sum {total})"),
            });
        }
        let mut mean = 0.0;
        let mut second = 0.0;
        for (s, p) in self.states.iter().zip(probs) {
            mean += p * s.mean;
            second += p * (s.std * s.std + s.mean * s.mean);
        }
        Ok((mean, (second - mean * mean).max(0.0).sqrt()))
    }
}

/// A fully characterized library plus the L-distribution it was
/// characterized under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizedLibrary {
    /// Per-cell characterizations, indexed by [`CellId`].
    pub cells: Vec<CharacterizedCell>,
    /// Total channel-length sigma used (nm).
    pub l_sigma: f64,
}

impl CharacterizedLibrary {
    /// The characterization of one cell.
    pub fn cell(&self, id: CellId) -> Option<&CharacterizedCell> {
        self.cells.get(id.0)
    }

    /// Number of characterized cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Multiplicative correction to the mean leakage from independent RDF
/// threshold-voltage variation (§2.1): for `I ∝ exp(−V_t/(n·V_T))` with
/// `V_t ~ N(0, σ_vt)` the lognormal mean factor is
/// `exp(σ_vt² / (2 n² V_T²))`.
///
/// The corresponding *variance* contribution averages out over a large
/// chip (independent per device) and is therefore ignored by the model —
/// the `vt_ablation` experiment quantifies this.
///
/// # Example
///
/// ```
/// let f = leakage_cells::model::vt_mean_multiplier(0.02, 1.5, 0.02585);
/// assert!(f > 1.0 && f < 1.3);
/// ```
pub fn vt_mean_multiplier(sigma_vt: f64, n_factor: f64, v_thermal: f64) -> f64 {
    let s = sigma_vt / (n_factor * v_thermal);
    (0.5 * s * s).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triplet() -> LeakageTriplet {
        LeakageTriplet::new(1e-9, -0.15, 0.003).unwrap()
    }

    #[test]
    fn triplet_rejects_invalid() {
        assert!(LeakageTriplet::new(0.0, 1.0, 1.0).is_err());
        assert!(LeakageTriplet::new(-1.0, 1.0, 1.0).is_err());
        assert!(LeakageTriplet::new(1.0, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn moments_match_quadrature() {
        let t = triplet();
        let sigma = 4.5;
        let mean = t.mean(sigma).unwrap();
        // quadrature of eval * normal pdf
        let numeric = leakage_numeric::integrate::gauss_legendre(
            |dl| {
                let z = dl / sigma;
                t.eval(dl) * (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
            },
            -10.0 * sigma,
            10.0 * sigma,
            128,
        );
        assert!(
            (mean - numeric).abs() / numeric < 1e-9,
            "{mean} vs {numeric}"
        );
    }

    #[test]
    fn pure_lognormal_limit() {
        // c = 0: X = a·exp(bΔL), mean = a·exp(b²σ²/2).
        let t = LeakageTriplet::new(2e-9, -0.1, 0.0).unwrap();
        let sigma = 3.0;
        let expect = 2e-9 * (0.01 * 9.0 / 2.0_f64).exp();
        assert!((t.mean(sigma).unwrap() - expect).abs() / expect < 1e-12);
        // variance: a²e^{b²σ²}(e^{b²σ²}−1)
        let w = (0.01_f64 * 9.0).exp();
        let expect_var = 4e-18 * w * (w - 1.0);
        assert!((t.variance(sigma).unwrap() - expect_var).abs() / expect_var < 1e-9);
    }

    #[test]
    fn mgf_divergence_reported() {
        // huge positive c: E[X] diverges
        let t = LeakageTriplet::new(1e-9, 0.0, 10.0).unwrap();
        assert!(t.mean(1.0).is_err());
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let t = triplet();
        assert!((t.mean(0.0).unwrap() - 1e-9).abs() < 1e-24);
        assert!(t.std(0.0).unwrap() < 1e-20);
    }

    fn two_state_cell() -> CharacterizedCell {
        CharacterizedCell {
            id: CellId(0),
            name: "inv_x1".into(),
            n_inputs: 1,
            states: vec![
                StateModel {
                    state: 0,
                    triplet: None,
                    mean: 2.0,
                    std: 0.5,
                    fit_r2: None,
                },
                StateModel {
                    state: 1,
                    triplet: None,
                    mean: 4.0,
                    std: 1.0,
                    fit_r2: None,
                },
            ],
        }
    }

    #[test]
    fn state_extremes_and_spread() {
        let cell = two_state_cell();
        assert_eq!(cell.max_leakage_state().state, 1);
        assert_eq!(cell.min_leakage_state().state, 0);
        assert!((cell.state_spread() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mixture_stats_hand_computed() {
        let cell = two_state_cell();
        let (m, s) = cell.mixture_stats(&[0.5, 0.5]).unwrap();
        assert!((m - 3.0).abs() < 1e-12);
        // E[X²] = 0.5(0.25+4) + 0.5(1+16) = 2.125 + 8.5 = 10.625
        // var = 10.625 - 9 = 1.625
        assert!((s - 1.625_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mixture_degenerate_prob_recovers_state() {
        let cell = two_state_cell();
        let (m, s) = cell.mixture_stats(&[1.0, 0.0]).unwrap();
        assert_eq!((m, s), (2.0, 0.5));
    }

    #[test]
    fn mixture_rejects_bad_probs() {
        let cell = two_state_cell();
        assert!(cell.mixture_stats(&[0.5]).is_err());
        assert!(cell.mixture_stats(&[0.7, 0.7]).is_err());
        assert!(cell.mixture_stats(&[-0.5, 1.5]).is_err());
    }

    #[test]
    fn vt_multiplier_properties() {
        // no variation -> no correction
        assert_eq!(vt_mean_multiplier(0.0, 1.5, 0.026), 1.0);
        // bigger sigma -> bigger correction
        let f1 = vt_mean_multiplier(0.02, 1.5, 0.026);
        let f2 = vt_mean_multiplier(0.04, 1.5, 0.026);
        assert!(f2 > f1 && f1 > 1.0);
    }
}
