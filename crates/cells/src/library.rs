//! The 62-cell standard library.
//!
//! Cell topologies are built procedurally on the transistor-netlist
//! builder of `leakage-sim`. The mix matches the paper's description of
//! its commercial library (§2.1.1): "the SRAM cell, various flip flops and
//! a range of different logic cells" — here inverters/buffers, NAND/NOR up
//! to 4 inputs, AND/OR, AOI/OAI complex gates, XOR/XNOR, multiplexers,
//! tristate buffers, D latches, D flip-flops, half/full adders and the 6-T
//! SRAM cell, across several drive strengths, for 62 cells total.

use leakage_sim::netlist::{input_node, CellNetlist, InitHint, NetlistBuilder, NodeId, GND, VDD};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

// The 62 builder functions below assemble fixed, compile-time cell
// topologies; `build()` can only fail on a malformed netlist, which the
// exhaustive library tests (every cell, every input state) would catch.
// chipleak-lint: allow-file(no-unwrap-in-library): static cmos90 netlists, exhaustively exercised by this file's tests

/// Index of a cell within its [`CellLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub usize);

/// Coarse functional class of a cell, used to group experiment output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellClass {
    /// Single-stage inverter.
    Inverter,
    /// Two-stage buffer.
    Buffer,
    /// NAND gate.
    Nand,
    /// NOR gate.
    Nor,
    /// AND (NAND + inverter).
    And,
    /// OR (NOR + inverter).
    Or,
    /// AND-OR-invert complex gate.
    Aoi,
    /// OR-AND-invert complex gate.
    Oai,
    /// XOR/XNOR.
    Xor,
    /// Transmission-gate multiplexer.
    Mux,
    /// Tristate buffer.
    Tbuf,
    /// Transparent D latch.
    Latch,
    /// Master-slave D flip-flop.
    FlipFlop,
    /// 6-T SRAM bit cell.
    Sram,
    /// Half/full adder.
    Adder,
}

/// One library cell: a named transistor netlist with bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    id: CellId,
    name: String,
    class: CellClass,
    drive: f64,
    netlist: CellNetlist,
    area_um2: f64,
}

impl Cell {
    /// Library index of the cell.
    pub fn id(&self) -> CellId {
        self.id
    }

    /// Cell name, e.g. `"nand2_x1"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Functional class.
    pub fn class(&self) -> CellClass {
        self.class
    }

    /// Drive strength multiplier (1, 2, 4, …).
    pub fn drive(&self) -> f64 {
        self.drive
    }

    /// Transistor netlist.
    pub fn netlist(&self) -> &CellNetlist {
        &self.netlist
    }

    /// Approximate layout area (µm²), proportional to total device width.
    pub fn area_um2(&self) -> f64 {
        self.area_um2
    }

    /// Number of input pins.
    pub fn n_inputs(&self) -> usize {
        self.netlist.n_inputs()
    }

    /// Number of input states.
    pub fn n_states(&self) -> u32 {
        self.netlist.n_states()
    }
}

/// The cell library.
///
/// # Example
///
/// ```
/// use leakage_cells::library::{CellClass, CellLibrary};
///
/// let lib = CellLibrary::standard_62();
/// let nand2 = lib.cell_by_name("nand2_x1").unwrap();
/// assert_eq!(nand2.class(), CellClass::Nand);
/// assert_eq!(nand2.n_inputs(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CellLibrary {
    cells: Vec<Cell>,
    by_name: BTreeMap<String, CellId>,
}

/// Base NMOS width (µm) at drive 1.
const WN: f64 = 0.6;
/// Base PMOS width (µm) at drive 1.
const WP: f64 = 1.2;

impl CellLibrary {
    /// Builds the full 62-cell library.
    pub fn standard_62() -> CellLibrary {
        let mut b = LibraryBuilder::default();
        for d in [1.0, 2.0, 4.0, 8.0, 16.0] {
            b.add(inverter_cell(d), CellClass::Inverter, d);
        }
        for d in [1.0, 2.0, 4.0, 8.0] {
            b.add(buffer_cell(d), CellClass::Buffer, d);
        }
        for d in [1.0, 2.0, 4.0, 8.0] {
            b.add(nand_cell(2, d), CellClass::Nand, d);
        }
        for d in [1.0, 2.0] {
            b.add(nand_cell(3, d), CellClass::Nand, d);
            b.add(nand_cell(4, d), CellClass::Nand, d);
        }
        for d in [1.0, 2.0, 4.0, 8.0] {
            b.add(nor_cell(2, d), CellClass::Nor, d);
        }
        for d in [1.0, 2.0] {
            b.add(nor_cell(3, d), CellClass::Nor, d);
            b.add(nor_cell(4, d), CellClass::Nor, d);
        }
        for d in [1.0, 2.0, 4.0] {
            b.add(and_cell(2, d), CellClass::And, d);
        }
        b.add(and_cell(3, 1.0), CellClass::And, 1.0);
        b.add(and_cell(4, 1.0), CellClass::And, 1.0);
        for d in [1.0, 2.0, 4.0] {
            b.add(or_cell(2, d), CellClass::Or, d);
        }
        b.add(or_cell(3, 1.0), CellClass::Or, 1.0);
        b.add(or_cell(4, 1.0), CellClass::Or, 1.0);
        for d in [1.0, 2.0] {
            b.add(aoi21_cell(d), CellClass::Aoi, d);
            b.add(aoi22_cell(d), CellClass::Aoi, d);
            b.add(oai21_cell(d), CellClass::Oai, d);
            b.add(oai22_cell(d), CellClass::Oai, d);
        }
        b.add(aoi211_cell(1.0), CellClass::Aoi, 1.0);
        b.add(oai211_cell(1.0), CellClass::Oai, 1.0);
        for d in [1.0, 2.0] {
            b.add(xor2_cell(d, false), CellClass::Xor, d);
            b.add(xor2_cell(d, true), CellClass::Xor, d);
        }
        for d in [1.0, 2.0, 4.0] {
            b.add(mux2_cell(d), CellClass::Mux, d);
        }
        for d in [1.0, 2.0] {
            b.add(tbuf_cell(d), CellClass::Tbuf, d);
            b.add(dlatch_cell(d), CellClass::Latch, d);
        }
        for d in [1.0, 2.0, 4.0] {
            b.add(dff_cell(d), CellClass::FlipFlop, d);
        }
        b.add(sram6t_cell(), CellClass::Sram, 1.0);
        b.add(halfadder_cell(), CellClass::Adder, 1.0);
        b.add(fulladder_cell(), CellClass::Adder, 1.0);
        let lib = b.build();
        debug_assert_eq!(lib.len(), 62, "library must contain exactly 62 cells");
        lib
    }

    /// Number of cells (`p` in the paper).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cells in id order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Looks a cell up by id.
    pub fn cell(&self, id: CellId) -> Option<&Cell> {
        self.cells.get(id.0)
    }

    /// Looks a cell up by name.
    pub fn cell_by_name(&self, name: &str) -> Option<&Cell> {
        self.by_name.get(name).and_then(|id| self.cell(*id))
    }

    /// Iterates over `(CellId, &Cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells.iter().map(|c| (c.id, c))
    }
}

#[derive(Default)]
struct LibraryBuilder {
    cells: Vec<Cell>,
    by_name: BTreeMap<String, CellId>,
}

impl LibraryBuilder {
    fn add(&mut self, netlist: CellNetlist, class: CellClass, drive: f64) {
        let id = CellId(self.cells.len());
        let name = netlist.name().to_owned();
        let width_sum: f64 = netlist.devices().iter().map(|d| d.width_um).sum();
        let area = width_sum * 1.0 + netlist.devices().len() as f64 * 0.4;
        assert!(
            self.by_name.insert(name.clone(), id).is_none(),
            "duplicate cell name {name}"
        );
        self.cells.push(Cell {
            id,
            name,
            class,
            drive,
            netlist,
            area_um2: area,
        });
    }

    fn build(self) -> CellLibrary {
        CellLibrary {
            cells: self.cells,
            by_name: self.by_name,
        }
    }
}

fn drive_name(base: &str, d: f64) -> String {
    format!("{base}_x{}", d as u32)
}

/// Adds an inverter stage `in → out` to a builder; returns nothing.
fn inv_stage(b: &mut NetlistBuilder, input: NodeId, out: NodeId, d: f64) {
    b.nmos(out, input, GND, WN * d);
    b.pmos(out, input, VDD, WP * d);
}

fn inverter_cell(d: f64) -> CellNetlist {
    let mut b = NetlistBuilder::new(drive_name("inv", d), 1);
    let out = b.node();
    inv_stage(&mut b, input_node(0), out, d);
    b.hint(
        out,
        InitHint::FollowInput {
            input: 0,
            inverted: true,
        },
    );
    b.build().expect("static netlist")
}

fn buffer_cell(d: f64) -> CellNetlist {
    let mut b = NetlistBuilder::new(drive_name("buf", d), 1);
    let mid = b.node();
    let out = b.node();
    inv_stage(&mut b, input_node(0), mid, 1.0);
    inv_stage(&mut b, mid, out, d);
    b.hint(
        mid,
        InitHint::FollowInput {
            input: 0,
            inverted: true,
        },
    );
    b.hint(
        out,
        InitHint::FollowInput {
            input: 0,
            inverted: false,
        },
    );
    b.build().expect("static netlist")
}

fn nand_cell(n: usize, d: f64) -> CellNetlist {
    let mut b = NetlistBuilder::new(drive_name(&format!("nand{n}"), d), n);
    let out = b.node();
    for i in 0..n {
        b.pmos(out, input_node(i), VDD, WP * d);
    }
    let mut upper = out;
    for i in 0..n {
        let lower = if i + 1 == n { GND } else { b.node() };
        // Series NMOS are upsized by the stack depth, as in real libraries.
        b.nmos(
            upper,
            input_node(i),
            lower,
            WN * d * n as f64 / 2.0_f64.max(1.0),
        );
        if lower != GND {
            b.hint(lower, InitHint::Fraction(0.05));
        }
        upper = lower;
    }
    b.hint(out, InitHint::Fraction(0.95));
    b.build().expect("static netlist")
}

fn nor_cell(n: usize, d: f64) -> CellNetlist {
    let mut b = NetlistBuilder::new(drive_name(&format!("nor{n}"), d), n);
    let out = b.node();
    for i in 0..n {
        b.nmos(out, input_node(i), GND, WN * d);
    }
    let mut upper = VDD;
    for i in 0..n {
        let lower = if i + 1 == n { out } else { b.node() };
        b.pmos(
            lower,
            input_node(i),
            upper,
            WP * d * n as f64 / 2.0_f64.max(1.0),
        );
        if lower != out {
            b.hint(lower, InitHint::Fraction(0.95));
        }
        upper = lower;
    }
    b.hint(out, InitHint::Fraction(0.05));
    b.build().expect("static netlist")
}

fn and_cell(n: usize, d: f64) -> CellNetlist {
    let mut b = NetlistBuilder::new(drive_name(&format!("and{n}"), d), n);
    let nand_out = b.node();
    let out = b.node();
    for i in 0..n {
        b.pmos(nand_out, input_node(i), VDD, WP);
    }
    let mut upper = nand_out;
    for i in 0..n {
        let lower = if i + 1 == n { GND } else { b.node() };
        b.nmos(
            upper,
            input_node(i),
            lower,
            WN * n as f64 / 2.0_f64.max(1.0),
        );
        if lower != GND {
            b.hint(lower, InitHint::Fraction(0.05));
        }
        upper = lower;
    }
    inv_stage(&mut b, nand_out, out, d);
    b.hint(nand_out, InitHint::Fraction(0.95));
    b.hint(out, InitHint::Fraction(0.05));
    b.build().expect("static netlist")
}

fn or_cell(n: usize, d: f64) -> CellNetlist {
    let mut b = NetlistBuilder::new(drive_name(&format!("or{n}"), d), n);
    let nor_out = b.node();
    let out = b.node();
    for i in 0..n {
        b.nmos(nor_out, input_node(i), GND, WN);
    }
    let mut upper = VDD;
    for i in 0..n {
        let lower = if i + 1 == n { nor_out } else { b.node() };
        b.pmos(
            lower,
            input_node(i),
            upper,
            WP * n as f64 / 2.0_f64.max(1.0),
        );
        if lower != nor_out {
            b.hint(lower, InitHint::Fraction(0.95));
        }
        upper = lower;
    }
    inv_stage(&mut b, nor_out, out, d);
    b.hint(nor_out, InitHint::Fraction(0.05));
    b.hint(out, InitHint::Fraction(0.95));
    b.build().expect("static netlist")
}

/// AOI21: `out = !(A·B + C)`, inputs (A, B, C).
fn aoi21_cell(d: f64) -> CellNetlist {
    let (a, c2, c) = (input_node(0), input_node(1), input_node(2));
    let mut b = NetlistBuilder::new(drive_name("aoi21", d), 3);
    let out = b.node();
    let x = b.node();
    let y = b.node();
    // PDN: A-B series, C parallel.
    b.nmos(out, a, x, WN * d * 1.5);
    b.nmos(x, c2, GND, WN * d * 1.5);
    b.nmos(out, c, GND, WN * d);
    // PUN: (A || B) series C.
    b.pmos(y, a, VDD, WP * d);
    b.pmos(y, c2, VDD, WP * d);
    b.pmos(out, c, y, WP * d * 1.5);
    b.hint(out, InitHint::Fraction(0.5));
    b.hint(x, InitHint::Fraction(0.05));
    b.hint(y, InitHint::Fraction(0.95));
    b.build().expect("static netlist")
}

/// AOI22: `out = !(A·B + C·D)`.
fn aoi22_cell(d: f64) -> CellNetlist {
    let (a, bb, c, dd) = (input_node(0), input_node(1), input_node(2), input_node(3));
    let mut b = NetlistBuilder::new(drive_name("aoi22", d), 4);
    let out = b.node();
    let x1 = b.node();
    let x2 = b.node();
    let y = b.node();
    b.nmos(out, a, x1, WN * d * 1.5);
    b.nmos(x1, bb, GND, WN * d * 1.5);
    b.nmos(out, c, x2, WN * d * 1.5);
    b.nmos(x2, dd, GND, WN * d * 1.5);
    b.pmos(y, a, VDD, WP * d);
    b.pmos(y, bb, VDD, WP * d);
    b.pmos(out, c, y, WP * d);
    b.pmos(out, dd, y, WP * d);
    b.hint(out, InitHint::Fraction(0.5));
    b.hint(x1, InitHint::Fraction(0.05));
    b.hint(x2, InitHint::Fraction(0.05));
    b.hint(y, InitHint::Fraction(0.95));
    b.build().expect("static netlist")
}

/// AOI211: `out = !(A·B + C + D)`.
fn aoi211_cell(d: f64) -> CellNetlist {
    let (a, bb, c, dd) = (input_node(0), input_node(1), input_node(2), input_node(3));
    let mut b = NetlistBuilder::new(drive_name("aoi211", d), 4);
    let out = b.node();
    let x = b.node();
    let y1 = b.node();
    let y2 = b.node();
    b.nmos(out, a, x, WN * d * 1.5);
    b.nmos(x, bb, GND, WN * d * 1.5);
    b.nmos(out, c, GND, WN * d);
    b.nmos(out, dd, GND, WN * d);
    b.pmos(y1, a, VDD, WP * d);
    b.pmos(y1, bb, VDD, WP * d);
    b.pmos(y2, c, y1, WP * d * 1.5);
    b.pmos(out, dd, y2, WP * d * 1.5);
    b.hint(out, InitHint::Fraction(0.5));
    b.hint(x, InitHint::Fraction(0.05));
    b.hint(y1, InitHint::Fraction(0.95));
    b.hint(y2, InitHint::Fraction(0.95));
    b.build().expect("static netlist")
}

/// OAI21: `out = !((A+B)·C)`.
fn oai21_cell(d: f64) -> CellNetlist {
    let (a, bb, c) = (input_node(0), input_node(1), input_node(2));
    let mut b = NetlistBuilder::new(drive_name("oai21", d), 3);
    let out = b.node();
    let x = b.node();
    let y = b.node();
    // PDN: (A || B) series C.
    b.nmos(out, a, x, WN * d * 1.5);
    b.nmos(out, bb, x, WN * d * 1.5);
    b.nmos(x, c, GND, WN * d * 1.5);
    // PUN: A-B series, C parallel.
    b.pmos(y, a, VDD, WP * d * 1.5);
    b.pmos(out, bb, y, WP * d * 1.5);
    b.pmos(out, c, VDD, WP * d);
    b.hint(out, InitHint::Fraction(0.5));
    b.hint(x, InitHint::Fraction(0.05));
    b.hint(y, InitHint::Fraction(0.95));
    b.build().expect("static netlist")
}

/// OAI22: `out = !((A+B)·(C+D))`.
fn oai22_cell(d: f64) -> CellNetlist {
    let (a, bb, c, dd) = (input_node(0), input_node(1), input_node(2), input_node(3));
    let mut b = NetlistBuilder::new(drive_name("oai22", d), 4);
    let out = b.node();
    let x = b.node();
    let y1 = b.node();
    let y2 = b.node();
    b.nmos(out, a, x, WN * d * 1.5);
    b.nmos(out, bb, x, WN * d * 1.5);
    b.nmos(x, c, GND, WN * d * 1.5);
    b.nmos(x, dd, GND, WN * d * 1.5);
    b.pmos(y1, a, VDD, WP * d * 1.5);
    b.pmos(out, bb, y1, WP * d * 1.5);
    b.pmos(y2, c, VDD, WP * d * 1.5);
    b.pmos(out, dd, y2, WP * d * 1.5);
    b.hint(out, InitHint::Fraction(0.5));
    b.hint(x, InitHint::Fraction(0.05));
    b.hint(y1, InitHint::Fraction(0.95));
    b.hint(y2, InitHint::Fraction(0.95));
    b.build().expect("static netlist")
}

/// OAI211: `out = !((A+B)·C·D)`.
fn oai211_cell(d: f64) -> CellNetlist {
    let (a, bb, c, dd) = (input_node(0), input_node(1), input_node(2), input_node(3));
    let mut b = NetlistBuilder::new(drive_name("oai211", d), 4);
    let out = b.node();
    let x1 = b.node();
    let x2 = b.node();
    let y = b.node();
    // PDN: (A||B)–C–D series chain.
    b.nmos(out, a, x1, WN * d * 2.0);
    b.nmos(out, bb, x1, WN * d * 2.0);
    b.nmos(x1, c, x2, WN * d * 2.0);
    b.nmos(x2, dd, GND, WN * d * 2.0);
    // PUN: (A series B) || C || D.
    b.pmos(y, a, VDD, WP * d * 1.5);
    b.pmos(out, bb, y, WP * d * 1.5);
    b.pmos(out, c, VDD, WP * d);
    b.pmos(out, dd, VDD, WP * d);
    b.hint(out, InitHint::Fraction(0.5));
    b.hint(x1, InitHint::Fraction(0.05));
    b.hint(x2, InitHint::Fraction(0.05));
    b.hint(y, InitHint::Fraction(0.95));
    b.build().expect("static netlist")
}

/// Static-CMOS XOR2 (or XNOR2 when `invert` is true), inputs (A, B).
fn xor2_cell(d: f64, invert: bool) -> CellNetlist {
    let base = if invert { "xnor2" } else { "xor2" };
    let (a, bb) = (input_node(0), input_node(1));
    let mut b = NetlistBuilder::new(drive_name(base, d), 2);
    let an = b.node();
    let bn = b.node();
    let out = b.node();
    let x1 = b.node();
    let x2 = b.node();
    let y1 = b.node();
    let y2 = b.node();
    inv_stage(&mut b, a, an, 1.0);
    inv_stage(&mut b, bb, bn, 1.0);
    if !invert {
        // XOR: PDN on when A == B.
        b.nmos(out, a, x1, WN * d * 1.5);
        b.nmos(x1, bb, GND, WN * d * 1.5);
        b.nmos(out, an, x2, WN * d * 1.5);
        b.nmos(x2, bn, GND, WN * d * 1.5);
        // PUN on when A != B.
        b.pmos(y1, a, VDD, WP * d * 1.5);
        b.pmos(out, bn, y1, WP * d * 1.5);
        b.pmos(y2, an, VDD, WP * d * 1.5);
        b.pmos(out, bb, y2, WP * d * 1.5);
    } else {
        // XNOR: PDN on when A != B.
        b.nmos(out, a, x1, WN * d * 1.5);
        b.nmos(x1, bn, GND, WN * d * 1.5);
        b.nmos(out, an, x2, WN * d * 1.5);
        b.nmos(x2, bb, GND, WN * d * 1.5);
        // PUN on when A == B.
        b.pmos(y1, a, VDD, WP * d * 1.5);
        b.pmos(out, bb, y1, WP * d * 1.5);
        b.pmos(y2, an, VDD, WP * d * 1.5);
        b.pmos(out, bn, y2, WP * d * 1.5);
    }
    b.hint(
        an,
        InitHint::FollowInput {
            input: 0,
            inverted: true,
        },
    );
    b.hint(
        bn,
        InitHint::FollowInput {
            input: 1,
            inverted: true,
        },
    );
    b.hint(out, InitHint::Fraction(0.5));
    b.hint(x1, InitHint::Fraction(0.05));
    b.hint(x2, InitHint::Fraction(0.05));
    b.hint(y1, InitHint::Fraction(0.95));
    b.hint(y2, InitHint::Fraction(0.95));
    b.build().expect("static netlist")
}

/// Transmission-gate 2:1 mux with output inverter: `out = !(S ? B : A)`,
/// inputs (A, B, S).
fn mux2_cell(d: f64) -> CellNetlist {
    let (a, bb, s) = (input_node(0), input_node(1), input_node(2));
    let mut b = NetlistBuilder::new(drive_name("mux2", d), 3);
    let sb = b.node();
    let m = b.node();
    let out = b.node();
    inv_stage(&mut b, s, sb, 1.0);
    // Pass A when S = 0.
    b.nmos(m, sb, a, WN);
    b.pmos(m, s, a, WP);
    // Pass B when S = 1.
    b.nmos(m, s, bb, WN);
    b.pmos(m, sb, bb, WP);
    inv_stage(&mut b, m, out, d);
    b.hint(
        sb,
        InitHint::FollowInput {
            input: 2,
            inverted: true,
        },
    );
    b.hint(m, InitHint::Fraction(0.5));
    b.hint(out, InitHint::Fraction(0.5));
    b.build().expect("static netlist")
}

/// Tristate buffer: `out = A` when `EN = 1`, hi-Z otherwise. Inputs (A, EN).
fn tbuf_cell(d: f64) -> CellNetlist {
    let (a, en) = (input_node(0), input_node(1));
    let mut b = NetlistBuilder::new(drive_name("tbuf", d), 2);
    let an = b.node();
    let enb = b.node();
    let t1 = b.node();
    let t2 = b.node();
    let out = b.node();
    inv_stage(&mut b, a, an, 1.0);
    inv_stage(&mut b, en, enb, 1.0);
    // Tristate inverter driven by an: conducts when EN = 1.
    b.pmos(t1, an, VDD, WP * d);
    b.pmos(out, enb, t1, WP * d);
    b.nmos(out, en, t2, WN * d);
    b.nmos(t2, an, GND, WN * d);
    b.hint(
        an,
        InitHint::FollowInput {
            input: 0,
            inverted: true,
        },
    );
    b.hint(
        enb,
        InitHint::FollowInput {
            input: 1,
            inverted: true,
        },
    );
    b.hint(t1, InitHint::Fraction(0.95));
    b.hint(t2, InitHint::Fraction(0.05));
    b.hint(out, InitHint::Fraction(0.5));
    b.build().expect("static netlist")
}

fn tgate(b: &mut NetlistBuilder, from: NodeId, to: NodeId, en_high: NodeId, en_low: NodeId) {
    // Conducts when en_high = 1 (and en_low = 0, its complement).
    b.nmos(to, en_high, from, WN);
    b.pmos(to, en_low, from, WP);
}

/// Transparent-high D latch: inputs (D, EN).
fn dlatch_cell(d: f64) -> CellNetlist {
    let (din, en) = (input_node(0), input_node(1));
    let mut b = NetlistBuilder::new(drive_name("dlatch", d), 2);
    let enb = b.node();
    let m = b.node();
    let q = b.node();
    let fb = b.node();
    inv_stage(&mut b, en, enb, 1.0);
    tgate(&mut b, din, m, en, enb);
    inv_stage(&mut b, m, q, d);
    inv_stage(&mut b, q, fb, 1.0);
    tgate(&mut b, fb, m, enb, en);
    b.hint(
        enb,
        InitHint::FollowInput {
            input: 1,
            inverted: true,
        },
    );
    b.hint(
        m,
        InitHint::FollowInput {
            input: 0,
            inverted: false,
        },
    );
    b.hint(
        q,
        InitHint::FollowInput {
            input: 0,
            inverted: true,
        },
    );
    b.hint(
        fb,
        InitHint::FollowInput {
            input: 0,
            inverted: false,
        },
    );
    b.build().expect("static netlist")
}

/// Master-slave D flip-flop: inputs (D, CK). Master transparent at CK = 0.
fn dff_cell(d: f64) -> CellNetlist {
    let (din, ck) = (input_node(0), input_node(1));
    let mut b = NetlistBuilder::new(drive_name("dff", d), 2);
    let ckb = b.node();
    let m = b.node();
    let mq = b.node();
    let mfb = b.node();
    let s = b.node();
    let q = b.node();
    let sfb = b.node();
    inv_stage(&mut b, ck, ckb, 1.0);
    // Master: input tgate on CK = 0.
    tgate(&mut b, din, m, ckb, ck);
    inv_stage(&mut b, m, mq, 1.0);
    inv_stage(&mut b, mq, mfb, 1.0);
    tgate(&mut b, mfb, m, ck, ckb);
    // Slave: input tgate on CK = 1.
    tgate(&mut b, mq, s, ck, ckb);
    inv_stage(&mut b, s, q, d);
    inv_stage(&mut b, q, sfb, 1.0);
    tgate(&mut b, sfb, s, ckb, ck);
    let follow = |input: usize, inverted: bool| InitHint::FollowInput { input, inverted };
    b.hint(ckb, follow(1, true));
    b.hint(m, follow(0, false));
    b.hint(mq, follow(0, true));
    b.hint(mfb, follow(0, false));
    b.hint(s, follow(0, true));
    b.hint(q, follow(0, false));
    b.hint(sfb, follow(0, true));
    b.build().expect("static netlist")
}

/// 6-T SRAM bit cell. Single input = the stored bit (selects the stable
/// state); wordline is off (gates at GND) and both bitlines sit at VDD,
/// the standard retention-leakage setup.
fn sram6t_cell() -> CellNetlist {
    let mut b = NetlistBuilder::new("sram6t", 1);
    let q = b.node();
    let qb = b.node();
    inv_stage(&mut b, q, qb, 0.75);
    inv_stage(&mut b, qb, q, 0.75);
    // Access transistors, off (gate at GND), bitlines at VDD.
    b.nmos(VDD, GND, q, WN * 0.9);
    b.nmos(VDD, GND, qb, WN * 0.9);
    b.hint(
        q,
        InitHint::FollowInput {
            input: 0,
            inverted: false,
        },
    );
    b.hint(
        qb,
        InitHint::FollowInput {
            input: 0,
            inverted: true,
        },
    );
    b.build().expect("static netlist")
}

/// Half adder: `sum = A ⊕ B`, `carry = A·B`. Inputs (A, B).
fn halfadder_cell() -> CellNetlist {
    let (a, bb) = (input_node(0), input_node(1));
    let mut b = NetlistBuilder::new("halfadder_x1", 2);
    let an = b.node();
    let bn = b.node();
    let sum = b.node();
    let x1 = b.node();
    let x2 = b.node();
    let y1 = b.node();
    let y2 = b.node();
    let cb = b.node();
    let carry = b.node();
    inv_stage(&mut b, a, an, 1.0);
    inv_stage(&mut b, bb, bn, 1.0);
    // XOR network for sum.
    b.nmos(sum, a, x1, WN * 1.5);
    b.nmos(x1, bb, GND, WN * 1.5);
    b.nmos(sum, an, x2, WN * 1.5);
    b.nmos(x2, bn, GND, WN * 1.5);
    b.pmos(y1, a, VDD, WP * 1.5);
    b.pmos(sum, bn, y1, WP * 1.5);
    b.pmos(y2, an, VDD, WP * 1.5);
    b.pmos(sum, bb, y2, WP * 1.5);
    // NAND2 + INV for carry.
    b.pmos(cb, a, VDD, WP);
    b.pmos(cb, bb, VDD, WP);
    let mid = b.node();
    b.nmos(cb, a, mid, WN * 1.5);
    b.nmos(mid, bb, GND, WN * 1.5);
    inv_stage(&mut b, cb, carry, 1.0);
    b.hint(
        an,
        InitHint::FollowInput {
            input: 0,
            inverted: true,
        },
    );
    b.hint(
        bn,
        InitHint::FollowInput {
            input: 1,
            inverted: true,
        },
    );
    for n in [sum, cb, carry] {
        b.hint(n, InitHint::Fraction(0.5));
    }
    b.hint(x1, InitHint::Fraction(0.05));
    b.hint(x2, InitHint::Fraction(0.05));
    b.hint(mid, InitHint::Fraction(0.05));
    b.hint(y1, InitHint::Fraction(0.95));
    b.hint(y2, InitHint::Fraction(0.95));
    b.build().expect("static netlist")
}

/// 28-T mirror full adder. Inputs (A, B, Ci); outputs `sum`, `cout`.
fn fulladder_cell() -> CellNetlist {
    let (a, bb, ci) = (input_node(0), input_node(1), input_node(2));
    let mut b = NetlistBuilder::new("fulladder_x1", 3);
    let cob = b.node(); // carry-out bar
    let sb = b.node(); // sum bar
    let cout = b.node();
    let sum = b.node();
    // --- cob stage PDN: (A·B) || (Ci·(A||B))
    let x1 = b.node();
    b.nmos(cob, a, x1, WN * 1.5);
    b.nmos(x1, bb, GND, WN * 1.5);
    let x2 = b.node();
    b.nmos(cob, ci, x2, WN * 1.5);
    b.nmos(x2, a, GND, WN * 1.5);
    b.nmos(x2, bb, GND, WN * 1.5);
    // --- cob stage PUN (mirror): (A||B seen from VDD)
    let u1 = b.node();
    b.pmos(u1, a, VDD, WP * 1.5);
    b.pmos(cob, bb, u1, WP * 1.5);
    let u2 = b.node();
    b.pmos(u2, a, VDD, WP * 1.5);
    b.pmos(u2, bb, VDD, WP * 1.5);
    b.pmos(cob, ci, u2, WP * 1.5);
    // --- sb stage PDN: (A·B·Ci) || (cob·(A||B||Ci))
    let v1 = b.node();
    let v2 = b.node();
    b.nmos(sb, a, v1, WN * 2.0);
    b.nmos(v1, bb, v2, WN * 2.0);
    b.nmos(v2, ci, GND, WN * 2.0);
    let v3 = b.node();
    b.nmos(sb, cob, v3, WN * 2.0);
    b.nmos(v3, a, GND, WN * 2.0);
    b.nmos(v3, bb, GND, WN * 2.0);
    b.nmos(v3, ci, GND, WN * 2.0);
    // --- sb stage PUN mirrored
    let w1 = b.node();
    let w2 = b.node();
    b.pmos(w1, a, VDD, WP * 2.0);
    b.pmos(w2, bb, w1, WP * 2.0);
    b.pmos(sb, ci, w2, WP * 2.0);
    let w3 = b.node();
    b.pmos(w3, a, VDD, WP * 2.0);
    b.pmos(w3, bb, VDD, WP * 2.0);
    b.pmos(w3, ci, VDD, WP * 2.0);
    b.pmos(sb, cob, w3, WP * 2.0);
    // Output inverters.
    inv_stage(&mut b, cob, cout, 1.0);
    inv_stage(&mut b, sb, sum, 1.0);
    for n in [cob, sb, cout, sum] {
        b.hint(n, InitHint::Fraction(0.5));
    }
    for n in [x1, x2, v1, v2, v3] {
        b.hint(n, InitHint::Fraction(0.05));
    }
    for n in [u1, u2, w1, w2, w3] {
        b.hint(n, InitHint::Fraction(0.95));
    }
    b.build().expect("static netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_process::Technology;
    use leakage_sim::LeakageSolver;

    #[test]
    fn library_has_exactly_62_cells() {
        let lib = CellLibrary::standard_62();
        assert_eq!(lib.len(), 62);
        assert!(!lib.is_empty());
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let lib = CellLibrary::standard_62();
        for (id, cell) in lib.iter() {
            let looked_up = lib.cell_by_name(cell.name()).expect("name resolves");
            assert_eq!(looked_up.id(), id);
        }
        assert!(lib.cell_by_name("nonexistent_x1").is_none());
    }

    #[test]
    fn every_class_is_represented() {
        use std::collections::HashSet;
        let lib = CellLibrary::standard_62();
        let classes: HashSet<_> = lib.cells().iter().map(|c| c.class()).collect();
        assert_eq!(classes.len(), 15, "all 15 classes present");
    }

    #[test]
    fn cell_ids_are_dense_and_ordered() {
        let lib = CellLibrary::standard_62();
        for (i, cell) in lib.cells().iter().enumerate() {
            assert_eq!(cell.id(), CellId(i));
        }
    }

    #[test]
    fn areas_are_positive_and_scale_with_drive() {
        let lib = CellLibrary::standard_62();
        for cell in lib.cells() {
            assert!(cell.area_um2() > 0.0, "cell {}", cell.name());
        }
        let x1 = lib.cell_by_name("inv_x1").unwrap().area_um2();
        let x4 = lib.cell_by_name("inv_x4").unwrap().area_um2();
        assert!(x4 > x1);
    }

    #[test]
    fn all_cells_all_states_converge_with_positive_leakage() {
        let lib = CellLibrary::standard_62();
        let solver = LeakageSolver::new(&Technology::cmos90());
        for cell in lib.cells() {
            for state in 0..cell.n_states() {
                let leak = solver
                    .cell_leakage(cell.netlist(), state, 0.0, 0.0)
                    .unwrap_or_else(|e| panic!("{} state {state}: {e}", cell.name()));
                assert!(
                    leak > 1e-14 && leak < 1e-4,
                    "{} state {state}: leakage {leak}",
                    cell.name()
                );
            }
        }
    }

    #[test]
    fn input_counts_match_function() {
        let lib = CellLibrary::standard_62();
        assert_eq!(lib.cell_by_name("inv_x1").unwrap().n_inputs(), 1);
        assert_eq!(lib.cell_by_name("nand4_x1").unwrap().n_inputs(), 4);
        assert_eq!(lib.cell_by_name("aoi22_x1").unwrap().n_inputs(), 4);
        assert_eq!(lib.cell_by_name("mux2_x1").unwrap().n_inputs(), 3);
        assert_eq!(lib.cell_by_name("fulladder_x1").unwrap().n_inputs(), 3);
        assert_eq!(lib.cell_by_name("sram6t").unwrap().n_inputs(), 1);
        assert_eq!(lib.cell_by_name("dff_x1").unwrap().n_inputs(), 2);
    }

    #[test]
    fn fulladder_logic_levels() {
        // Functional sanity of the mirror adder: check sum/cout for all 8
        // input states via node voltages.
        let lib = CellLibrary::standard_62();
        let fa = lib.cell_by_name("fulladder_x1").unwrap();
        let solver = LeakageSolver::new(&Technology::cmos90());
        let vdd = 1.2;
        // node ids: cob, sb, cout, sum are the first four internals
        let first = 2 + fa.n_inputs();
        let (cout_node, sum_node) = (first + 2, first + 3);
        for state in 0..8u32 {
            let a = state & 1;
            let b = (state >> 1) & 1;
            let ci = (state >> 2) & 1;
            let total = a + b + ci;
            let want_sum = total % 2 == 1;
            let want_cout = total >= 2;
            let sol = solver.solve(fa.netlist(), state, 0.0, &[]).unwrap();
            let vs = sol.voltages[sum_node];
            let vc = sol.voltages[cout_node];
            assert_eq!(vs > vdd / 2.0, want_sum, "state {state}: sum = {vs}");
            assert_eq!(vc > vdd / 2.0, want_cout, "state {state}: cout = {vc}");
        }
    }

    #[test]
    fn xor_logic_levels() {
        let lib = CellLibrary::standard_62();
        let solver = LeakageSolver::new(&Technology::cmos90());
        let xor = lib.cell_by_name("xor2_x1").unwrap();
        let xnor = lib.cell_by_name("xnor2_x1").unwrap();
        // out node is the 3rd internal (after an, bn)
        let out = 2 + 2 + 2;
        for state in 0..4u32 {
            let a = state & 1;
            let b = (state >> 1) & 1;
            let sol = solver.solve(xor.netlist(), state, 0.0, &[]).unwrap();
            assert_eq!(
                sol.voltages[out] > 0.6,
                (a ^ b) == 1,
                "xor state {state}: {}",
                sol.voltages[out]
            );
            let sol = solver.solve(xnor.netlist(), state, 0.0, &[]).unwrap();
            assert_eq!(
                sol.voltages[out] > 0.6,
                (a ^ b) == 0,
                "xnor state {state}: {}",
                sol.voltages[out]
            );
        }
    }

    #[test]
    fn sram_retains_both_states() {
        let lib = CellLibrary::standard_62();
        let solver = LeakageSolver::new(&Technology::cmos90());
        let sram = lib.cell_by_name("sram6t").unwrap();
        let q = 2 + 1; // first internal
        let sol0 = solver.solve(sram.netlist(), 0, 0.0, &[]).unwrap();
        let sol1 = solver.solve(sram.netlist(), 1, 0.0, &[]).unwrap();
        assert!(sol0.voltages[q] < 0.3, "stored 0: q = {}", sol0.voltages[q]);
        assert!(sol1.voltages[q] > 0.9, "stored 1: q = {}", sol1.voltages[q]);
    }

    #[test]
    fn stack_effect_visible_in_library_nand4() {
        let lib = CellLibrary::standard_62();
        let solver = LeakageSolver::new(&Technology::cmos90());
        let nand4 = lib.cell_by_name("nand4_x1").unwrap();
        let all_low = solver
            .cell_leakage(nand4.netlist(), 0b0000, 0.0, 0.0)
            .unwrap();
        let one_low = solver
            .cell_leakage(nand4.netlist(), 0b0111, 0.0, 0.0)
            .unwrap();
        assert!(
            one_low / all_low > 4.0,
            "deep stack ratio {}",
            one_low / all_low
        );
    }
}
