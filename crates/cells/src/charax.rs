//! Cell leakage characterization: Monte-Carlo and analytical paths (§2.1).
//!
//! Both paths view a cell's leakage in a given input state as a function
//! of a single channel-length deviation `ΔL` shared by all its transistors
//! (within-cell lengths are fully correlated — the devices are microns
//! apart, §2.1.1):
//!
//! * the **analytical** path sweeps `ΔL` over a few points, fits
//!   `ln X = ln a + bΔL + cΔL²`, and computes moments exactly via the MGF;
//! * the **Monte-Carlo** path samples `ΔL ~ N(0, σ_L)` and evaluates the
//!   leakage through a dense tabulation of `ln X(ΔL)` (the tabulation
//!   replaces re-solving the same 1-D curve thousands of times; its
//!   interpolation error is orders of magnitude below MC noise).

use crate::error::CellError;
use crate::library::{Cell, CellLibrary};
use crate::model::{CharacterizedCell, CharacterizedLibrary, LeakageTriplet, StateModel};
use leakage_numeric::interp::LinearInterp;
use leakage_numeric::parallel::Parallelism;
use leakage_numeric::regression::fit_exp_quadratic;
use leakage_numeric::stats::RunningStats;
use leakage_numeric::Instruments;
use leakage_process::Technology;
use leakage_sim::netlist::CellNetlist;
use leakage_sim::LeakageSolver;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Which characterization method to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CharMethod {
    /// Fit `(a, b, c)` on a `ΔL` sweep of `sweep_points` points spanning
    /// ±3σ, then compute moments analytically (paper §2.1.2).
    Analytical {
        /// Number of sweep points (≥ 3).
        sweep_points: usize,
    },
    /// Monte-Carlo sampling of `ΔL` (paper §2.1.1).
    MonteCarlo {
        /// Number of samples per state.
        samples: usize,
        /// RNG seed (deterministic per cell/state).
        seed: u64,
    },
}

impl Default for CharMethod {
    fn default() -> CharMethod {
        CharMethod::Analytical { sweep_points: 13 }
    }
}

/// Characterization engine bound to a technology.
///
/// # Example
///
/// ```no_run
/// use leakage_cells::charax::{Characterizer, CharMethod};
/// use leakage_cells::library::CellLibrary;
/// use leakage_process::Technology;
///
/// let lib = CellLibrary::standard_62();
/// let charax = Characterizer::new(&Technology::cmos90());
/// let model = charax.characterize_library(&lib, CharMethod::default())?;
/// assert_eq!(model.len(), 62);
/// # Ok::<(), leakage_cells::CellError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Characterizer {
    solver: LeakageSolver,
    l_sigma: f64,
    sweep_span_sigmas: f64,
}

impl Characterizer {
    /// Creates a characterizer; the `ΔL` distribution comes from the
    /// technology card's channel-length budget (total σ).
    pub fn new(tech: &Technology) -> Characterizer {
        Characterizer {
            solver: LeakageSolver::new(tech),
            l_sigma: tech.l_variation().total_sigma(),
            sweep_span_sigmas: 3.0,
        }
    }

    /// Total channel-length sigma used (nm).
    pub fn l_sigma(&self) -> f64 {
        self.l_sigma
    }

    /// Fits the `(a, b, c)` triplet for one cell state from a `ΔL` sweep.
    /// Returns the triplet and the log-space R².
    ///
    /// # Errors
    ///
    /// Propagates solver failures; returns [`CellError::InvalidArgument`]
    /// for fewer than three sweep points.
    pub fn fit_state(
        &self,
        netlist: &CellNetlist,
        state: u32,
        sweep_points: usize,
    ) -> Result<(LeakageTriplet, f64), CellError> {
        self.fit_state_instrumented(netlist, state, sweep_points, Instruments::none())
    }

    /// [`Characterizer::fit_state`] reporting to an injected
    /// [`Instruments`]. Counter-only (solver ticks come from
    /// [`leakage_sim::LeakageSolver::cell_leakage_instrumented`]) so it is
    /// safe to call from parallel characterization workers.
    ///
    /// # Errors
    ///
    /// Same as [`Characterizer::fit_state`].
    pub fn fit_state_instrumented(
        &self,
        netlist: &CellNetlist,
        state: u32,
        sweep_points: usize,
        ins: Instruments<'_>,
    ) -> Result<(LeakageTriplet, f64), CellError> {
        if sweep_points < 3 {
            return Err(CellError::InvalidArgument {
                reason: "quadratic fit needs at least three sweep points".into(),
            });
        }
        let span = self.sweep_span_sigmas * self.l_sigma;
        let mut dls = Vec::with_capacity(sweep_points);
        let mut leaks = Vec::with_capacity(sweep_points);
        for i in 0..sweep_points {
            let dl = -span + 2.0 * span * i as f64 / (sweep_points - 1) as f64;
            let leak = self
                .solver
                .cell_leakage_instrumented(netlist, state, dl, 0.0, ins)?;
            dls.push(dl);
            leaks.push(leak);
        }
        let (a, b, c, r2) = fit_exp_quadratic(&dls, &leaks)?;
        Ok((LeakageTriplet::new(a, b, c)?, r2))
    }

    /// Tabulates `ln X(ΔL)` densely over ±5σ for fast Monte-Carlo reuse.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn tabulate_state(
        &self,
        netlist: &CellNetlist,
        state: u32,
        points: usize,
    ) -> Result<LinearInterp, CellError> {
        let points = points.max(8);
        let span = 5.0 * self.l_sigma;
        let mut dls = Vec::with_capacity(points);
        let mut logs = Vec::with_capacity(points);
        for i in 0..points {
            let dl = -span + 2.0 * span * i as f64 / (points - 1) as f64;
            let leak = self.solver.cell_leakage(netlist, state, dl, 0.0)?;
            dls.push(dl);
            logs.push(leak.max(1e-300).ln());
        }
        Ok(LinearInterp::new(dls, logs)?)
    }

    /// Monte-Carlo mean/std of a cell state's leakage under
    /// `ΔL ~ N(0, σ_L)` using a dense `ln X` tabulation.
    ///
    /// # Errors
    ///
    /// Propagates solver and distribution errors.
    pub fn mc_state(
        &self,
        netlist: &CellNetlist,
        state: u32,
        samples: usize,
        rng: &mut StdRng,
    ) -> Result<(f64, f64), CellError> {
        let table = self.tabulate_state(netlist, state, 61)?;
        let normal = Normal::new(0.0, self.l_sigma).map_err(|_| CellError::InvalidArgument {
            reason: "sigma must be positive for monte-carlo".into(),
        })?;
        let mut stats = RunningStats::new();
        for _ in 0..samples {
            let dl: f64 = normal.sample(rng);
            stats.push(table.eval(dl).exp());
        }
        Ok((stats.mean(), stats.sample_std()))
    }

    /// Characterizes every input state of a cell.
    ///
    /// # Errors
    ///
    /// Propagates failures from the selected method.
    pub fn characterize_cell(
        &self,
        cell: &Cell,
        method: CharMethod,
    ) -> Result<CharacterizedCell, CellError> {
        self.characterize_cell_instrumented(cell, method, Instruments::none())
    }

    /// [`Characterizer::characterize_cell`] reporting to an injected
    /// [`Instruments`]. Counter-only, so library-level parallel runs see
    /// thread-count-independent totals.
    ///
    /// # Errors
    ///
    /// Propagates failures from the selected method.
    pub fn characterize_cell_instrumented(
        &self,
        cell: &Cell,
        method: CharMethod,
        ins: Instruments<'_>,
    ) -> Result<CharacterizedCell, CellError> {
        ins.add("cells.charax.cells", 1);
        ins.add("cells.charax.states", u64::from(cell.n_states()));
        let mut states = Vec::with_capacity(cell.n_states() as usize);
        for state in 0..cell.n_states() {
            let model = match method {
                CharMethod::Analytical { sweep_points } => {
                    let (triplet, r2) =
                        self.fit_state_instrumented(cell.netlist(), state, sweep_points, ins)?;
                    StateModel {
                        state,
                        mean: triplet.mean(self.l_sigma)?,
                        std: triplet.std(self.l_sigma)?,
                        triplet: Some(triplet),
                        fit_r2: Some(r2),
                    }
                }
                CharMethod::MonteCarlo { samples, seed } => {
                    ins.add("cells.charax.mc_samples", samples as u64);
                    let mut rng =
                        StdRng::seed_from_u64(seed ^ (cell.id().0 as u64) << 16 ^ state as u64);
                    let (mean, std) = self.mc_state(cell.netlist(), state, samples, &mut rng)?;
                    StateModel {
                        state,
                        triplet: None,
                        mean,
                        std,
                        fit_r2: None,
                    }
                }
            };
            states.push(model);
        }
        Ok(CharacterizedCell {
            id: cell.id(),
            name: cell.name().to_owned(),
            n_inputs: cell.n_inputs(),
            states,
        })
    }

    /// Characterizes a whole library.
    ///
    /// # Errors
    ///
    /// Propagates per-cell failures (annotated with the cell name by the
    /// underlying error).
    pub fn characterize_library(
        &self,
        lib: &CellLibrary,
        method: CharMethod,
    ) -> Result<CharacterizedLibrary, CellError> {
        self.characterize_library_with(lib, method, Parallelism::auto())
    }

    /// [`Characterizer::characterize_library`] with an explicit thread
    /// budget, one work unit per cell.
    ///
    /// Each cell's characterization is already self-contained — the
    /// Monte-Carlo path seeds its RNG from the cell id and state — so the
    /// result is identical for every thread count, and on failure the
    /// reported error is the same one the serial loop would hit first
    /// (errors are inspected in library order).
    ///
    /// # Errors
    ///
    /// Propagates per-cell failures (annotated with the cell name by the
    /// underlying error).
    pub fn characterize_library_with(
        &self,
        lib: &CellLibrary,
        method: CharMethod,
        par: Parallelism,
    ) -> Result<CharacterizedLibrary, CellError> {
        self.characterize_library_instrumented(lib, method, par, Instruments::none())
    }

    /// [`Characterizer::characterize_library_with`] reporting to an
    /// injected [`Instruments`]: a span over the whole characterization
    /// (opened and closed on the calling thread) plus counter-only
    /// per-cell/per-solve metrics from the workers. Counters are plain
    /// commutative increments, so the aggregated totals are identical for
    /// every thread count.
    ///
    /// # Errors
    ///
    /// Propagates per-cell failures (annotated with the cell name by the
    /// underlying error).
    pub fn characterize_library_instrumented(
        &self,
        lib: &CellLibrary,
        method: CharMethod,
        par: Parallelism,
        ins: Instruments<'_>,
    ) -> Result<CharacterizedLibrary, CellError> {
        let span = ins.span("cells.characterize_library");
        let all = lib.cells();
        debug_assert!(
            !all.is_empty() || lib.is_empty(),
            "chunk indexes stay below len"
        );
        let results = par.map_chunks(all.len(), |i| {
            self.characterize_cell_instrumented(&all[i], method, ins)
        });
        let mut cells = Vec::with_capacity(all.len());
        for r in results {
            cells.push(r?);
        }
        drop(span);
        Ok(CharacterizedLibrary {
            cells,
            l_sigma: self.l_sigma,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charax() -> Characterizer {
        Characterizer::new(&Technology::cmos90())
    }

    #[test]
    fn fit_quality_is_high_for_inverter() {
        let c = charax();
        let inv = CellNetlist::inverter(0.6, 1.2);
        for state in 0..2 {
            let (triplet, r2) = c.fit_state(&inv, state, 13).unwrap();
            assert!(r2 > 0.999, "state {state}: r2 {r2}");
            assert!(triplet.b() < 0.0, "leakage decreases with L");
            // model reproduces the solver at nominal within a few percent
            let solver = LeakageSolver::new(&Technology::cmos90());
            let truth = solver.cell_leakage(&inv, state, 0.0, 0.0).unwrap();
            assert!(
                (triplet.eval(0.0) - truth).abs() / truth < 0.05,
                "state {state}"
            );
        }
    }

    #[test]
    fn analytical_matches_mc_for_nand2() {
        let c = charax();
        let nand2 = CellNetlist::nand(2, 0.6, 1.2);
        let (triplet, _) = c.fit_state(&nand2, 0, 13).unwrap();
        let an_mean = triplet.mean(c.l_sigma()).unwrap();
        let an_std = triplet.std(c.l_sigma()).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let (mc_mean, mc_std) = c.mc_state(&nand2, 0, 60_000, &mut rng).unwrap();
        // Paper: mean error < 2 %, std error up to ~10 %.
        assert!(
            (an_mean - mc_mean).abs() / mc_mean < 0.03,
            "mean: {an_mean} vs {mc_mean}"
        );
        assert!(
            (an_std - mc_std).abs() / mc_std < 0.12,
            "std: {an_std} vs {mc_std}"
        );
    }

    #[test]
    fn fit_rejects_too_few_points() {
        let c = charax();
        let inv = CellNetlist::inverter(0.6, 1.2);
        assert!(c.fit_state(&inv, 0, 2).is_err());
    }

    #[test]
    fn characterize_cell_analytical_covers_all_states() {
        let lib = CellLibrary::standard_62();
        let c = charax();
        let nand3 = lib.cell_by_name("nand3_x1").unwrap();
        let model = c
            .characterize_cell(nand3, CharMethod::Analytical { sweep_points: 9 })
            .unwrap();
        assert_eq!(model.states.len(), 8);
        for s in &model.states {
            assert!(s.mean > 0.0 && s.std > 0.0);
            assert!(s.triplet.is_some());
            assert!(
                s.fit_r2.unwrap() > 0.99,
                "state {}: r2 {:?}",
                s.state,
                s.fit_r2
            );
        }
        // state 0 (all inputs low, full stack) leaks least
        let min_state = model
            .states
            .iter()
            .min_by(|a, b| a.mean.partial_cmp(&b.mean).unwrap())
            .unwrap();
        assert_eq!(min_state.state, 0, "full stack leaks least");
    }

    #[test]
    fn characterize_cell_mc_is_deterministic() {
        let lib = CellLibrary::standard_62();
        let c = charax();
        let inv = lib.cell_by_name("inv_x1").unwrap();
        let m1 = c
            .characterize_cell(
                inv,
                CharMethod::MonteCarlo {
                    samples: 2000,
                    seed: 9,
                },
            )
            .unwrap();
        let m2 = c
            .characterize_cell(
                inv,
                CharMethod::MonteCarlo {
                    samples: 2000,
                    seed: 9,
                },
            )
            .unwrap();
        assert_eq!(m1, m2, "same seed, same result");
        assert!(m1.states[0].triplet.is_none(), "mc mode carries no triplet");
    }

    #[test]
    fn characterize_library_parallel_matches_serial() {
        let lib = CellLibrary::standard_62();
        let c = charax();
        let method = CharMethod::Analytical { sweep_points: 5 };
        let serial = c
            .characterize_library_with(&lib, method, Parallelism::serial())
            .unwrap();
        let parallel = c
            .characterize_library_with(&lib, method, Parallelism::threads(4))
            .unwrap();
        assert_eq!(serial.cells.len(), lib.len());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn tabulation_is_monotone_decreasing_for_inverter() {
        let c = charax();
        let inv = CellNetlist::inverter(0.6, 1.2);
        let table = c.tabulate_state(&inv, 0, 31).unwrap();
        let v: Vec<f64> = table.values().to_vec();
        for w in v.windows(2) {
            assert!(w[1] < w[0], "ln leakage decreases with L");
        }
    }
}
