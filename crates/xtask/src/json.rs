//! Minimal JSON parser — just enough to read the incremental cache back
//! and to let the tests validate SARIF output shape. Dependency-free on
//! purpose: xtask keeps the tidy-style zero-dependency build (the
//! workspace's `serde_json` is a separate concern of the product crates).
//!
//! Numbers are parsed as `f64`; object keys keep insertion order is NOT
//! guaranteed (a `BTreeMap` is used, so keys sort lexicographically).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member access: `v.get("key")` for objects, else `None`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, when this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing garbage is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            m.insert(key, val);
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(m));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(a));
        }
        loop {
            self.ws();
            a.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(a));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed for lint data;
                            // map unpaired surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not just one byte.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = text.chars().next().ok_or("empty string tail")?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_engine_json() {
        let v = parse(r#"[{"rule":"l1","line":3,"ok":true,"x":null,"f":-1.5e2}]"#).unwrap();
        let first = &v.as_arr().unwrap()[0];
        assert_eq!(first.get("rule").unwrap().as_str(), Some("l1"));
        assert_eq!(first.get("line").unwrap().as_f64(), Some(3.0));
        assert_eq!(first.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(first.get("x"), Some(&Value::Null));
        assert_eq!(first.get("f").unwrap().as_f64(), Some(-150.0));
    }

    #[test]
    fn escapes_decoded() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"files":{"a.rs":{"hash":"h","diags":[]}}}"#).unwrap();
        let a = v.get("files").unwrap().get("a.rs").unwrap();
        assert_eq!(a.get("hash").unwrap().as_str(), Some("h"));
        assert_eq!(a.get("diags").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"λ → μ\"").unwrap();
        assert_eq!(v.as_str(), Some("λ → μ"));
    }
}
