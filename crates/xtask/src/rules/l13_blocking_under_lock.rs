//! L13 `blocking-under-lock`: nothing slow may run while a guard is
//! live. Two classes are flagged inside any guard region (direct
//! `.lock()`/`.read()`/`.write()` sites and guard-returning wrapper
//! calls alike):
//!
//! - *outright blocking* calls — socket accept/connect, buffered
//!   reads, writes/flushes, sleeps, thread joins, and channel
//!   receives;
//! - *kernel work* — any call that reaches a loop-bearing fn in the
//!   characterization/estimation/FFT/Monte-Carlo/simulation kernels
//!   over heavy edges (instrumentation vocabulary excluded), with the
//!   call chain as evidence. The single-flight store must characterize
//!   and plan outside its family mutex; holders of a hot lock must
//!   not re-enter the estimation stack.
//!
//! Escape hatch: a justified `allow(blocking-under-lock)` on the call
//! line, for work that is provably O(1) or where the guard is a
//! startup-only lock with no contention.

use crate::engine::{Diagnostic, Rule, Severity, Workspace};
use crate::sync::{SyncFacts, BLOCKING_CALLS};

/// The L13 rule.
pub struct BlockingUnderLock;

impl Rule for BlockingUnderLock {
    fn id(&self) -> &'static str {
        "blocking-under-lock"
    }

    fn code(&self) -> &'static str {
        "L13"
    }

    fn description(&self) -> &'static str {
        "no blocking I/O, sleep, join, channel recv, or reachable kernel loop while a guard is live"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
        let sync = SyncFacts::build(ws.files, &ws.graph);
        for (id, s) in ws.graph.iter(ws.files) {
            let (fi, _) = ws.graph.node(id);
            let file = &ws.files[fi];
            // Outright blocking calls, by name, under any live guard.
            for call in &s.calls {
                if !BLOCKING_CALLS.contains(&call.name.as_str()) {
                    continue;
                }
                let held = sync.held_at(id, call.tok);
                let Some(acq) = held.first() else { continue };
                out.push(self.diag(
                    &file.rel,
                    call.line,
                    format!(
                        "blocking call `{}` while `{}` (acquired by {}) is held",
                        call.name, acq.identity, acq.how
                    ),
                ));
            }
            // Calls that reach loop-bearing kernel work under a guard.
            for (ci, targets) in &sync.heavy_calls[id] {
                let call = &s.calls[*ci];
                let held = sync.held_at(id, call.tok);
                let Some(acq) = held.first() else { continue };
                let Some(&t) = targets.iter().find(|&&t| sync.heavy[t]) else {
                    continue;
                };
                let chain = sync.heavy_chain(t);
                let chain_str = crate::graph::render_chain(&ws.graph, ws.files, &chain);
                out.push(self.diag(
                    &file.rel,
                    call.line,
                    format!(
                        "`{}` reaches loop-bearing kernel work ({chain_str}) while `{}` \
                         (acquired by {}) is held",
                        call.name, acq.identity, acq.how
                    ),
                ));
            }
        }
    }
}

impl BlockingUnderLock {
    fn diag(&self, rel: &str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule: self.id(),
            code: self.code(),
            severity: Severity::Error,
            file: rel.to_owned(),
            line,
            col: 1,
            message,
            help: "move the slow work outside the guard (compute first, publish under the \
                   lock — see the single-flight store), or justify with \
                   `// chipleak-lint: allow(blocking-under-lock): <why this is O(1)>`"
                .into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Context, CrateInfo};
    use crate::source::{FileKind, SourceFile};

    fn lint(files: Vec<(&str, &str)>) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = files
            .into_iter()
            .map(|(rel, src)| {
                SourceFile::parse(rel.to_owned(), src.to_owned(), FileKind::classify(rel))
            })
            .collect();
        let ctx = Context {
            crates: vec![CrateInfo {
                rel_root: "crates/core".into(),
                name: "leakage-core".into(),
                has_parallel_feature: true,
            }],
        };
        let ws = Workspace {
            files: &files,
            ctx: &ctx,
            graph: crate::graph::CallGraph::build(&files, &ctx.crates),
        };
        let mut out = Vec::new();
        BlockingUnderLock.check_workspace(&ws, &mut out);
        out
    }

    const LIB: &str = "crates/core/src/lib.rs";
    const ESTIMATOR: &str = "crates/core/src/estimator/exact.rs";

    #[test]
    fn sleep_under_guard_flagged() {
        let d = lint(vec![(
            LIB,
            "pub struct S { a: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn f(&self) {\n\
                 let _g = self.a.lock().unwrap();\n\
                 std::thread::sleep(std::time::Duration::from_millis(1));\n\
               }\n\
             }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`sleep` while `S::a`"), "{d:?}");
    }

    #[test]
    fn recv_under_guard_flagged_but_clean_after_drop() {
        let d = lint(vec![(
            LIB,
            "pub struct S { a: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn bad(&self, rx: &std::sync::mpsc::Receiver<u32>) {\n\
                 let _g = self.a.lock().unwrap();\n\
                 let _ = rx.recv();\n\
               }\n\
               pub fn good(&self, rx: &std::sync::mpsc::Receiver<u32>) {\n\
                 let g = self.a.lock().unwrap();\n\
                 drop(g);\n\
                 let _ = rx.recv();\n\
               }\n\
             }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 5, "{d:?}");
    }

    #[test]
    fn kernel_loop_reached_under_guard_flagged_with_chain() {
        let d = lint(vec![(
            ESTIMATOR,
            "pub fn kernel(xs: &[f64]) -> f64 {\n\
               let mut m = 0.0f64;\n\
               for i in 0..xs.len() { m = m.max(xs[i]); }\n\
               m\n\
             }\n\
             pub struct S { a: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn f(&self, xs: &[f64]) -> f64 {\n\
                 let _g = self.a.lock().unwrap();\n\
                 kernel(xs)\n\
               }\n\
             }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("kernel"), "{d:?}");
        assert!(d[0].message.contains("while `S::a`"), "{d:?}");
    }

    #[test]
    fn kernel_called_outside_guard_is_clean() {
        let d = lint(vec![(
            ESTIMATOR,
            "pub fn kernel(xs: &[f64]) -> f64 {\n\
               let mut m = 0.0f64;\n\
               for i in 0..xs.len() { m = m.max(xs[i]); }\n\
               m\n\
             }\n\
             pub struct S { a: std::sync::Mutex<f64> }\n\
             impl S {\n\
               pub fn f(&self, xs: &[f64]) {\n\
                 let v = kernel(xs);\n\
                 let mut g = self.a.lock().unwrap();\n\
                 *g = v.max(*g);\n\
               }\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn recorder_instrumentation_under_guard_is_clean() {
        let d = lint(vec![(
            ESTIMATOR,
            "pub struct Ins;\n\
             impl Ins {\n\
               pub fn add(&self, _c: &'static str, _by: u64) {\n\
                 let mut i = 0usize;\n\
                 for _ in 0..2 { i += 1; }\n\
                 let _ = i;\n\
               }\n\
             }\n\
             pub struct S { a: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn f(&self, ins: &Ins) {\n\
                 let _g = self.a.lock().unwrap();\n\
                 ins.add(\"hits\", 1);\n\
               }\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
