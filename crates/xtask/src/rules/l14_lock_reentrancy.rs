//! L14 `lock-reentrancy`: `std::sync` mutexes are not reentrant —
//! re-acquiring a held lock deadlocks the calling thread (or panics)
//! with no second thread involved. The rule flags any acquisition of
//! a lock identity that is already held at that token: a second
//! `.lock()` in the same fn, or a call whose strict-edge closure
//! (including `Recorder`-trait methods and guard-returning wrappers)
//! acquires the held identity, with the call chain as evidence.
//!
//! Escape hatch: a justified `allow(lock-reentrancy)` on the
//! re-acquiring line, for paths proven disjoint at runtime (e.g. the
//! callee only touches a different shard of a sharded lock array).

use crate::engine::{Diagnostic, Rule, Severity, Workspace};
use crate::sync::SyncFacts;
use std::collections::BTreeSet;

/// The L14 rule.
pub struct LockReentrancy;

impl Rule for LockReentrancy {
    fn id(&self) -> &'static str {
        "lock-reentrancy"
    }

    fn code(&self) -> &'static str {
        "L14"
    }

    fn description(&self) -> &'static str {
        "no call chain may re-acquire a lock the caller already holds (std locks self-deadlock)"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
        let sync = SyncFacts::build(ws.files, &ws.graph);
        let mut seen: BTreeSet<(usize, u32, &str)> = BTreeSet::new();
        for r in &sync.reentries {
            if !seen.insert((r.node, r.line, r.identity.as_str())) {
                continue;
            }
            let (fi, _) = ws.graph.node(r.node);
            let file = &ws.files[fi];
            let message = match r.target {
                None => format!("`{}` is re-acquired while already held", r.identity),
                Some(t) => {
                    let mut chain = vec![r.node];
                    chain.extend(sync.acquire_chain(t, &r.identity));
                    let chain_str = crate::graph::render_chain(&ws.graph, ws.files, &chain);
                    format!(
                        "call chain re-acquires `{}` already held by the caller: {chain_str}",
                        r.identity
                    )
                }
            };
            out.push(Diagnostic {
                rule: self.id(),
                code: self.code(),
                severity: Severity::Error,
                file: file.rel.clone(),
                line: r.line,
                col: r.col,
                message,
                help: "drop the guard before the call, pass the guard (or the locked data) \
                       down instead of re-locking, or justify with \
                       `// chipleak-lint: allow(lock-reentrancy): <why the paths are disjoint>`"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Context, CrateInfo};
    use crate::source::{FileKind, SourceFile};

    fn lint(files: Vec<(&str, &str)>) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = files
            .into_iter()
            .map(|(rel, src)| {
                SourceFile::parse(rel.to_owned(), src.to_owned(), FileKind::classify(rel))
            })
            .collect();
        let ctx = Context {
            crates: vec![CrateInfo {
                rel_root: "crates/core".into(),
                name: "leakage-core".into(),
                has_parallel_feature: true,
            }],
        };
        let ws = Workspace {
            files: &files,
            ctx: &ctx,
            graph: crate::graph::CallGraph::build(&files, &ctx.crates),
        };
        let mut out = Vec::new();
        LockReentrancy.check_workspace(&ws, &mut out);
        out
    }

    const LIB: &str = "crates/core/src/lib.rs";

    #[test]
    fn double_lock_in_one_fn_flagged() {
        let d = lint(vec![(
            LIB,
            "pub struct S { a: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn f(&self) {\n\
                 let _g1 = self.a.lock().unwrap();\n\
                 let _g2 = self.a.lock().unwrap();\n\
               }\n\
             }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("re-acquired"), "{d:?}");
    }

    #[test]
    fn reentry_through_call_chain_flagged_with_chain() {
        let d = lint(vec![(
            LIB,
            "pub struct S { a: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn f(&self) {\n\
                 let _g = self.a.lock().unwrap();\n\
                 self.helper();\n\
               }\n\
               fn helper(&self) { self.leaf(); }\n\
               fn leaf(&self) { let _g = self.a.lock().unwrap(); }\n\
             }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("S::f -> S::helper -> S::leaf"),
            "{d:?}"
        );
    }

    #[test]
    fn sequential_locks_are_clean() {
        let d = lint(vec![(
            LIB,
            "pub struct S { a: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn f(&self) {\n\
                 let g1 = self.a.lock().unwrap();\n\
                 drop(g1);\n\
                 let _g2 = self.a.lock().unwrap();\n\
               }\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn distinct_locals_do_not_unify() {
        let d = lint(vec![(
            LIB,
            "pub fn f() {\n\
               let m1 = std::sync::Mutex::new(0);\n\
               let m2 = std::sync::Mutex::new(0);\n\
               let _g1 = m1.lock().unwrap();\n\
               let _g2 = m2.lock().unwrap();\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn recorder_trait_reentry_flagged() {
        let d = lint(vec![(
            LIB,
            "pub struct R { shard: std::sync::Mutex<u32> }\n\
             impl R {\n\
               pub fn bump(&self, by: u32) {\n\
                 *self.shard.lock().unwrap() += by;\n\
               }\n\
               pub fn snapshot(&self) -> u32 {\n\
                 let g = self.shard.lock().unwrap();\n\
                 self.bump(0);\n\
                 *g\n\
               }\n\
             }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("R::snapshot -> R::bump"), "{d:?}");
    }
}
