//! L6 `no-silent-fallback`: an `Err(...) => {}` match arm in library code
//! swallows a failure with no trace. The robustness contract of the
//! estimation pipeline is that every degradation is *recorded* — an obs
//! counter, a `DegradationReport` entry, a log line — so a production run
//! that silently skipped an estimator can always be distinguished from
//! one that ran it. An empty arm makes that impossible; at minimum it
//! must emit an observability event (`ins.add(...)`) inside the arm, or
//! carry a justified suppression.

use crate::engine::{Context, Diagnostic, Rule, Severity};
use crate::lexer::Tok;
use crate::source::SourceFile;

/// The L6 rule.
pub struct SilentFallback;

impl Rule for SilentFallback {
    fn id(&self) -> &'static str {
        "no-silent-fallback"
    }

    fn code(&self) -> &'static str {
        "L6"
    }

    fn description(&self) -> &'static str {
        "an empty `Err(...) => {}` match arm drops a failure without recording \
         it; emit an obs event (or return/log) inside the arm"
    }

    fn check_file(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        if file.kind != crate::source::FileKind::Library {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if !file.lintable_library_line(t.line) {
                continue;
            }
            if !t.is_ident("Err") {
                continue;
            }
            // `Err ( <pattern> )` — skip the balanced pattern parens.
            let Some(open) = toks.get(i + 1).filter(|u| u.is_punct('(')) else {
                continue;
            };
            let _ = open;
            let Some(after_pat) = skip_parens(toks, i + 1) else {
                continue;
            };
            // `=>` lexes as two punct tokens.
            if !(toks.get(after_pat).is_some_and(|u| u.is_punct('='))
                && toks.get(after_pat + 1).is_some_and(|u| u.is_punct('>')))
            {
                continue;
            }
            let body = after_pat + 2;
            // Empty block `{}` or unit `()` — nothing recorded, nothing
            // returned: the failure vanishes.
            let empty_block = toks.get(body).is_some_and(|u| u.is_punct('{'))
                && toks.get(body + 1).is_some_and(|u| u.is_punct('}'));
            let unit_body = toks.get(body).is_some_and(|u| u.is_punct('('))
                && toks.get(body + 1).is_some_and(|u| u.is_punct(')'))
                && !toks.get(body + 2).is_some_and(|u| u.is_punct('.'));
            if empty_block || unit_body {
                out.push(Diagnostic {
                    rule: self.id(),
                    code: self.code(),
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: "silent fallback: this `Err(...)` arm discards the failure \
                              without recording it"
                        .into(),
                    help: "emit an obs event (e.g. `ins.add(\"...skipped\", 1)`) inside the \
                           arm, surface the error, or add \
                           `// chipleak-lint: allow(no-silent-fallback): <why>`"
                        .into(),
                });
            }
        }
    }
}

/// Index just past a balanced `(...)` starting at `open` (must be `(`).
/// Braces inside the pattern (`Err(E::V { .. })`) don't affect the depth.
fn skip_parens(tokens: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('(') {
            depth += 1;
        } else if tokens[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn check(src: &str, kind: FileKind) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/d/src/x.rs".into(), src.into(), kind);
        let mut out = Vec::new();
        SilentFallback.check_file(&f, &Context::default(), &mut out);
        out
    }

    #[test]
    fn flags_empty_block_and_unit_arms() {
        let src = "fn f(r: Result<u8, E>) {\n\
                     match r {\n\
                       Ok(v) => use_it(v),\n\
                       Err(_) => {}\n\
                     }\n\
                     match r {\n\
                       Ok(v) => use_it(v),\n\
                       Err(E::NotApplicable { .. }) => (),\n\
                       Err(e) => log(e),\n\
                     }\n\
                   }\n";
        let d = check(src, FileKind::Library);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.code == "L6"));
    }

    #[test]
    fn recording_arms_are_fine() {
        let src = "fn f(r: Result<u8, E>, ins: Ins) {\n\
                     match r {\n\
                       Ok(v) => use_it(v),\n\
                       Err(E::NotApplicable { .. }) => {\n\
                         ins.add(\"core.skip\", 1);\n\
                       }\n\
                       Err(e) => return Err(e),\n\
                     }\n\
                   }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }

    #[test]
    fn err_construction_is_not_a_match_arm() {
        let src = "fn f() -> Result<(), E> { Err(E::Bad) }\n\
                   fn g() -> Result<(), E> { Err(make()) }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }

    #[test]
    fn closure_arms_returning_unit_calls_are_fine() {
        // `Err(e) => ().into()` style — unit followed by a method call is
        // an expression, not a discard.
        let src = "fn f(r: Result<u8, E>) -> D {\n\
                     match r { Ok(_) => D::A, Err(_) => ().into() }\n\
                   }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t(r: Result<u8, E>) {\n    match r { Ok(_) => {}, Err(_) => {} }\n  }\n}\n";
        assert!(check(src, FileKind::Library).is_empty());
        assert!(check(
            "fn f(r: Result<u8, E>) { match r { Ok(_) => {}, Err(_) => {} } }\n",
            FileKind::Test
        )
        .is_empty());
    }
}
