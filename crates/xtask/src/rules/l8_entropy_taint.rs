//! L8 `entropy-taint`: interprocedural upgrade of L2. An ambient entropy
//! or wall-clock read anywhere in the workspace must not be reachable from
//! an estimator output — `pub` functions of the estimator stack
//! (`crates/core/src/estimator/`) and the Monte-Carlo driver
//! (`crates/montecarlo/`). L2 catches the read textually inside library
//! files; L8 catches it being *laundered* through helpers in any file the
//! estimators can call into, and reports the full call chain as evidence.
//!
//! The one sanctioned bridge is unchanged from L2: wall-clock reads inside
//! an `impl Clock for ...` block in `crates/obs/` (the injectable-clock
//! pattern) are exempt.

use crate::engine::{Diagnostic, Rule, Severity, Workspace};

/// The L8 rule.
pub struct EntropyTaint;

/// `true` when the fn at `rel` is an estimator-output root.
fn is_root(rel: &str, s: &crate::summary::FnSummary) -> bool {
    s.is_pub
        && !s.in_test
        && (rel.starts_with("crates/core/src/estimator/") || rel.starts_with("crates/montecarlo/"))
}

impl Rule for EntropyTaint {
    fn id(&self) -> &'static str {
        "entropy-taint"
    }

    fn code(&self) -> &'static str {
        "L8"
    }

    fn description(&self) -> &'static str {
        "no ambient entropy / wall-clock read may be reachable from estimator \
         outputs through any call chain"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
        let roots: Vec<usize> = ws
            .graph
            .iter(ws.files)
            .filter(|(id, s)| {
                let (fi, _) = ws.graph.node(*id);
                is_root(&ws.files[fi].rel, s)
            })
            .map(|(id, _)| id)
            .collect();
        if roots.is_empty() {
            return;
        }
        let reach = ws.graph.reachable(&roots);
        for (id, s) in ws.graph.iter(ws.files) {
            if s.entropy.is_empty() || !reach.contains(id) {
                continue;
            }
            let (fi, _) = ws.graph.node(id);
            let file = &ws.files[fi];
            let clock_impl_exempt =
                file.rel.starts_with("crates/obs/") && s.trait_name.as_deref() == Some("Clock");
            let chain = reach.chain(id);
            let chain_str = crate::graph::render_chain(&ws.graph, ws.files, &chain);
            for site in &s.entropy {
                if site.is_clock && clock_impl_exempt {
                    continue;
                }
                out.push(Diagnostic {
                    rule: self.id(),
                    code: self.code(),
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!("{} taints estimator outputs via {chain_str}", site.what),
                    help: "thread an explicit seed (or injected Clock) down this call \
                           chain; ambient entropy makes estimates unrepeatable"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Context, CrateInfo};
    use crate::source::{FileKind, SourceFile};

    fn lint(files: Vec<(&str, &str)>) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = files
            .into_iter()
            .map(|(rel, src)| {
                SourceFile::parse(rel.to_owned(), src.to_owned(), FileKind::classify(rel))
            })
            .collect();
        let ctx = Context {
            crates: vec![
                CrateInfo {
                    rel_root: "crates/core".into(),
                    name: "leakage-core".into(),
                    has_parallel_feature: true,
                },
                CrateInfo {
                    rel_root: "crates/util".into(),
                    name: "leakage-util".into(),
                    has_parallel_feature: false,
                },
            ],
        };
        let ws = Workspace {
            files: &files,
            ctx: &ctx,
            graph: crate::graph::CallGraph::build(&files, &ctx.crates),
        };
        let mut out = Vec::new();
        EntropyTaint.check_workspace(&ws, &mut out);
        out
    }

    #[test]
    fn laundered_entropy_flagged_with_chain() {
        let d = lint(vec![
            (
                "crates/core/src/estimator/mod.rs",
                "pub fn estimate_all() -> f64 { leakage_util::jitter() }\n",
            ),
            (
                "crates/util/src/lib.rs",
                "pub fn jitter() -> f64 { hidden() }\n\
                 fn hidden() -> f64 { let r = rand::thread_rng(); 0.0 }\n",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("estimate_all -> jitter -> hidden"),
            "{d:?}"
        );
    }

    #[test]
    fn unreachable_entropy_not_l8s_business() {
        let d = lint(vec![
            (
                "crates/core/src/estimator/mod.rs",
                "pub fn estimate_all() -> f64 { 0.0 }\n",
            ),
            (
                "crates/util/src/lib.rs",
                "pub fn jitter() -> f64 { let r = rand::thread_rng(); 0.0 }\n",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn obs_clock_impl_bridge_exempt() {
        let d = lint(vec![
            (
                "crates/core/src/estimator/mod.rs",
                "pub fn estimate_all(c: &WallClock) -> u64 { c.now_nanos() }\n",
            ),
            (
                "crates/obs/src/clock.rs",
                "impl Clock for WallClock {\n\
                   fn now_nanos(&self) -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n\
                 }\n",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn rng_inside_clock_impl_not_excused() {
        let d = lint(vec![
            (
                "crates/core/src/estimator/mod.rs",
                "pub fn estimate_all(c: &Jittery) -> u64 { c.now_nanos() }\n",
            ),
            (
                "crates/obs/src/clock.rs",
                "impl Clock for Jittery {\n\
                   fn now_nanos(&self) -> u64 { rand::thread_rng().gen() }\n\
                 }\n",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
    }
}
