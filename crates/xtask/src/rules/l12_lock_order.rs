//! L12 `lock-order`: a cycle in the workspace lock-acquisition graph
//! is a deadlock waiting for the right interleaving. The rule builds
//! the graph from guard regions ([`crate::sync::SyncFacts`]): an edge
//! `A -> B` means some fn acquires `B` — directly, via a
//! guard-returning wrapper, or anywhere down its call chain — while a
//! guard for `A` is live. Any edge whose target can reach back to its
//! source closes a cycle and is flagged with the full identity path.
//!
//! Escape hatch: a justified `allow(lock-order)` on the nested
//! acquisition site, for cycles proven unreachable (e.g. the two
//! orders are taken by the same thread, or a tryprotocol breaks the
//! hold-and-wait).

use crate::engine::{Diagnostic, Rule, Severity, Workspace};
use crate::sync::SyncFacts;
use std::collections::BTreeSet;

/// The L12 rule.
pub struct LockOrder;

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn code(&self) -> &'static str {
        "L12"
    }

    fn description(&self) -> &'static str {
        "the workspace lock-acquisition graph must stay acyclic (no AB/BA deadlocks)"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
        let sync = SyncFacts::build(ws.files, &ws.graph);
        let mut seen: BTreeSet<(&str, &str)> = BTreeSet::new();
        for e in &sync.lock_edges {
            if !seen.insert((e.from.as_str(), e.to.as_str())) {
                continue;
            }
            let Some(back) = sync.lock_path(&e.to, &e.from) else {
                continue;
            };
            let mut cycle: Vec<&str> = vec![e.from.as_str()];
            cycle.extend(back.iter().map(String::as_str));
            let (fi, _) = ws.graph.node(e.node);
            let file = &ws.files[fi];
            out.push(Diagnostic {
                rule: self.id(),
                code: self.code(),
                severity: Severity::Error,
                file: file.rel.clone(),
                line: e.line,
                col: e.col,
                message: format!(
                    "acquiring `{}` while `{}` is held closes a lock-order cycle: {}",
                    e.to,
                    e.from,
                    cycle.join(" -> ")
                ),
                help: "pick one global acquisition order (document it in DESIGN.md §15) and \
                       release the first guard before taking the second, or justify with \
                       `// chipleak-lint: allow(lock-order): <why the cycle cannot interleave>`"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Context, CrateInfo};
    use crate::source::{FileKind, SourceFile};

    fn lint(files: Vec<(&str, &str)>) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = files
            .into_iter()
            .map(|(rel, src)| {
                SourceFile::parse(rel.to_owned(), src.to_owned(), FileKind::classify(rel))
            })
            .collect();
        let ctx = Context {
            crates: vec![CrateInfo {
                rel_root: "crates/core".into(),
                name: "leakage-core".into(),
                has_parallel_feature: true,
            }],
        };
        let ws = Workspace {
            files: &files,
            ctx: &ctx,
            graph: crate::graph::CallGraph::build(&files, &ctx.crates),
        };
        let mut out = Vec::new();
        LockOrder.check_workspace(&ws, &mut out);
        out
    }

    const LIB: &str = "crates/core/src/lib.rs";

    #[test]
    fn ab_ba_cycle_flagged_in_both_directions() {
        let d = lint(vec![(
            LIB,
            "pub struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn ab(&self) {\n\
                 let _ga = self.a.lock().unwrap();\n\
                 let _gb = self.b.lock().unwrap();\n\
               }\n\
               pub fn ba(&self) {\n\
                 let _gb = self.b.lock().unwrap();\n\
                 let _ga = self.a.lock().unwrap();\n\
               }\n\
             }\n",
        )]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(
            d.iter().any(|x| x.message.contains("S::a -> S::b -> S::a")),
            "{d:?}"
        );
        assert!(
            d.iter().any(|x| x.message.contains("S::b -> S::a -> S::b")),
            "{d:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let d = lint(vec![(
            LIB,
            "pub struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn ab(&self) {\n\
                 let _ga = self.a.lock().unwrap();\n\
                 let _gb = self.b.lock().unwrap();\n\
               }\n\
               pub fn ab_again(&self) {\n\
                 let _ga = self.a.lock().unwrap();\n\
                 let _gb = self.b.lock().unwrap();\n\
               }\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn interprocedural_inversion_flagged() {
        let d = lint(vec![(
            LIB,
            "pub struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn ab(&self) {\n\
                 let _ga = self.a.lock().unwrap();\n\
                 self.take_b();\n\
               }\n\
               fn take_b(&self) { let _gb = self.b.lock().unwrap(); }\n\
               pub fn ba(&self) {\n\
                 let _gb = self.b.lock().unwrap();\n\
                 self.take_a();\n\
               }\n\
               fn take_a(&self) { let _ga = self.a.lock().unwrap(); }\n\
             }\n",
        )]);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn drop_before_second_acquisition_is_clean() {
        let d = lint(vec![(
            LIB,
            "pub struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn ab(&self) {\n\
                 let ga = self.a.lock().unwrap();\n\
                 drop(ga);\n\
                 let _gb = self.b.lock().unwrap();\n\
               }\n\
               pub fn ba(&self) {\n\
                 let gb = self.b.lock().unwrap();\n\
                 drop(gb);\n\
                 let _ga = self.a.lock().unwrap();\n\
               }\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
