//! L3 `compensated-summation`: the estimator hot paths and shared
//! statistics helpers fold 10⁶–10⁸ floating-point terms spanning several
//! orders of magnitude (the O(n²) pair sum alone is ~5·10⁷ terms at 10k
//! gates). A naive `.sum::<f64>()` or bare `acc += term` loop loses the
//! low-order bits the paper's Table 1 comparisons depend on; those sums
//! must route through `KahanSum`/`kahan_sum` (Neumaier-compensated).

use crate::engine::{Context, Diagnostic, Rule, Severity};
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Files the rule applies to: the estimator stack and the shared stats
/// helpers every estimator leans on.
fn in_scope(rel: &str) -> bool {
    rel == "crates/numeric/src/stats.rs" || rel.starts_with("crates/core/src/estimator/")
}

/// The L3 rule.
pub struct CompensatedSummation;

impl Rule for CompensatedSummation {
    fn id(&self) -> &'static str {
        "compensated-summation"
    }

    fn code(&self) -> &'static str {
        "L3"
    }

    fn description(&self) -> &'static str {
        "estimator/stats accumulation must use the Kahan helpers, not naive \
         `.sum()` chains or bare `+=` loops"
    }

    fn check_file(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        if file.kind != crate::source::FileKind::Library || !in_scope(&file.rel) {
            return;
        }
        let toks = &file.tokens;
        // Iterator sums: `.sum()` / `.sum::<f64>()` whose receiver is a
        // call chain (`)` before the dot). A plain identifier receiver is
        // an accessor such as `KahanSum::sum()` and stays exempt.
        for i in 1..toks.len() {
            if let Some(m) = super::method_call_at(toks, i) {
                let t = &toks[m];
                if t.is_ident("sum")
                    && toks[i - 1].is_punct(')')
                    && file.lintable_library_line(t.line)
                    && !in_kahan_fn(file, i)
                {
                    out.push(self.diag(
                        file,
                        t.line,
                        t.col,
                        "iterator `.sum()` folds terms in naive f64 arithmetic",
                    ));
                }
            }
        }
        // Bare accumulator loops: `let mut acc = 0.0; for .. { acc += t; }`.
        let float_locals = float_zero_locals(toks);
        let loops = super::loop_body_spans(toks);
        for i in 1..toks.len().saturating_sub(2) {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !float_locals.contains(&t.text)
                || !toks[i + 1].is_punct('+')
                || !toks[i + 2].is_punct('=')
                || toks[i - 1].is_punct('.')
            // field update, e.g. Welford's `self.m2`
            {
                continue;
            }
            let in_loop = loops.iter().any(|&(a, b)| a < i && i < b);
            if in_loop && file.lintable_library_line(t.line) && !in_kahan_fn(file, i) {
                out.push(self.diag(
                    file,
                    t.line,
                    t.col,
                    &format!(
                        "bare `{} +=` accumulation loop bypasses the Kahan helpers",
                        t.text
                    ),
                ));
            }
        }
    }
}

impl CompensatedSummation {
    fn diag(&self, file: &SourceFile, line: u32, col: u32, message: &str) -> Diagnostic {
        Diagnostic {
            rule: self.id(),
            code: self.code(),
            severity: Severity::Error,
            file: file.rel.clone(),
            line,
            col,
            message: message.to_owned(),
            help: "accumulate through leakage_numeric::stats::{KahanSum, kahan_sum}; \
                   suppress only for provably short or integer sums"
                .into(),
        }
    }
}

/// `true` when token `i` falls inside a function implementing the
/// compensation itself (named `kahan*`/`neumaier*`).
fn in_kahan_fn(file: &SourceFile, i: usize) -> bool {
    file.fns.iter().any(|f| {
        (f.name.contains("kahan") || f.name.contains("neumaier"))
            && f.body.is_some_and(|(a, b)| a <= i && i < b)
    })
}

/// Names of locals initialized as floating-point zeros (`= 0.0`,
/// `= 0f64`, `: f64 = 0.0`, …).
fn float_zero_locals(toks: &[crate::lexer::Tok]) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j) else { continue };
        if name.kind != TokKind::Ident {
            continue;
        }
        // Optional `: f64` annotation.
        let mut k = j + 1;
        let mut annotated_float = false;
        if toks.get(k).is_some_and(|t| t.is_punct(':')) {
            annotated_float = toks
                .get(k + 1)
                .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"));
            k += 2;
        }
        if !toks.get(k).is_some_and(|t| t.is_punct('=')) {
            continue;
        }
        let Some(init) = toks.get(k + 1) else {
            continue;
        };
        let float_literal = init.kind == TokKind::Literal
            && (init.text.contains('.')
                || init.text.ends_with("f64")
                || init.text.ends_with("f32"));
        if (float_literal || (annotated_float && init.kind == TokKind::Literal))
            && toks.get(k + 2).is_some_and(|t| t.is_punct(';'))
        {
            names.insert(name.text.clone());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(
            "crates/core/src/estimator/demo.rs".into(),
            src.into(),
            FileKind::Library,
        );
        let mut out = Vec::new();
        CompensatedSummation.check_file(&f, &Context::default(), &mut out);
        out
    }

    #[test]
    fn flags_iterator_sum_chains() {
        let d = check("fn mean(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() / xs.len() as f64 }\n");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn kahan_accessor_is_fine() {
        let d = check("fn total(acc: KahanSum) -> f64 { acc.sum() }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn flags_bare_accumulator_loop() {
        let src = "fn f(xs: &[f64]) -> f64 {\n  let mut acc = 0.0;\n  for x in xs { acc += x; }\n  acc\n}\n";
        let d = check(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("acc"));
    }

    #[test]
    fn integer_counters_are_fine() {
        let src = "fn f(xs: &[u64]) -> u64 {\n  let mut n = 0;\n  let mut m = 0usize;\n  for x in xs { n += x; m += 1; }\n  n + m as u64\n}\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn out_of_scope_files_exempt() {
        let f = SourceFile::parse(
            "crates/process/src/field.rs".into(),
            "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n".into(),
            FileKind::Library,
        );
        let mut out = Vec::new();
        CompensatedSummation.check_file(&f, &Context::default(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn kahan_impl_fn_exempt() {
        let src = "pub fn kahan_sum(xs: &[f64]) -> f64 {\n  let mut c = 0.0;\n  for x in xs { c += x; }\n  c\n}\n";
        assert!(check(src).is_empty());
    }
}
