//! L9 `panic-freedom`: interprocedural upgrade of L5. The resilient
//! estimation ladder (`crates/core/src/estimator/resilient.rs`) and the
//! service-bound public surface (the root package's `src/lib.rs`) promise
//! typed errors, never panics — a panic three calls below
//! `estimate_resilient` unwinds through worker threads and kills the whole
//! estimate. This rule walks the call graph from those entry points and
//! flags every reachable `unwrap`/`expect`/panic-macro and every
//! unprovable slice-index expression, with the call chain as evidence.
//!
//! Escape hatches (documented in DESIGN.md §13):
//! - a site covered by a justified `allow(no-unwrap-in-library)` (L5) or
//!   `allow(panic-freedom)` suppression is treated as a locally proven
//!   invariant;
//! - an index expression is exempt when every identifier in the brackets
//!   is a bounds-tied loop binder (`for i in 0..xs.len()` / `.enumerate()`),
//!   or the enclosing fn states its bounds discipline with an
//!   `assert!`-family invariant check;
//! - a `catch_unwind(...)` argument list is a supervisor boundary: panic
//!   sites lexically inside it, and everything reachable only through
//!   calls made inside it, are caught locally and cannot unwind to the
//!   root (the service's worker supervisor, `try_map_chunks`). The escape
//!   is scoped to the extent, not the fn — sites outside the parentheses
//!   in the same fn are still flagged — and is withdrawn entirely when
//!   the same fn calls `resume_unwind`, which turns the catch into a
//!   passthrough that re-raises the payload.

use crate::engine::{Diagnostic, Rule, Severity, Workspace};
use crate::source::SourceFile;
use crate::summary::FnSummary;

/// The L9 rule.
pub struct PanicFreedom;

/// `true` when the fn is a panic-freedom root: the resilient ladder's
/// public surface, the root package's library API, or any public entry
/// of the `chipleakd` service crate (a panic in a worker thread there
/// kills a long-running server, not a one-shot CLI run).
fn is_root(rel: &str, s: &FnSummary) -> bool {
    s.is_pub
        && !s.in_test
        && (rel == "crates/core/src/estimator/resilient.rs"
            || rel == "src/lib.rs"
            || rel.starts_with("crates/service/src/"))
}

/// A justified L5/L9 suppression on the site line (or the line above)
/// counts as a locally proven invariant.
fn site_proven(file: &SourceFile, line: u32) -> bool {
    file.suppressions.iter().any(|sup| {
        !sup.reason.is_empty()
            && (sup.covers("no-unwrap-in-library", "L5") || sup.covers("panic-freedom", "L9"))
            && (sup.file_scope || sup.line == line || sup.line + 1 == line)
    })
}

impl Rule for PanicFreedom {
    fn id(&self) -> &'static str {
        "panic-freedom"
    }

    fn code(&self) -> &'static str {
        "L9"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic-macro or unprovable slice index may be reachable \
         from estimator::resilient or the service-bound public API"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
        let roots: Vec<usize> = ws
            .graph
            .iter(ws.files)
            .filter(|(id, s)| {
                let (fi, _) = ws.graph.node(*id);
                is_root(&ws.files[fi].rel, s)
            })
            .map(|(id, _)| id)
            .collect();
        if roots.is_empty() {
            return;
        }
        // Calls made inside a `catch_unwind(...)` argument list cannot
        // unwind to the root: their panics stop at the supervisor. Those
        // edges are dropped from the walk — unless the catching fn also
        // calls `resume_unwind`, which re-raises the payload and makes
        // the catch a passthrough.
        let reach = ws.graph.reachable_filtered(&roots, |n, ci| {
            let s = ws.graph.summary(ws.files, n);
            !s.has_resume_unwind && in_catch_span(s, s.calls[ci].tok)
        });
        for (id, s) in ws.graph.iter(ws.files) {
            if !reach.contains(id) || s.in_test {
                continue;
            }
            let (fi, _) = ws.graph.node(id);
            let file = &ws.files[fi];
            if file.kind != crate::source::FileKind::Library {
                continue;
            }
            let supervised = |tok: usize| !s.has_resume_unwind && in_catch_span(s, tok);
            let chain = reach.chain(id);
            let chain_str = crate::graph::render_chain(&ws.graph, ws.files, &chain);
            for p in &s.panics {
                if site_proven(file, p.line) || supervised(p.tok) {
                    continue;
                }
                out.push(self.diag(
                    file,
                    p.line,
                    p.col,
                    format!("`{}` is reachable from {chain_str}", p.what),
                ));
            }
            for ix in &s.indexes {
                if site_proven(file, ix.line) || index_provable(s, ix) || supervised(ix.tok) {
                    continue;
                }
                let target = if ix.recv.is_empty() {
                    "slice".to_owned()
                } else {
                    format!("`{}`", ix.recv)
                };
                out.push(self.diag(
                    file,
                    ix.line,
                    ix.col,
                    format!("panicking index into {target} is reachable from {chain_str}"),
                ));
            }
        }
    }
}

/// `true` when the token sits inside one of the fn's `catch_unwind(...)`
/// argument-list extents.
fn in_catch_span(s: &FnSummary, tok: usize) -> bool {
    s.catch_spans.iter().any(|&(a, b)| a < tok && tok < b)
}

/// `true` when the index expression cannot plausibly panic under the
/// rule's bounds heuristics.
fn index_provable(s: &FnSummary, ix: &crate::summary::IndexSite) -> bool {
    // An `assert!`-family invariant in the same fn is the documented
    // bounds-discipline marker (asserting fns state their preconditions).
    if s.has_assert {
        return true;
    }
    // All idents in the brackets are bounds-tied loop binders. Literal-only
    // indexes (`xs[0]`) have no idents and do NOT pass this test — a fixed
    // index on an unchecked slice is exactly the panic class L9 hunts.
    !ix.idents.is_empty()
        && ix
            .idents
            .iter()
            .all(|name| s.bounded_binders.contains(name))
}

impl PanicFreedom {
    fn diag(&self, file: &SourceFile, line: u32, col: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule: self.id(),
            code: self.code(),
            severity: Severity::Error,
            file: file.rel.clone(),
            line,
            col,
            message,
            help: "return a typed Error (`.get(i).ok_or(...)?`), assert the bound as a \
                   stated invariant, or justify with `// chipleak-lint: allow(panic-freedom): <why>`"
                .into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Context, CrateInfo};
    use crate::source::FileKind;

    fn lint(files: Vec<(&str, &str)>) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = files
            .into_iter()
            .map(|(rel, src)| {
                SourceFile::parse(rel.to_owned(), src.to_owned(), FileKind::classify(rel))
            })
            .collect();
        let ctx = Context {
            crates: vec![CrateInfo {
                rel_root: "crates/core".into(),
                name: "leakage-core".into(),
                has_parallel_feature: true,
            }],
        };
        let ws = Workspace {
            files: &files,
            ctx: &ctx,
            graph: crate::graph::CallGraph::build(&files, &ctx.crates),
        };
        let mut out = Vec::new();
        PanicFreedom.check_workspace(&ws, &mut out);
        out
    }

    const RESILIENT: &str = "crates/core/src/estimator/resilient.rs";

    #[test]
    fn deep_unwrap_flagged_with_chain() {
        let d = lint(vec![(
            RESILIENT,
            "pub fn estimate_resilient() -> f64 { stage() }\n\
             fn stage() -> f64 { kernel() }\n\
             fn kernel() -> f64 { Some(1.0).unwrap() }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message
                .contains("estimate_resilient -> stage -> kernel"),
            "{d:?}"
        );
    }

    #[test]
    fn unreachable_unwrap_not_flagged() {
        let d = lint(vec![(
            RESILIENT,
            "pub fn estimate_resilient() -> f64 { 0.0 }\n\
             fn orphan() -> f64 { Some(1.0).unwrap() }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn bounded_binder_index_provable() {
        let d = lint(vec![(
            RESILIENT,
            "pub fn estimate_resilient(xs: &[f64]) -> f64 {\n\
               let mut m = 1.0f64;\n\
               for i in 0..xs.len() { m = m.max(xs[i]); }\n\
               m\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unbounded_index_flagged() {
        let d = lint(vec![(
            RESILIENT,
            "pub fn estimate_resilient(xs: &[f64], k: usize) -> f64 { xs[k] }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`xs`"), "{d:?}");
    }

    #[test]
    fn assert_documents_bounds_discipline() {
        let d = lint(vec![(
            RESILIENT,
            "pub fn estimate_resilient(xs: &[f64], k: usize) -> f64 {\n\
               assert!(k < xs.len(), \"grid index in range\");\n\
               xs[k]\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn justified_l5_suppression_counts_as_proof() {
        let d = lint(vec![(
            RESILIENT,
            "pub fn estimate_resilient() -> f64 {\n\
               // chipleak-lint: allow(no-unwrap-in-library): nonempty by construction\n\
               Some(1.0).unwrap()\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn service_crate_public_fns_are_roots() {
        let d = lint(vec![(
            "crates/service/src/exec.rs",
            "pub fn execute() -> f64 { helper() }\n\
             fn helper() -> f64 { Some(1.0).unwrap() }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("execute -> helper"), "{d:?}");
    }

    #[test]
    fn catch_unwind_supervises_the_calls_inside_its_parens() {
        let d = lint(vec![(
            "crates/service/src/server.rs",
            "pub fn supervise() {\n\
               let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body()));\n\
             }\n\
             fn body() { Some(1.0).unwrap(); }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn catch_unwind_supervises_lexically_inline_panics() {
        let d = lint(vec![(
            "crates/service/src/server.rs",
            "pub fn supervise() {\n\
               let _ = std::panic::catch_unwind(|| Some(1.0).unwrap());\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn the_escape_is_scoped_to_the_parens_not_the_fn() {
        let d = lint(vec![(
            "crates/service/src/server.rs",
            "pub fn supervise() -> f64 {\n\
               let _ = std::panic::catch_unwind(|| body());\n\
               Some(1.0).unwrap()\n\
             }\n\
             fn body() {}\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`unwrap`"), "{d:?}");
    }

    #[test]
    fn resume_unwind_withdraws_the_supervisor_escape() {
        let d = lint(vec![(
            "crates/service/src/server.rs",
            "pub fn passthrough() {\n\
               if let Err(p) = std::panic::catch_unwind(|| body()) {\n\
                 std::panic::resume_unwind(p);\n\
               }\n\
             }\n\
             fn body() { Some(1.0).unwrap(); }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("passthrough -> body"), "{d:?}");
    }

    #[test]
    fn panic_macro_reachable_from_root_package_api() {
        let d = lint(vec![
            (
                "src/lib.rs",
                "pub fn serve_estimate() -> f64 { leakage_core::estimator_entry() }\n",
            ),
            (
                "crates/core/src/lib.rs",
                "pub fn estimator_entry() -> f64 { panic!(\"boom\") }\n",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("panic!"), "{d:?}");
    }
}
