//! L10 `merge-order`: interprocedural upgrade of L3. L3 polices naive
//! accumulation inside the estimator stack's own files; L10 follows the
//! call graph from every `parallel`-gated entry point (a fn taking a
//! `Parallelism` or living inside a `#[cfg(feature = "parallel")]`
//! extent) and flags bare `f64` accumulation loops in *any* reachable
//! library fn. A chunk whose partial sums are folded with a bare `+=`
//! makes the merged result depend on chunk boundaries and thread count —
//! exactly the nondeterminism the fixed-order Kahan merges exist to kill.
//!
//! Exemptions: the compensation implementations themselves
//! (`kahan*`/`neumaier*` fns), and sites already inside L3's scope (the
//! estimator stack + `stats.rs`), which L3 reports with its sharper
//! message — one site, one rule.

use crate::engine::{Diagnostic, Rule, Severity, Workspace};

/// The L10 rule.
pub struct MergeOrder;

/// L3's file scope — those sites are L3's business, not L10's.
fn in_l3_scope(rel: &str) -> bool {
    rel == "crates/numeric/src/stats.rs" || rel.starts_with("crates/core/src/estimator/")
}

impl Rule for MergeOrder {
    fn id(&self) -> &'static str {
        "merge-order"
    }

    fn code(&self) -> &'static str {
        "L10"
    }

    fn description(&self) -> &'static str {
        "f64 accumulation loops reachable from parallel-gated callers must route \
         through KahanSum or a fixed-order merge"
    }

    fn check_workspace(&self, ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
        let roots: Vec<usize> = ws
            .graph
            .iter(ws.files)
            .filter(|(_, s)| s.parallel_gated && !s.in_test)
            .map(|(id, _)| id)
            .collect();
        if roots.is_empty() {
            return;
        }
        let reach = ws.graph.reachable(&roots);
        for (id, s) in ws.graph.iter(ws.files) {
            if s.accums.is_empty() || !reach.contains(id) || s.in_test {
                continue;
            }
            if s.name.contains("kahan") || s.name.contains("neumaier") {
                continue;
            }
            let (fi, _) = ws.graph.node(id);
            let file = &ws.files[fi];
            if file.kind != crate::source::FileKind::Library || in_l3_scope(&file.rel) {
                continue;
            }
            let chain = reach.chain(id);
            let chain_str = crate::graph::render_chain(&ws.graph, ws.files, &chain);
            for a in &s.accums {
                out.push(Diagnostic {
                    rule: self.id(),
                    code: self.code(),
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: a.line,
                    col: a.col,
                    message: format!(
                        "bare `{} +=` accumulation is reachable from a parallel-gated \
                         caller via {chain_str}",
                        a.var
                    ),
                    help: "route the fold through leakage_numeric::stats::KahanSum (or a \
                           fixed-order merge); suppress only for provably short sums"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Context, CrateInfo};
    use crate::source::{FileKind, SourceFile};

    fn lint(files: Vec<(&str, &str)>) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = files
            .into_iter()
            .map(|(rel, src)| {
                SourceFile::parse(rel.to_owned(), src.to_owned(), FileKind::classify(rel))
            })
            .collect();
        let ctx = Context {
            crates: vec![CrateInfo {
                rel_root: "crates/numeric".into(),
                name: "leakage-numeric".into(),
                has_parallel_feature: true,
            }],
        };
        let ws = Workspace {
            files: &files,
            ctx: &ctx,
            graph: crate::graph::CallGraph::build(&files, &ctx.crates),
        };
        let mut out = Vec::new();
        MergeOrder.check_workspace(&ws, &mut out);
        out
    }

    const ACCUM_HELPER: &str = "pub fn fold_naive(xs: &[f64]) -> f64 {\n\
                                  let mut acc = 0.0;\n\
                                  for x in xs { acc += x; }\n\
                                  acc\n\
                                }\n";

    #[test]
    fn accumulation_behind_parallel_entry_flagged() {
        let src = format!(
            "pub fn run_with(xs: &[f64], par: Parallelism) -> f64 {{ fold_naive(xs) }}\n{ACCUM_HELPER}"
        );
        let d = lint(vec![("crates/numeric/src/parallel.rs", &src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("run_with -> fold_naive"), "{d:?}");
    }

    #[test]
    fn accumulation_outside_parallel_reach_exempt() {
        let src =
            format!("pub fn serial_only(xs: &[f64]) -> f64 {{ fold_naive(xs) }}\n{ACCUM_HELPER}");
        let d = lint(vec![("crates/numeric/src/serial.rs", &src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn kahan_impl_exempt() {
        let src = "pub fn run_with(xs: &[f64], par: Parallelism) -> f64 { kahan_sum(xs) }\n\
                   pub fn kahan_sum(xs: &[f64]) -> f64 {\n\
                     let mut c = 0.0;\n\
                     for x in xs { c += x; }\n\
                     c\n\
                   }\n";
        let d = lint(vec![("crates/numeric/src/parallel.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn l3_scope_left_to_l3() {
        let src = format!(
            "pub fn run_with(xs: &[f64], par: Parallelism) -> f64 {{ fold_naive(xs) }}\n{ACCUM_HELPER}"
        );
        let d = lint(vec![("crates/core/src/estimator/mod.rs", &src)]);
        assert!(d.is_empty(), "{d:?}");
    }
}
