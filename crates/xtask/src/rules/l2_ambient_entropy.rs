//! L2 `no-ambient-entropy`: results must be a pure function of explicit
//! seeds and inputs. `thread_rng`, `from_entropy`, and wall-clock reads in
//! library crates make runs unrepeatable; timing belongs in `bench` and
//! CLI code, and randomness must flow from counter-seeded streams
//! (`ChipSampler::run_seeded` and friends).

use crate::engine::{Context, Diagnostic, Rule, Severity};
use crate::source::SourceFile;

/// The L2 rule.
pub struct AmbientEntropy;

impl Rule for AmbientEntropy {
    fn id(&self) -> &'static str {
        "no-ambient-entropy"
    }

    fn code(&self) -> &'static str {
        "L2"
    }

    fn description(&self) -> &'static str {
        "library crates must not read ambient entropy or the wall clock \
         (thread_rng, from_entropy, SystemTime::now, Instant::now)"
    }

    fn check_file(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        if file.kind != crate::source::FileKind::Library {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if !file.lintable_library_line(t.line) {
                continue;
            }
            let found: Option<&str> = if t.is_ident("thread_rng") {
                Some("rand::thread_rng()")
            } else if t.is_ident("from_entropy") {
                Some("SeedableRng::from_entropy()")
            } else if super::path_pair(toks, i, "SystemTime", "now")
                || super::path_pair(toks, i, "Instant", "now")
            {
                Some("wall-clock read")
            } else if super::path_pair(toks, i, "rand", "random") {
                Some("rand::random()")
            } else {
                None
            };
            if let Some(what) = found {
                out.push(Diagnostic {
                    rule: self.id(),
                    code: self.code(),
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!("{what} injects ambient entropy into a library crate"),
                    help: "take an explicit `seed: u64` (counter-seeded per work item) or a \
                           caller-supplied `Rng`; timing loops belong in crates/bench or the CLI"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn check(src: &str, kind: FileKind) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/d/src/x.rs".into(), src.into(), kind);
        let mut out = Vec::new();
        AmbientEntropy.check_file(&f, &Context::default(), &mut out);
        out
    }

    #[test]
    fn flags_thread_rng_and_clock() {
        let src = "fn f() { let mut r = rand::thread_rng(); let t = Instant::now(); }\n";
        let d = check(src, FileKind::Library);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn bench_and_bin_exempt() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(check(src, FileKind::Bench).is_empty());
        assert!(check(src, FileKind::Bin).is_empty());
    }

    #[test]
    fn seeded_rng_is_fine() {
        let src = "fn f(seed: u64) { let mut r = SmallRng::seed_from_u64(seed); }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }

    #[test]
    fn instant_mentioned_in_comment_or_string_is_fine() {
        let src = "// Instant::now is banned here\nfn f() { let s = \"Instant::now\"; }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }
}
