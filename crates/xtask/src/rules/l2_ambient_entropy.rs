//! L2 `no-ambient-entropy`: results must be a pure function of explicit
//! seeds and inputs. `thread_rng`, `from_entropy`, and wall-clock reads in
//! library crates make runs unrepeatable; timing belongs in `bench` and
//! CLI code, and randomness must flow from counter-seeded streams
//! (`ChipSampler::run_seeded` and friends).
//!
//! One carve-out: the observability crate's injected-clock pattern. Inside
//! `crates/obs/`, a wall-clock read that sits within an
//! `impl ... Clock for ...` block is the sanctioned bridge from the banned
//! ambient clock to the injectable `Clock` trait every other crate must
//! use. Raw reads elsewhere in `crates/obs/` — and `Clock` impls in any
//! other library crate — are still flagged.

use crate::engine::{Context, Diagnostic, Rule, Severity};
use crate::source::SourceFile;

/// Token index ranges `(open_brace, close_brace)` of `impl ... Clock for
/// ...` blocks — only honoured for files under `crates/obs/`.
fn clock_impl_ranges(file: &SourceFile) -> Vec<(usize, usize)> {
    if !file.rel.starts_with("crates/obs/") {
        return Vec::new();
    }
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            // Scan the impl header (up to `{` or `;`) for the trait path
            // containing `Clock` followed by `for`.
            let mut saw_clock = false;
            let mut clock_trait = false;
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                if toks[j].is_ident("Clock") {
                    saw_clock = true;
                } else if toks[j].is_ident("for") && saw_clock {
                    clock_trait = true;
                }
                j += 1;
            }
            if clock_trait && j < toks.len() && toks[j].is_punct('{') {
                let open = j;
                let mut depth = 0usize;
                while j < toks.len() {
                    if toks[j].is_punct('{') {
                        depth += 1;
                    } else if toks[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                out.push((open, j));
                i = j;
            }
        }
        i += 1;
    }
    out
}

/// The L2 rule.
pub struct AmbientEntropy;

impl Rule for AmbientEntropy {
    fn id(&self) -> &'static str {
        "no-ambient-entropy"
    }

    fn code(&self) -> &'static str {
        "L2"
    }

    fn description(&self) -> &'static str {
        "library crates must not read ambient entropy or the wall clock \
         (thread_rng, from_entropy, SystemTime::now, Instant::now)"
    }

    fn check_file(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        if file.kind != crate::source::FileKind::Library {
            return;
        }
        let toks = &file.tokens;
        let clock_impls = clock_impl_ranges(file);
        for i in 0..toks.len() {
            let t = &toks[i];
            if !file.lintable_library_line(t.line) {
                continue;
            }
            let found: Option<&str> = if t.is_ident("thread_rng") {
                Some("rand::thread_rng()")
            } else if super::path_pair(toks, i, "SystemTime", "now")
                || super::path_pair(toks, i, "Instant", "now")
            {
                // The obs crate's `impl Clock for ...` blocks are the one
                // sanctioned bridge to the ambient clock.
                if clock_impls
                    .iter()
                    .any(|&(open, close)| i > open && i < close)
                {
                    None
                } else {
                    Some("wall-clock read")
                }
            } else if t.is_ident("from_entropy") {
                Some("SeedableRng::from_entropy()")
            } else if super::path_pair(toks, i, "rand", "random") {
                Some("rand::random()")
            } else {
                None
            };
            if let Some(what) = found {
                out.push(Diagnostic {
                    rule: self.id(),
                    code: self.code(),
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!("{what} injects ambient entropy into a library crate"),
                    help: "take an explicit `seed: u64` (counter-seeded per work item) or a \
                           caller-supplied `Rng`; timing loops belong in crates/bench or the CLI"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn check(src: &str, kind: FileKind) -> Vec<Diagnostic> {
        check_at("crates/d/src/x.rs", src, kind)
    }

    fn check_at(rel: &str, src: &str, kind: FileKind) -> Vec<Diagnostic> {
        let f = SourceFile::parse(rel.into(), src.into(), kind);
        let mut out = Vec::new();
        AmbientEntropy.check_file(&f, &Context::default(), &mut out);
        out
    }

    #[test]
    fn flags_thread_rng_and_clock() {
        let src = "fn f() { let mut r = rand::thread_rng(); let t = Instant::now(); }\n";
        let d = check(src, FileKind::Library);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn bench_and_bin_exempt() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(check(src, FileKind::Bench).is_empty());
        assert!(check(src, FileKind::Bin).is_empty());
    }

    #[test]
    fn seeded_rng_is_fine() {
        let src = "fn f(seed: u64) { let mut r = SmallRng::seed_from_u64(seed); }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }

    #[test]
    fn instant_mentioned_in_comment_or_string_is_fine() {
        let src = "// Instant::now is banned here\nfn f() { let s = \"Instant::now\"; }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }

    const CLOCK_IMPL: &str =
        "impl Clock for WallClock {\n    fn now_nanos(&self) -> u64 {\n        \
                              Instant::now().elapsed().as_nanos() as u64\n    }\n}\n";

    #[test]
    fn clock_impl_in_obs_is_exempt() {
        let d = check_at("crates/obs/src/clock.rs", CLOCK_IMPL, FileKind::Library);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn clock_impl_outside_obs_still_flagged() {
        let d = check_at("crates/core/src/clock.rs", CLOCK_IMPL, FileKind::Library);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn raw_read_in_obs_outside_clock_impl_still_flagged() {
        let src = "pub fn sneak() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n";
        let d = check_at("crates/obs/src/lib.rs", src, FileKind::Library);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn entropy_in_obs_clock_impl_not_excused() {
        // The carve-out covers wall-clock reads only; RNG entropy inside a
        // Clock impl is still an error.
        let src = "impl Clock for Jittery {\n    fn now_nanos(&self) -> u64 {\n        \
                   rand::thread_rng().gen()\n    }\n}\n";
        let d = check_at("crates/obs/src/clock.rs", src, FileKind::Library);
        assert_eq!(d.len(), 1, "{d:?}");
    }
}
