//! The chipleak-lint rule set (L1–L7) and shared token-pattern helpers.
//!
//! | Code | Id | Invariant |
//! |------|----|-----------|
//! | L1 | `no-nondeterministic-iteration` | no `HashMap`/`HashSet` iteration in library code |
//! | L2 | `no-ambient-entropy` | no `thread_rng`/wall-clock influence on results |
//! | L3 | `compensated-summation` | estimator/stats sums route through Kahan helpers |
//! | L4 | `parallel-api-parity` | `foo` routes through `foo_with`, threads stay gated |
//! | L5 | `no-unwrap-in-library` | no unjustified `.unwrap()`/`.expect()`/`panic!` |
//! | L6 | `no-silent-fallback` | `Err(...) => {}` arms must record the degradation |
//! | L7 | `tiled-kernel-parity` | `*_tiled*` kernels keep a serial twin, take `Parallelism` |
//! | L8 | `entropy-taint` | no entropy source reachable from estimator outputs |
//! | L9 | `panic-freedom` | no panic site reachable from `estimator::resilient` / the service API |
//! | L10 | `merge-order` | accumulation behind `parallel`-gated callers uses Kahan/fixed-order merges |
//! | L11 | `signature-parity` | `_with`/`_instrumented` ladders stay signature-compatible |
//! | L12 | `lock-order` | the workspace lock-acquisition graph stays acyclic |
//! | L13 | `blocking-under-lock` | no blocking I/O or kernel loop reachable while a guard is live |
//! | L14 | `lock-reentrancy` | no call chain re-acquires a lock the caller already holds |
//! | L15 | `condvar-wait-loop` | `Condvar::wait` sits in a predicate loop (`wait_while` exempt) |
//!
//! L1–L7 and L15 inspect one file at a time (`Rule::check_file`);
//! L8–L10 and L12–L14 walk the workspace call graph
//! (`Rule::check_workspace`) and L11 compares parsed signatures from the
//! symbol table. The concurrency rules (L12–L14) share the lock-region
//! and lock-graph facts in [`crate::sync`].

pub mod explain;
mod l10_merge_order;
mod l11_signature_parity;
mod l12_lock_order;
mod l13_blocking_under_lock;
mod l14_lock_reentrancy;
mod l15_condvar_wait_loop;
mod l1_nondeterministic_iteration;
mod l2_ambient_entropy;
mod l3_compensated_summation;
mod l4_parallel_api_parity;
mod l5_unwrap_in_library;
mod l6_silent_fallback;
mod l7_tiled_kernel_parity;
mod l8_entropy_taint;
mod l9_panic_freedom;

pub use l10_merge_order::MergeOrder;
pub use l11_signature_parity::SignatureParity;
pub use l12_lock_order::LockOrder;
pub use l13_blocking_under_lock::BlockingUnderLock;
pub use l14_lock_reentrancy::LockReentrancy;
pub use l15_condvar_wait_loop::CondvarWaitLoop;
pub use l1_nondeterministic_iteration::NondeterministicIteration;
pub use l2_ambient_entropy::AmbientEntropy;
pub use l3_compensated_summation::CompensatedSummation;
pub use l4_parallel_api_parity::ParallelApiParity;
pub use l5_unwrap_in_library::UnwrapInLibrary;
pub use l6_silent_fallback::SilentFallback;
pub use l7_tiled_kernel_parity::TiledKernelParity;
pub use l8_entropy_taint::EntropyTaint;
pub use l9_panic_freedom::PanicFreedom;

use crate::engine::Rule;
use crate::lexer::Tok;

/// Every rule, in code order. The registry is the single source of truth
/// for `cargo xtask lint` and `cargo xtask rules`.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NondeterministicIteration),
        Box::new(AmbientEntropy),
        Box::new(CompensatedSummation),
        Box::new(ParallelApiParity),
        Box::new(UnwrapInLibrary),
        Box::new(SilentFallback),
        Box::new(TiledKernelParity),
        Box::new(EntropyTaint),
        Box::new(PanicFreedom),
        Box::new(MergeOrder),
        Box::new(SignatureParity),
        Box::new(LockOrder),
        Box::new(BlockingUnderLock),
        Box::new(LockReentrancy),
        Box::new(CondvarWaitLoop),
    ]
}

/// If `tokens[i..]` starts a method call `.name(`, returns the method-name
/// token index.
pub(crate) fn method_call_at(tokens: &[Tok], i: usize) -> Option<usize> {
    if tokens.get(i)?.is_punct('.') {
        let name = tokens.get(i + 1)?;
        let next = tokens.get(i + 2)?;
        if name.kind == crate::lexer::TokKind::Ident
            && (next.is_punct('(') || (next.is_punct(':') && tokens.get(i + 3)?.is_punct(':')))
        {
            return Some(i + 1);
        }
    }
    None
}

/// `true` when `tokens[i..]` is the path segment `a::b`.
pub(crate) fn path_pair(tokens: &[Tok], i: usize, a: &str, b: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_ident(a))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident(b))
}

/// Index just past a balanced `{...}` starting at `open` (must be `{`).
pub(crate) fn skip_braces(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Token spans (exclusive end) of all `for`/`while`/`loop` bodies.
pub(crate) fn loop_body_spans(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("for") || t.is_ident("while") || t.is_ident("loop")) {
            continue;
        }
        // `impl Trait for Type` also contains `for`; requiring an `in`
        // before the body brace filters it out for `for`-loops, and
        // `while`/`loop` go straight to the brace.
        let mut j = i + 1;
        let mut paren = 0isize;
        let mut saw_in = false;
        while j < tokens.len() {
            let u = &tokens[j];
            if u.is_punct('(') {
                paren += 1;
            } else if u.is_punct(')') {
                paren -= 1;
            } else if u.is_ident("in") && paren == 0 {
                saw_in = true;
            } else if u.is_punct('{') && paren == 0 {
                if t.is_ident("for") && !saw_in {
                    break;
                }
                spans.push((j, skip_braces(tokens, j)));
                break;
            } else if u.is_punct(';') && paren == 0 {
                break;
            }
            j += 1;
        }
    }
    spans
}
