//! L4 `parallel-api-parity`: in crates with a `parallel` feature, (a) a
//! public `foo` whose sibling `foo_with(.., Parallelism)` exists must
//! route its default through that sibling — one code path, bit-identical
//! results for every thread budget — and (b) thread primitives must stay
//! behind `cfg(feature = "parallel")`, so `--no-default-features` builds
//! are genuinely thread-free.

use crate::engine::{Context, Diagnostic, Rule, Severity};
use crate::source::SourceFile;

/// The L4 rule.
pub struct ParallelApiParity;

impl Rule for ParallelApiParity {
    fn id(&self) -> &'static str {
        "parallel-api-parity"
    }

    fn code(&self) -> &'static str {
        "L4"
    }

    fn description(&self) -> &'static str {
        "public fns with a `_with(.., Parallelism)` sibling must route through it, \
         and thread primitives must stay behind cfg(feature = \"parallel\")"
    }

    fn check_file(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        if file.kind != crate::source::FileKind::Library || !ctx.in_parallel_crate(&file.rel) {
            return;
        }
        self.check_parity(file, out);
        self.check_gating(file, out);
    }
}

impl ParallelApiParity {
    fn check_parity(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = &file.tokens;
        // `Type::new` and `OtherType::new_with` are not siblings: pair
        // only fns sharing an enclosing impl/trait block (or both free).
        let scopes = impl_scopes(toks);
        let scope_of = |f: &crate::source::FnItem| {
            scopes
                .iter()
                .enumerate()
                .filter(|(_, &(a, b))| a < f.sig.0 && f.sig.0 < b)
                .min_by_key(|(_, &(a, b))| b - a)
                .map(|(i, _)| i)
        };
        // Public `_with` variants that accept a `Parallelism`, with scope.
        let with_variants: Vec<(&str, Option<usize>)> = file
            .fns
            .iter()
            .filter(|f| {
                f.is_pub
                    && f.name.ends_with("_with")
                    && toks[f.sig.0..f.sig.1]
                        .iter()
                        .any(|t| t.is_ident("Parallelism"))
            })
            .map(|f| (f.name.as_str(), scope_of(f)))
            .collect();
        if with_variants.is_empty() {
            return;
        }
        for f in &file.fns {
            if !f.is_pub || f.name.ends_with("_with") || file.in_test(f.line) {
                continue;
            }
            let sibling = format!("{}_with", f.name);
            let scope = scope_of(f);
            if !with_variants
                .iter()
                .any(|&(n, s)| n == sibling && s == scope)
            {
                continue;
            }
            // The base fn may take a Parallelism itself (no default to route).
            if toks[f.sig.0..f.sig.1]
                .iter()
                .any(|t| t.is_ident("Parallelism"))
            {
                continue;
            }
            let Some((a, b)) = f.body else { continue };
            if !toks[a..b].iter().any(|t| t.is_ident(&sibling)) {
                out.push(Diagnostic {
                    rule: self.id(),
                    code: self.code(),
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: f.line,
                    col: 1,
                    message: format!(
                        "`{}` has a `{sibling}(.., Parallelism)` sibling but does not route \
                         through it; the two defaults can drift apart",
                        f.name
                    ),
                    help: format!(
                        "implement `{}` as `{sibling}(.., Parallelism::auto())`",
                        f.name
                    ),
                });
            }
        }
    }
}

/// Token spans of `impl`/`trait` block bodies (including braces).
fn impl_scopes(toks: &[crate::lexer::Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("impl") || t.is_ident("trait")) {
            continue;
        }
        let mut j = i + 1;
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            j += 1;
        }
        if j < toks.len() && toks[j].is_punct('{') {
            spans.push((j, super::skip_braces(toks, j)));
        }
    }
    spans
}

impl ParallelApiParity {
    fn check_gating(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            let found: Option<&str> = if super::path_pair(toks, i, "thread", "scope")
                || super::path_pair(toks, i, "thread", "spawn")
            {
                Some("std::thread")
            } else if t.is_ident("available_parallelism") {
                Some("available_parallelism")
            } else if t.is_ident("rayon") {
                Some("rayon")
            } else {
                None
            };
            let Some(what) = found else { continue };
            if file.lintable_library_line(t.line) && !file.in_parallel_gate(t.line) {
                out.push(Diagnostic {
                    rule: self.id(),
                    code: self.code(),
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "{what} used outside a `cfg(feature = \"parallel\")` extent; \
                         serial builds must compile thread-free"
                    ),
                    help: "move the threaded branch into a `#[cfg(feature = \"parallel\")]` \
                           block with a serial `#[cfg(not(...))]` fallback"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CrateInfo;
    use crate::source::FileKind;

    fn ctx() -> Context {
        Context {
            crates: vec![CrateInfo {
                rel_root: "crates/d".into(),
                name: "leakage-d".into(),
                has_parallel_feature: true,
            }],
        }
    }

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/d/src/x.rs".into(), src.into(), FileKind::Library);
        let mut out = Vec::new();
        ParallelApiParity.check_file(&f, &ctx(), &mut out);
        out
    }

    #[test]
    fn flags_base_fn_not_routing_through_with() {
        let src = "pub fn stats_with(xs: &[f64], par: Parallelism) -> f64 { 0.0 }\n\
                   pub fn stats(xs: &[f64]) -> f64 { xs[0] }\n";
        let d = check(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("stats_with"));
    }

    #[test]
    fn routing_through_with_is_fine() {
        let src = "pub fn stats_with(xs: &[f64], par: Parallelism) -> f64 { 0.0 }\n\
                   pub fn stats(xs: &[f64]) -> f64 { stats_with(xs, Parallelism::auto()) }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn non_parallel_sibling_is_ignored() {
        let src = "pub fn cmos90_with_gate_leakage() -> u8 { 1 }\n\
                   pub fn cmos90() -> u8 { 0 }\n\
                   pub fn build_with(x: u8) -> u8 { x }\n\
                   pub fn build() -> u8 { 7 }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn new_and_new_with_in_different_impls_are_not_siblings() {
        let src = "pub struct Grid;\n\
                   impl Grid { pub fn new() -> Grid { Grid } }\n\
                   pub struct Sampler;\n\
                   impl Sampler { pub fn new_with(par: Parallelism) -> Sampler { drop(par); Sampler } }\n";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn same_impl_siblings_are_paired() {
        let src = "pub struct S;\n\
                   impl S {\n\
                     pub fn new_with(par: Parallelism) -> S { drop(par); S }\n\
                     pub fn new() -> S { S }\n\
                   }\n";
        let d = check(src);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn ungated_thread_scope_flagged_gated_ok() {
        let src = "fn a() { std::thread::scope(|s| {}); }\n\
                   #[cfg(feature = \"parallel\")]\nfn b() { std::thread::scope(|s| {}); }\n";
        let d = check(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn crates_without_parallel_feature_exempt() {
        let f = SourceFile::parse(
            "crates/other/src/x.rs".into(),
            "fn a() { std::thread::spawn(|| {}); }\n".into(),
            FileKind::Library,
        );
        let mut out = Vec::new();
        ParallelApiParity.check_file(&f, &ctx(), &mut out);
        assert!(out.is_empty());
    }
}
