//! L1 `no-nondeterministic-iteration`: `HashMap`/`HashSet` iteration in
//! library code is ordered by the hasher's random seed, so any path from
//! it to floating-point accumulation (the O(n²) pair sum, Eq. 17 lattice
//! sums, characterization tables) silently breaks bit-reproducibility.

use crate::engine::{Context, Diagnostic, Rule, Severity};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Methods whose results are ordered by the hash seed.
const ORDER_SENSITIVE: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// The L1 rule.
pub struct NondeterministicIteration;

impl Rule for NondeterministicIteration {
    fn id(&self) -> &'static str {
        "no-nondeterministic-iteration"
    }

    fn code(&self) -> &'static str {
        "L1"
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet iteration order is seeded per process; iterating one in \
         library code can leak nondeterminism into summation order"
    }

    fn check_file(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        if file.kind != crate::source::FileKind::Library {
            return;
        }
        let toks = &file.tokens;
        let names = hash_bound_names(file);
        if names.is_empty() {
            return;
        }
        for i in 0..toks.len() {
            // `name.iter()` / `self.name.keys()` / `name.drain(..)`.
            if let Some(m) = super::method_call_at(toks, i) {
                let method = &toks[m];
                if ORDER_SENSITIVE.contains(&method.text.as_str())
                    && i > 0
                    && toks[i - 1].kind == TokKind::Ident
                    && names.contains(&toks[i - 1].text)
                    && file.lintable_library_line(method.line)
                {
                    out.push(diag(
                        self,
                        file,
                        method.line,
                        method.col,
                        &toks[i - 1].text,
                        &method.text,
                    ));
                }
            }
            // `for pat in [&][mut] name {`.
            if toks[i].is_ident("in") && i + 1 < toks.len() {
                let mut j = i + 1;
                while j < toks.len() && (toks[j].is_punct('&') || toks[j].is_ident("mut")) {
                    j += 1;
                }
                let Some(name) = toks.get(j) else { continue };
                if name.kind == TokKind::Ident
                    && names.contains(&name.text)
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('{'))
                    && file.lintable_library_line(name.line)
                {
                    out.push(diag(
                        self, file, name.line, name.col, &name.text, "for-loop",
                    ));
                }
            }
        }
    }
}

fn diag(
    rule: &NondeterministicIteration,
    file: &SourceFile,
    line: u32,
    col: u32,
    name: &str,
    how: &str,
) -> Diagnostic {
    Diagnostic {
        rule: rule.id(),
        code: rule.code(),
        severity: Severity::Error,
        file: file.rel.clone(),
        line,
        col,
        message: format!(
            "iteration (`{how}`) over hash-ordered collection `{name}` is \
             nondeterministic across processes"
        ),
        help: "store the data in a BTreeMap/BTreeSet, or collect and sort keys before \
               iterating; suppress only if the order provably cannot reach any result"
            .into(),
    }
}

/// Identifiers bound (or annotated) as `HashMap`/`HashSet` in this file:
/// `name: HashMap<..>` (bindings, fields, params) and
/// `name = HashMap::new()`-style initializations.
fn hash_bound_names(file: &SourceFile) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk left over `&`, `mut`, and `::`-path prefixes
        // (`std::collections::HashMap`).
        let mut j = i;
        while j >= 2
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && j >= 3
            && toks[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        while j >= 1 && (toks[j - 1].is_punct('&') || toks[j - 1].is_ident("mut")) {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let before = &toks[j - 1];
        // `name : HashMap` — but not `:: HashMap` (path) and not inside a
        // generic argument (`Vec<HashMap<..>>` has `<` before).
        if before.is_punct(':') && j >= 2 && !toks[j - 2].is_punct(':') {
            if toks[j - 2].kind == TokKind::Ident {
                names.insert(toks[j - 2].text.clone());
            }
            continue;
        }
        // `name = HashMap::...`.
        if before.is_punct('=') && j >= 2 && toks[j - 2].kind == TokKind::Ident {
            names.insert(toks[j - 2].text.clone());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Context;
    use crate::source::FileKind;

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/d/src/x.rs".into(), src.into(), FileKind::Library);
        let mut out = Vec::new();
        NondeterministicIteration.check_file(&f, &Context::default(), &mut out);
        out
    }

    #[test]
    fn flags_keys_on_field_and_for_loop() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u32, f64> }\n\
                   impl S {\n\
                     fn f(&self) -> Vec<u32> { self.m.keys().copied().collect() }\n\
                     fn g(&self, m: &HashMap<u32, f64>) { for v in m { drop(v); } }\n\
                   }\n";
        let d = check(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("keys"));
    }

    #[test]
    fn lookup_only_maps_are_fine() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<String, u32>) -> Option<u32> { m.get(\"x\").copied() }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum() }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests {\n\
                     fn f(m: HashMap<u32, u32>) { for v in m { drop(v); } }\n\
                   }\n";
        assert!(check(src).is_empty());
    }
}
