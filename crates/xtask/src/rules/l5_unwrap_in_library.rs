//! L5 `no-unwrap-in-library`: a full-chip estimate over a 10⁴–10⁶ gate
//! netlist must degrade into a typed `Error`, not a panic that unwinds
//! through (or aborts) worker threads. Library code may only panic where
//! the invariant is locally provable — and then the site must carry a
//! justified `// chipleak-lint: allow(no-unwrap-in-library): <why>`.

use crate::engine::{Context, Diagnostic, Rule, Severity};
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Macros that unconditionally panic at runtime.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// The L5 rule.
pub struct UnwrapInLibrary;

impl Rule for UnwrapInLibrary {
    fn id(&self) -> &'static str {
        "no-unwrap-in-library"
    }

    fn code(&self) -> &'static str {
        "L5"
    }

    fn description(&self) -> &'static str {
        "library code must not `.unwrap()`/`.expect()`/`panic!` without a \
         justified suppression; surface a typed Error instead"
    }

    fn check_file(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        if file.kind != crate::source::FileKind::Library {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if !file.lintable_library_line(t.line) {
                continue;
            }
            // `.unwrap()` / `.expect("..")` — exact method names only, so
            // `unwrap_or`, `unwrap_or_else`, `expect_err` stay exempt.
            if let Some(m) = super::method_call_at(toks, i) {
                let name = &toks[m];
                if name.is_ident("unwrap") || name.is_ident("expect") {
                    out.push(self.diag(
                        file,
                        name.line,
                        name.col,
                        &format!("`.{}()` can panic in library code", name.text),
                    ));
                }
                continue;
            }
            // `panic!(..)` and friends.
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|u| u.is_punct('!'))
            {
                out.push(self.diag(
                    file,
                    t.line,
                    t.col,
                    &format!(
                        "`{}!` aborts the estimate instead of returning an Error",
                        t.text
                    ),
                ));
            }
        }
    }
}

impl UnwrapInLibrary {
    fn diag(&self, file: &SourceFile, line: u32, col: u32, message: &str) -> Diagnostic {
        Diagnostic {
            rule: self.id(),
            code: self.code(),
            severity: Severity::Error,
            file: file.rel.clone(),
            line,
            col,
            message: message.to_owned(),
            help: "return a typed Error variant, or add \
                   `// chipleak-lint: allow(no-unwrap-in-library): <invariant>` when the \
                   panic is locally provable"
                .into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn check(src: &str, kind: FileKind) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/d/src/x.rs".into(), src.into(), kind);
        let mut out = Vec::new();
        UnwrapInLibrary.check_file(&f, &Context::default(), &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_panic() {
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                     let a = x.unwrap();\n\
                     let b = x.expect(\"present\");\n\
                     if a != b { panic!(\"mismatch\"); }\n\
                     a\n\
                   }\n";
        let d = check(src, FileKind::Library);
        assert_eq!(d.len(), 3, "{d:?}");
    }

    #[test]
    fn fallible_combinators_are_fine() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }

    #[test]
    fn test_and_bench_code_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); }\n}\n";
        assert!(check(src, FileKind::Library).is_empty());
        assert!(check("fn f() { Some(1).unwrap(); }\n", FileKind::Bench).is_empty());
    }

    #[test]
    fn assert_macros_are_fine() {
        let src = "fn f(x: u8) { assert!(x > 0); debug_assert_eq!(x, x); }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }
}
