//! L11 `signature-parity`: interprocedural upgrade of L4's name
//! heuristics. The workspace API convention is a variant ladder —
//! `foo` → `foo_with` (adds an explicit `Parallelism`) → `foo_instrumented`
//! (adds an injected `Instruments`/`Recorder`) — and the three must stay
//! signature-compatible, or a caller switching between them silently
//! changes semantics. L4 checks that `foo` *routes through* `foo_with`;
//! L11 checks, from the symbol table, that the signatures actually line
//! up: after removing the policy parameters (`Parallelism`,
//! `Instruments`, `Recorder`), parameter types and return type must be
//! identical (generic parameter names are canonicalized, lifetimes
//! ignored).

use crate::engine::{Context, Diagnostic, Rule, Severity};
use crate::source::SourceFile;
use crate::summary::FnSummary;
use std::collections::BTreeMap;

/// The L11 rule.
pub struct SignatureParity;

/// Parameter types that carry execution policy rather than data — removed
/// on both sides before comparison. `Tiling` qualifies: tile size is a
/// performance knob whose choice is bit-identical by construction, so a
/// variant that additionally exposes it still computes the same function.
fn is_policy_param(ty: &str) -> bool {
    ty.contains("Parallelism")
        || ty.contains("Instruments")
        || ty.contains("Recorder")
        || ty.contains("Tiling")
}

/// Normalizes a type string for comparison: lifetimes dropped, the fn's
/// own generic parameter names replaced by a `$` marker.
fn norm(ty: &str, generics: &[String]) -> String {
    ty.split(' ')
        .filter(|t| !t.starts_with('\''))
        .map(|t| {
            if generics.iter().any(|g| g == t) {
                "$"
            } else {
                t
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// The comparable shape of a signature: policy-stripped normalized param
/// types plus the normalized return type.
fn shape(s: &FnSummary) -> (Vec<String>, String) {
    let params = s
        .params
        .iter()
        .filter(|(_, ty)| !is_policy_param(ty))
        .map(|(_, ty)| norm(ty, &s.generics))
        .collect();
    (params, norm(&s.ret, &s.generics))
}

impl Rule for SignatureParity {
    fn id(&self) -> &'static str {
        "signature-parity"
    }

    fn code(&self) -> &'static str {
        "L11"
    }

    fn description(&self) -> &'static str {
        "`_with`/`_instrumented` variants must match their base signature after \
         removing Parallelism/Instruments parameters"
    }

    fn check_file(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        if file.kind != crate::source::FileKind::Library {
            return;
        }
        // Group summaries by lexical scope: inline-module path + impl type.
        let mut scopes: BTreeMap<(String, String), Vec<&FnSummary>> = BTreeMap::new();
        for s in &file.summaries {
            if s.in_test {
                continue;
            }
            let key = (
                s.modules.join("::"),
                s.impl_type.clone().unwrap_or_default(),
            );
            scopes.entry(key).or_default().push(s);
        }
        for group in scopes.values() {
            for s in group {
                let (suffix, policy, policy_desc) =
                    if let Some(base) = s.name.strip_suffix("_instrumented") {
                        (base, "Instruments", "an `Instruments`/`Recorder`")
                    } else if let Some(base) = s.name.strip_suffix("_with") {
                        (base, "Parallelism", "a `Parallelism`")
                    } else {
                        continue;
                    };
                if !s.is_pub {
                    continue;
                }
                // (a) The variant must actually carry its policy parameter.
                let has_policy = s.params.iter().any(|(_, ty)| match policy {
                    "Parallelism" => ty.contains("Parallelism"),
                    _ => ty.contains("Instruments") || ty.contains("Recorder"),
                });
                if !has_policy {
                    out.push(self.diag(
                        file,
                        s.line,
                        format!(
                            "`{}` is named as a variant but takes no {policy_desc} parameter",
                            s.name
                        ),
                    ));
                }
                // (b) Compare against the nearest declared ancestor:
                // `foo_instrumented` prefers `foo_with`, else `foo`.
                let ancestors: &[String] = &if policy == "Instruments" {
                    [format!("{suffix}_with"), suffix.to_owned()]
                } else {
                    [suffix.to_owned(), String::new()]
                };
                let Some(base) = ancestors
                    .iter()
                    .filter(|n| !n.is_empty())
                    .find_map(|n| group.iter().find(|b| &b.name == n))
                else {
                    continue;
                };
                let (vp, vr) = shape(s);
                let (bp, br) = shape(base);
                if vp != bp {
                    out.push(self.diag(
                        file,
                        s.line,
                        format!(
                            "`{}` parameter types diverge from `{}`: [{}] vs [{}] \
                             (after removing policy parameters)",
                            s.name,
                            base.name,
                            vp.join(", "),
                            bp.join(", ")
                        ),
                    ));
                }
                if vr != br {
                    out.push(self.diag(
                        file,
                        s.line,
                        format!(
                            "`{}` returns `{}` but `{}` returns `{}`",
                            s.name,
                            if vr.is_empty() { "()" } else { &vr },
                            base.name,
                            if br.is_empty() { "()" } else { &br }
                        ),
                    ));
                }
            }
        }
    }
}

impl SignatureParity {
    fn diag(&self, file: &SourceFile, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            rule: self.id(),
            code: self.code(),
            severity: Severity::Error,
            file: file.rel.clone(),
            line,
            col: 1,
            message,
            help: "keep the variant ladder signature-compatible: `foo_with` = `foo` + \
                   `Parallelism`, `foo_instrumented` = `foo_with` + `Instruments`"
                .into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/d/src/x.rs".into(), src.into(), FileKind::Library);
        let mut out = Vec::new();
        SignatureParity.check_file(&f, &Context::default(), &mut out);
        out
    }

    #[test]
    fn conforming_ladder_clean() {
        let src = "pub fn frob(xs: &[f64], n: usize) -> f64 { frob_with(xs, n, Parallelism::serial()) }\n\
                   pub fn frob_with(xs: &[f64], n: usize, par: Parallelism) -> f64 {\n\
                     frob_instrumented(xs, n, par, Instruments::none())\n\
                   }\n\
                   pub fn frob_instrumented(xs: &[f64], n: usize, par: Parallelism, ins: Instruments<'_>) -> f64 { 0.0 }\n";
        let d = check(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn param_divergence_flagged() {
        let src = "pub fn frob(xs: &[f64], n: usize) -> f64 { 0.0 }\n\
                   pub fn frob_with(xs: &[f64], par: Parallelism) -> f64 { 0.0 }\n";
        let d = check(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("diverge"), "{d:?}");
    }

    #[test]
    fn return_divergence_flagged() {
        let src = "pub fn frob(xs: &[f64]) -> f64 { 0.0 }\n\
                   pub fn frob_with(xs: &[f64], par: Parallelism) -> (f64, f64) { (0.0, 0.0) }\n";
        let d = check(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("returns"), "{d:?}");
    }

    #[test]
    fn missing_policy_param_flagged() {
        let src = "pub fn frob(xs: &[f64]) -> f64 { 0.0 }\n\
                   pub fn frob_with(xs: &[f64]) -> f64 { 0.0 }\n";
        let d = check(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("no a `Parallelism`") || d[0].message.contains("Parallelism"),
            "{d:?}"
        );
    }

    #[test]
    fn generic_names_canonicalized() {
        // `R` vs `F` for the same bound position must not be a divergence.
        let src = "pub fn frob<R: Fn(f64) -> f64>(r: &R) -> f64 { 0.0 }\n\
                   pub fn frob_with<F: Fn(f64) -> f64>(r: &F, par: Parallelism) -> f64 { 0.0 }\n";
        let d = check(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn instrumented_compares_against_with_variant() {
        let src = "pub fn frob_with(xs: &[f64], par: Parallelism) -> f64 { 0.0 }\n\
                   pub fn frob_instrumented(xs: &[f64], n: usize, par: Parallelism, ins: Instruments<'_>) -> f64 { 0.0 }\n";
        let d = check(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`frob_with`"), "{d:?}");
    }

    #[test]
    fn separate_impl_scopes_do_not_cross_match() {
        let src = "impl A { pub fn new_with(n: usize, par: Parallelism) -> A { A } pub fn new(n: usize) -> A { A } }\n\
                   impl B { pub fn new_with(s: &str, par: Parallelism) -> B { B } pub fn new(s: &str) -> B { B } }\n";
        let d = check(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n\
                     pub fn probe(n: usize) -> f64 { 0.0 }\n\
                     pub fn probe_with(s: &str) -> f64 { 0.0 }\n\
                   }\n";
        let d = check(src);
        assert!(d.is_empty(), "{d:?}");
    }
}
