//! L7 `tiled-kernel-parity`: a cache-blocked kernel is an *optimization*,
//! never a semantic fork. Every public `*_tiled*` function must (a) keep a
//! same-file serial twin — the name with `_tiled` removed — so the naive
//! reference that the bit-identity tests compare against cannot be deleted
//! out from under them, and (b) accept a `Parallelism` in its signature or
//! route through a `_tiled` sibling that does, so tiled execution always
//! flows through the workspace thread-count policy instead of growing a
//! private threading scheme.

use crate::engine::{Context, Diagnostic, Rule, Severity};
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// The L7 rule.
pub struct TiledKernelParity;

impl Rule for TiledKernelParity {
    fn id(&self) -> &'static str {
        "tiled-kernel-parity"
    }

    fn code(&self) -> &'static str {
        "L7"
    }

    fn description(&self) -> &'static str {
        "public `*_tiled*` kernels must keep a same-file serial twin (name minus \
         `_tiled`) and take a `Parallelism` or route through a `_tiled` sibling that does"
    }

    fn check_file(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        if file.kind != crate::source::FileKind::Library || !ctx.in_parallel_crate(&file.rel) {
            return;
        }
        let toks = &file.tokens;
        for f in &file.fns {
            if !f.is_pub || !f.name.contains("_tiled") || file.in_test(f.line) {
                continue;
            }
            // (a) The serial twin: same name with the `_tiled` marker
            // removed, declared somewhere in the same file.
            let twin = f.name.replacen("_tiled", "", 1);
            if !file.fns.iter().any(|g| g.name == twin) {
                out.push(Diagnostic {
                    rule: self.id(),
                    code: self.code(),
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: f.line,
                    col: 1,
                    message: format!(
                        "tiled kernel `{}` has no same-file serial twin `{twin}`; \
                         the naive reference keeps the tiled path honest",
                        f.name
                    ),
                    help: format!(
                        "keep (or add) `{twin}` next to `{}` so the bit-identity \
                         oracle tests retain their reference implementation",
                        f.name
                    ),
                });
            }
            // (b) Thread-count policy: a `Parallelism` parameter, or a call
            // into a `_tiled` sibling (which this rule holds to the same
            // standard) that carries one.
            let has_par = toks[f.sig.0..f.sig.1]
                .iter()
                .any(|t| t.is_ident("Parallelism"));
            if has_par {
                continue;
            }
            let routes_through_sibling = f.body.is_some_and(|(a, b)| {
                toks[a..b].iter().any(|t| {
                    t.kind == TokKind::Ident && t.text != f.name && t.text.contains("_tiled")
                })
            });
            if !routes_through_sibling {
                out.push(Diagnostic {
                    rule: self.id(),
                    code: self.code(),
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: f.line,
                    col: 1,
                    message: format!(
                        "tiled kernel `{}` neither takes a `Parallelism` nor routes \
                         through a `_tiled` sibling; tiled execution must flow through \
                         the workspace thread-count policy",
                        f.name
                    ),
                    help: format!(
                        "add a `par: Parallelism` parameter, or implement `{}` as a \
                         wrapper over a `_tiled` variant that has one",
                        f.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CrateInfo;
    use crate::source::FileKind;

    fn ctx() -> Context {
        Context {
            crates: vec![CrateInfo {
                rel_root: "crates/d".into(),
                name: "leakage-d".into(),
                has_parallel_feature: true,
            }],
        }
    }

    fn check(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/d/src/x.rs".into(), src.into(), FileKind::Library);
        let mut out = Vec::new();
        TiledKernelParity.check_file(&f, &ctx(), &mut out);
        out
    }

    #[test]
    fn missing_twin_and_missing_parallelism_both_flagged() {
        let src = "pub fn frob_tiled(xs: &[f64]) -> f64 { xs[0] }\n";
        let d = check(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("serial twin"));
        assert!(d[1].message.contains("Parallelism"));
    }

    #[test]
    fn twin_plus_parallelism_is_clean() {
        let src = "pub fn frob(xs: &[f64]) -> f64 { xs[0] }\n\
                   pub fn frob_tiled(xs: &[f64], par: Parallelism) -> f64 { drop(par); xs[0] }\n";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn routing_through_tiled_sibling_satisfies_policy() {
        let src = "pub fn frob_with(xs: &[f64], par: Parallelism) -> f64 { drop(par); xs[0] }\n\
                   pub fn frob(xs: &[f64]) -> f64 { frob_with(xs, Parallelism::auto()) }\n\
                   pub fn frob_tiled_with(xs: &[f64], par: Parallelism) -> f64 { drop(par); xs[0] }\n\
                   pub fn frob_tiled(xs: &[f64]) -> f64 { frob_tiled_with(xs, Parallelism::auto()) }\n";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn suffix_variants_map_to_their_own_twins() {
        // `frob_tiled_with` pairs with `frob_with`, not `frob`.
        let src =
            "pub fn frob_tiled_with(xs: &[f64], par: Parallelism) -> f64 { drop(par); xs[0] }\n";
        let d = check(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`frob_with`"), "{d:?}");
    }

    #[test]
    fn private_and_test_fns_exempt() {
        let src = "fn helper_tiled(xs: &[f64]) -> f64 { xs[0] }\n\
                   #[cfg(test)]\nmod tests {\n\
                     pub fn probe_tiled(xs: &[f64]) -> f64 { xs[0] }\n\
                   }\n";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn non_parallel_crates_exempt() {
        let f = SourceFile::parse(
            "crates/other/src/x.rs".into(),
            "pub fn frob_tiled(xs: &[f64]) -> f64 { xs[0] }\n".into(),
            FileKind::Library,
        );
        let mut out = Vec::new();
        TiledKernelParity.check_file(&f, &ctx(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
