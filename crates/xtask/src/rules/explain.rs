//! `cargo xtask lint --explain <rule>`: long-form rationale, escape
//! hatches, and an example diagnostic for every registered rule. The
//! bodies live in one table so `rationale_covers_every_rule` can hold
//! future rules to the same bar.

use super::registry;

/// Per-code explanation bodies (`why` / `escape hatches` / `example`).
const BODIES: &[(&str, &str)] = &[
    (
        "L1",
        "why:\n\
         \x20 HashMap/HashSet iteration order varies per process (SipHash keys are\n\
         \x20 randomized), so any result folded from it differs run to run.\n\
         escape hatches:\n\
         \x20 use BTreeMap/BTreeSet or sort before folding; justify rare cases with\n\
         \x20 `// chipleak-lint: allow(no-nondeterministic-iteration): <why>`.\n\
         example:\n\
         \x20 crates/core/src/grid.rs:41:9: error[L1/no-nondeterministic-iteration]:\n\
         \x20 iteration over `HashMap` feeds library results\n",
    ),
    (
        "L2",
        "why:\n\
         \x20 thread_rng/wall-clock reads make estimates unreproducible; all entropy\n\
         \x20 and time must be injected (seeded RNG, `Clock` trait).\n\
         escape hatches:\n\
         \x20 inject a seeded `StdRng`/`FakeClock`; `impl Clock` bridges are exempt\n\
         \x20 inside crates/obs; otherwise justify with\n\
         \x20 `// chipleak-lint: allow(no-ambient-entropy): <why>`.\n\
         example:\n\
         \x20 crates/montecarlo/src/sampler.rs:88:5: error[L2/no-ambient-entropy]:\n\
         \x20 `thread_rng()` influences library results\n",
    ),
    (
        "L3",
        "why:\n\
         \x20 naive `sum += x` accumulates O(n) rounding error on full-chip sized\n\
         \x20 inputs; estimator/stats sums must route through the Kahan helpers.\n\
         escape hatches:\n\
         \x20 use `KahanSum`/compensated fold helpers; integer or bounded-length\n\
         \x20 accumulation can be justified with\n\
         \x20 `// chipleak-lint: allow(compensated-summation): <why>`.\n\
         example:\n\
         \x20 crates/core/src/estimator/exact.rs:120:9: error[L3/compensated-summation]:\n\
         \x20 accumulation into `total` bypasses compensated summation\n",
    ),
    (
        "L4",
        "why:\n\
         \x20 every parallel entry point needs a serial twin (`foo` routing through\n\
         \x20 `foo_with`) so results stay thread-count independent and testable.\n\
         escape hatches:\n\
         \x20 add the `_with(..., Parallelism)` variant and forward; justify\n\
         \x20 intentionally-parallel-only APIs with\n\
         \x20 `// chipleak-lint: allow(parallel-api-parity): <why>`.\n\
         example:\n\
         \x20 crates/numeric/src/conv.rs:33:1: error[L4/parallel-api-parity]:\n\
         \x20 `convolve` has no `_with` twin taking `Parallelism`\n",
    ),
    (
        "L5",
        "why:\n\
         \x20 a panic in library code aborts the whole estimate; errors must surface\n\
         \x20 as typed `Result`s the service can degrade on.\n\
         escape hatches:\n\
         \x20 return a typed Error variant; locally provable invariants may be\n\
         \x20 justified with `// chipleak-lint: allow(no-unwrap-in-library): <invariant>`.\n\
         example:\n\
         \x20 crates/process/src/field.rs:57:14: error[L5/no-unwrap-in-library]:\n\
         \x20 `.unwrap()` can panic in library code\n",
    ),
    (
        "L6",
        "why:\n\
         \x20 `Err(...) => {}` arms hide degraded estimates; every fallback must\n\
         \x20 record the degradation so consumers can see accuracy loss.\n\
         escape hatches:\n\
         \x20 record through the degradation report/recorder in the arm, or justify\n\
         \x20 with `// chipleak-lint: allow(no-silent-fallback): <why>`.\n\
         example:\n\
         \x20 crates/core/src/estimator/resilient.rs:92:13: error[L6/no-silent-fallback]:\n\
         \x20 `Err(_)` arm drops the failure without recording it\n",
    ),
    (
        "L7",
        "why:\n\
         \x20 tiled kernels (`*_tiled*`) must keep a serial twin and take\n\
         \x20 `Parallelism`, so tiling stays an optimization, not a semantic fork.\n\
         escape hatches:\n\
         \x20 add the serial twin and the policy parameter, or justify with\n\
         \x20 `// chipleak-lint: allow(tiled-kernel-parity): <why>`.\n\
         example:\n\
         \x20 crates/core/src/estimator/exact.rs:210:1: error[L7/tiled-kernel-parity]:\n\
         \x20 `sum_tiled` has no serial twin\n",
    ),
    (
        "L8",
        "why:\n\
         \x20 an entropy source reachable from estimator outputs taints every\n\
         \x20 downstream number, even when laundered through helpers; the call-graph\n\
         \x20 walk catches what L2's file scan cannot.\n\
         escape hatches:\n\
         \x20 thread a seeded RNG through the call chain, or justify with\n\
         \x20 `// chipleak-lint: allow(entropy-taint): <why>`.\n\
         example:\n\
         \x20 crates/core/src/estimator/mod.rs:61:1: error[L8/entropy-taint]:\n\
         \x20 `thread_rng` is reachable from estimate_total -> perturbation -> noise_source\n",
    ),
    (
        "L9",
        "why:\n\
         \x20 the resilient ladder and the service-bound API promise typed errors;\n\
         \x20 a panic three calls down unwinds through worker threads and kills the\n\
         \x20 whole estimate, so no unwrap/expect/panic-macro or unprovable index\n\
         \x20 may be reachable from those roots.\n\
         escape hatches:\n\
         \x20 `.get(i).ok_or(...)?`, an `assert!`-stated bound, bounds-tied loop\n\
         \x20 binders, a `catch_unwind(...)` supervisor (panics inside its parens\n\
         \x20 are contained — unless the same fn calls `resume_unwind`, which\n\
         \x20 re-raises the payload and re-arms the rule), or a justified\n\
         \x20 `allow(panic-freedom)` / `allow(no-unwrap-in-library)`.\n\
         example:\n\
         \x20 crates/core/src/estimator/table.rs:77:21: error[L9/panic-freedom]:\n\
         \x20 `unwrap` is reachable from estimate_resilient -> stage -> kernel\n",
    ),
    (
        "L10",
        "why:\n\
         \x20 merge order changes floating-point sums; accumulation behind\n\
         \x20 parallel-gated callers must use Kahan or fixed-order merges to stay\n\
         \x20 thread-count independent.\n\
         escape hatches:\n\
         \x20 merge per-worker partials in worker-index order with compensated\n\
         \x20 sums, or justify with `// chipleak-lint: allow(merge-order): <why>`.\n\
         example:\n\
         \x20 crates/numeric/src/parallel.rs:140:9: error[L10/merge-order]:\n\
         \x20 accumulation reachable from merge_sum_with -> fold_parts is order-sensitive\n",
    ),
    (
        "L11",
        "why:\n\
         \x20 `_with`/`_instrumented` ladders must stay signature-compatible with\n\
         \x20 their base fn, or the convenience wrappers silently diverge from the\n\
         \x20 policy-taking variants.\n\
         escape hatches:\n\
         \x20 keep base params a prefix of the variant's (policy/instrument params\n\
         \x20 appended), or justify with `// chipleak-lint: allow(signature-parity): <why>`.\n\
         example:\n\
         \x20 crates/numeric/src/fft.rs:190:1: error[L11/signature-parity]:\n\
         \x20 `fft2d_instrumented` diverges from `fft2d_with` before the added params\n",
    ),
    (
        "L12",
        "why:\n\
         \x20 two threads taking the same locks in opposite orders deadlock the\n\
         \x20 first time the schedules interleave; the workspace lock-acquisition\n\
         \x20 graph (guard regions + call closure) must stay acyclic.\n\
         escape hatches:\n\
         \x20 pick one global acquisition order (DESIGN.md \u{a7}15) or release the\n\
         \x20 first guard before the second; cycles proven non-interleaving may be\n\
         \x20 justified with `// chipleak-lint: allow(lock-order): <why>`.\n\
         example:\n\
         \x20 crates/service/src/server.rs:301:9: error[L12/lock-order]:\n\
         \x20 acquiring `OutBuffer::state` while `WorkQueue::state` is held closes a\n\
         \x20 lock-order cycle: WorkQueue::state -> OutBuffer::state -> WorkQueue::state\n",
    ),
    (
        "L13",
        "why:\n\
         \x20 a guard held across blocking I/O, sleeps, joins, channel receives, or\n\
         \x20 loop-bearing kernel work serializes every other thread behind one\n\
         \x20 slow operation (the single-flight store exists precisely to\n\
         \x20 characterize outside its family mutex).\n\
         escape hatches:\n\
         \x20 compute first, publish under the lock; provably O(1) work may be\n\
         \x20 justified with `// chipleak-lint: allow(blocking-under-lock): <why>`.\n\
         example:\n\
         \x20 crates/numeric/src/fft.rs:773:1: error[L13/blocking-under-lock]:\n\
         \x20 `new` reaches loop-bearing kernel work (Fft2dPlan::new -> FftPlan::new)\n\
         \x20 while `FftPlanCache::plans` is held\n",
    ),
    (
        "L14",
        "why:\n\
         \x20 std mutexes are not reentrant: a call chain that re-acquires a lock\n\
         \x20 the caller already holds deadlocks (or panics) with no second thread\n\
         \x20 involved — the classic recorder-callback trap.\n\
         escape hatches:\n\
         \x20 drop the guard first, or pass the guard/locked data down instead of\n\
         \x20 re-locking; runtime-disjoint paths (e.g. different shards) may be\n\
         \x20 justified with `// chipleak-lint: allow(lock-reentrancy): <why>`.\n\
         example:\n\
         \x20 crates/obs/src/aggregate.rs:230:9: error[L14/lock-reentrancy]:\n\
         \x20 call chain re-acquires `Mutex<Shard>` already held by the caller:\n\
         \x20 AggregatingRecorder::snapshot -> WorkerRecorder::add\n",
    ),
    (
        "L15",
        "why:\n\
         \x20 `Condvar::wait` may wake spuriously and may lose the race against the\n\
         \x20 notifier, so a bare `if`-guarded wait resumes with the predicate\n\
         \x20 still false; every wait/wait_timeout must sit in a predicate loop.\n\
         escape hatches:\n\
         \x20 `while !predicate { guard = cv.wait(guard)...; }` or `wait_while`;\n\
         \x20 timeout waits whose caller re-checks may be justified with\n\
         \x20 `// chipleak-lint: allow(condvar-wait-loop): <why>`.\n\
         example:\n\
         \x20 crates/service/src/store.rs:118:17: error[L15/condvar-wait-loop]:\n\
         \x20 `self.built.wait(...)` is not inside a predicate loop\n",
    ),
];

/// Renders the explanation for a rule named by code (`L9`, case
/// insensitive) or id (`panic-freedom`); `None` for unknown rules.
pub fn render(query: &str) -> Option<String> {
    let q = query.to_ascii_lowercase();
    for rule in registry() {
        if rule.code().to_ascii_lowercase() == q || rule.id() == q {
            let body = BODIES
                .iter()
                .find(|(c, _)| *c == rule.code())
                .map_or("", |(_, b)| *b);
            return Some(format!(
                "{} `{}` — {}\n\n{}",
                rule.code(),
                rule.id(),
                rule.description(),
                body
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rationale_covers_every_rule() {
        for rule in registry() {
            let text = render(rule.code()).unwrap_or_else(|| panic!("{} unknown", rule.code()));
            for section in ["why:", "escape hatches:", "example:"] {
                assert!(
                    text.contains(section),
                    "{} explanation lacks `{section}`",
                    rule.code()
                );
            }
        }
    }

    #[test]
    fn lookup_by_id_and_case_insensitive_code() {
        assert_eq!(render("panic-freedom"), render("l9"));
        assert_eq!(render("L15"), render("condvar-wait-loop"));
        assert!(render("L99").is_none());
    }
}
