//! L15 `condvar-wait-loop`: `Condvar::wait` may wake spuriously and
//! may win the race against the notifier's state change, so a bare
//! `if`-guarded (or unguarded) wait proceeds with the predicate still
//! false. Every `wait`/`wait_timeout` call must sit inside a
//! `loop`/`while` that re-checks the predicate; `wait_while`/
//! `wait_timeout_while` re-check internally and are exempt.
//!
//! Escape hatch: a justified `allow(condvar-wait-loop)` on the wait
//! line — legitimate only for timeout-based waits whose caller
//! re-checks the predicate itself (rare; prefer `wait_timeout_while`).

use crate::engine::{Context, Diagnostic, Rule, Severity};
use crate::source::{FileKind, SourceFile};

/// The L15 rule.
pub struct CondvarWaitLoop;

impl Rule for CondvarWaitLoop {
    fn id(&self) -> &'static str {
        "condvar-wait-loop"
    }

    fn code(&self) -> &'static str {
        "L15"
    }

    fn description(&self) -> &'static str {
        "every Condvar::wait/wait_timeout must sit in a predicate loop (wait_while is exempt)"
    }

    fn check_file(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        if file.kind != FileKind::Library {
            return;
        }
        for s in &file.summaries {
            if s.in_test {
                continue;
            }
            for w in &s.waits {
                // `wait_while` family re-checks the predicate itself;
                // argless `.wait()` is some other API, not a condvar.
                if !matches!(w.method.as_str(), "wait" | "wait_timeout") || !w.has_args {
                    continue;
                }
                if w.in_loop {
                    continue;
                }
                out.push(Diagnostic {
                    rule: self.id(),
                    code: self.code(),
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: w.line,
                    col: w.col,
                    message: format!(
                        "`{}.{}(...)` is not inside a predicate loop — spurious or early \
                         wakeups resume with the condition still false",
                        w.cond_path, w.method
                    ),
                    help: "wrap the wait in `while !predicate { guard = cv.wait(guard)...; }` \
                           or use `wait_while`; or justify with \
                           `// chipleak-lint: allow(condvar-wait-loop): <why>`"
                        .into(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn lint(rel: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse(rel.to_owned(), src.to_owned(), FileKind::classify(rel));
        let mut out = Vec::new();
        CondvarWaitLoop.check_file(&file, &Context::default(), &mut out);
        out
    }

    const LIB: &str = "crates/core/src/lib.rs";

    #[test]
    fn bare_wait_flagged() {
        let d = lint(
            LIB,
            "pub fn f(m: &std::sync::Mutex<bool>, cv: &std::sync::Condvar) {\n\
               let mut g = m.lock().unwrap();\n\
               if !*g { g = cv.wait(g).unwrap(); }\n\
               let _ = *g;\n\
             }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("cv.wait"), "{d:?}");
    }

    #[test]
    fn looped_wait_clean() {
        let d = lint(
            LIB,
            "pub fn f(m: &std::sync::Mutex<bool>, cv: &std::sync::Condvar) {\n\
               let mut g = m.lock().unwrap();\n\
               while !*g { g = cv.wait(g).unwrap(); }\n\
               let _ = *g;\n\
             }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn wait_while_exempt() {
        let d = lint(
            LIB,
            "pub fn f(m: &std::sync::Mutex<bool>, cv: &std::sync::Condvar) {\n\
               let g = cv.wait_while(m.lock().unwrap(), |ready| !*ready).unwrap();\n\
               let _ = *g;\n\
             }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_looped_wait_timeout_flagged() {
        let d = lint(
            LIB,
            "pub fn f(m: &std::sync::Mutex<bool>, cv: &std::sync::Condvar) {\n\
               let g = m.lock().unwrap();\n\
               let _ = cv.wait_timeout(g, std::time::Duration::from_millis(5)).unwrap();\n\
             }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn test_code_and_non_library_files_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() {\n    let m = std::sync::Mutex::new(false);\n    let cv = std::sync::Condvar::new();\n    let g = m.lock().unwrap();\n    let _ = cv.wait(g).unwrap();\n  }\n}\n";
        assert!(lint(LIB, src).is_empty());
        let bench = "pub fn f(m: &std::sync::Mutex<bool>, cv: &std::sync::Condvar) {\n\
               let g = m.lock().unwrap();\n\
               let _ = cv.wait(g).unwrap();\n\
             }\n";
        assert!(lint("crates/bench/src/bin/run.rs", bench).is_empty());
    }
}
