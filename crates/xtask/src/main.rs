//! `cargo xtask` — workspace automation entry point.
//!
//! Subcommands:
//! - `lint [--format human|json|sarif] [--fix] [--no-cache] [--root PATH]`
//!   — run chipleak-lint over the workspace.
//! - `lint --explain <rule>` — print a rule's rationale and exit.
//! - `rules` — list the registered rules.
//!
//! Exit codes: 0 clean, 1 lint errors found, 2 usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::engine::{render_human, render_json, Severity};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("rules") => rules(),
        Some("--help") | Some("-h") | None => {
            eprint!("{USAGE}");
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask <subcommand>

subcommands:
  lint [flags]   run chipleak-lint over the workspace
  rules          list registered lint rules

lint flags:
  --format <human|json|sarif>  output format (default: human)
  --json                       shorthand for --format json
  --sarif                      shorthand for --format sarif
  --fix                        apply provable fixes (stale suppressions,
                               unwrap/expect -> ? rewrites), then lint
  --no-cache                   skip the incremental cache
  --root PATH                  lint a different workspace root
  --explain <rule>             print a rule's rationale, escape hatches,
                               and an example diagnostic, then exit
";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

fn lint(args: &[String]) -> ExitCode {
    let mut format = Format::Human;
    let mut fix = false;
    let mut no_cache = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--sarif" => format = Format::Sarif,
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!("xtask: --format requires one of human|json|sarif, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--explain" => match it.next() {
                Some(query) => return explain(query),
                None => {
                    eprintln!("xtask: --explain requires a rule code or id (e.g. L9)");
                    return ExitCode::from(2);
                }
            },
            "--fix" => fix = true,
            "--no-cache" => no_cache = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask: unknown lint flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace root this binary was built from.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    if fix {
        match xtask::fix::apply(&root) {
            Ok(applied) => {
                for a in &applied {
                    eprintln!("fixed {}:{}: {}", a.file, a.line, a.what);
                }
                eprintln!("chipleak-lint: {} fix(es) applied", applied.len());
            }
            Err(e) => {
                eprintln!("xtask: --fix failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let (files, crates) = match (
        xtask::collect_workspace(&root),
        xtask::collect_crates(&root),
    ) {
        (Ok(f), Ok(c)) => (f, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("xtask: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let diags = if no_cache {
        xtask::run_lint(&files, crates)
    } else {
        let cache_path = root.join("target").join("chipleak-lint-cache.json");
        xtask::run_lint_cached(&files, crates, &cache_path)
    };
    match format {
        Format::Json => print!("{}", render_json(&diags)),
        Format::Sarif => print!(
            "{}",
            xtask::sarif::render(&xtask::rules::registry(), &diags)
        ),
        Format::Human => print!("{}", render_human(&diags)),
    }
    let errors = diags.iter().any(|d| d.severity == Severity::Error);
    ExitCode::from(u8::from(errors))
}

fn explain(query: &str) -> ExitCode {
    match xtask::rules::explain::render(query) {
        Some(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("xtask: no rule named `{query}` — run `cargo xtask rules` for the list");
            ExitCode::from(2)
        }
    }
}

fn rules() -> ExitCode {
    for rule in xtask::rules::registry() {
        println!(
            "{:>3}  {:<32} {}",
            rule.code(),
            rule.id(),
            rule.description()
        );
    }
    ExitCode::SUCCESS
}
