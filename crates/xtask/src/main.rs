//! `cargo xtask` — workspace automation entry point.
//!
//! Subcommands:
//! - `lint [--json] [--root PATH]` — run chipleak-lint over the workspace.
//! - `rules` — list the registered rules.
//!
//! Exit codes: 0 clean, 1 lint errors found, 2 usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::engine::{render_human, render_json, Severity};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("rules") => rules(),
        Some("--help") | Some("-h") | None => {
            eprint!("{USAGE}");
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask <subcommand>

subcommands:
  lint [--json] [--root PATH]   run chipleak-lint over the workspace
  rules                         list registered lint rules
";

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask: unknown lint flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Default to the workspace root this binary was built from.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let (files, crates) = match (
        xtask::collect_workspace(&root),
        xtask::collect_crates(&root),
    ) {
        (Ok(f), Ok(c)) => (f, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("xtask: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let diags = xtask::run_lint(&files, crates);
    if json {
        print!("{}", render_json(&diags));
    } else {
        print!("{}", render_human(&diags));
    }
    let errors = diags.iter().any(|d| d.severity == Severity::Error);
    ExitCode::from(u8::from(errors))
}

fn rules() -> ExitCode {
    for rule in xtask::rules::registry() {
        println!(
            "{:>3}  {:<32} {}",
            rule.code(),
            rule.id(),
            rule.description()
        );
    }
    ExitCode::SUCCESS
}
