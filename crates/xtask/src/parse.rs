//! Lossless item parser over the token stream.
//!
//! [`parse`] turns the flat [`crate::lexer`] token stream into an item
//! tree — `fn` items with parsed signatures, `mod`/`impl`/`trait` blocks
//! with their children, and opaque `Other` items for everything else
//! (structs, uses, consts, macro definitions). The parse is *lossless*:
//! the token spans of the items tile their parent range exactly, so the
//! original token stream can be reconstructed from the tree
//! ([`reconstruct`] — pinned by a proptest in `tests/parse_roundtrip.rs`).
//! Interprocedural rules never re-scan raw tokens; they consume the
//! [`crate::summary::FnSummary`] facts extracted from this tree.

use crate::lexer::{Tok, TokKind};

/// Exclusive token index range `[start, end)`.
pub type TokSpan = (usize, usize);

/// One parsed item.
#[derive(Debug)]
pub struct Item {
    /// Token range of the whole item, attributes included.
    pub span: TokSpan,
    /// What the item is.
    pub kind: ItemKind,
}

/// Item payload.
#[derive(Debug)]
pub enum ItemKind {
    /// A `fn` item (free, method, or trait default/declaration).
    Fn(FnDef),
    /// Inline module with a body: `mod name { ... }`.
    Mod {
        /// Module name.
        name: String,
        /// Child items, tiling the body between the braces.
        items: Vec<Item>,
        /// Token range of the `{ ... }` body including braces.
        body: TokSpan,
    },
    /// `impl [Trait for] Type` block.
    Impl {
        /// Self type name (first type ident after `for`, or after `impl`).
        type_name: String,
        /// Trait name when this is a trait impl.
        trait_name: Option<String>,
        /// Child items, tiling the body between the braces.
        items: Vec<Item>,
        /// Token range of the `{ ... }` body including braces.
        body: TokSpan,
    },
    /// `trait Name { ... }` definition.
    Trait {
        /// Trait name.
        name: String,
        /// Child items, tiling the body between the braces.
        items: Vec<Item>,
        /// Token range of the `{ ... }` body including braces.
        body: TokSpan,
    },
    /// Anything else (struct, enum, use, const, static, type, macro
    /// definition/invocation, extern block, stray tokens).
    Other,
}

/// One parameter of a `fn` signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Binding name (best effort: last ident of the pattern; `self` for
    /// receivers; `_` patterns yield `_`).
    pub name: String,
    /// Normalized type text (tokens joined by single spaces); for `self`
    /// receivers this is the receiver form (`self`, `& self`, `& mut self`).
    pub ty: String,
}

/// A parsed `fn` item.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// `true` for any `pub` visibility.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range from the first attribute/visibility token to the body
    /// open brace (exclusive) or terminating `;`.
    pub sig_span: TokSpan,
    /// Token range of the body including braces (`None` for declarations).
    pub body_span: Option<TokSpan>,
    /// Declared generic parameter names (idents introduced by `<...>`).
    pub generics: Vec<String>,
    /// Parsed parameters in order.
    pub params: Vec<Param>,
    /// Normalized return type text (empty for `()`-returning fns).
    pub ret: String,
}

/// Parses a token stream into an item tree covering `0..tokens.len()`.
pub fn parse(tokens: &[Tok]) -> Vec<Item> {
    let mut p = Parser { toks: tokens };
    p.items(0, tokens.len())
}

struct Parser<'a> {
    toks: &'a [Tok],
}

impl<'a> Parser<'a> {
    /// Parses the item sequence tiling `[start, end)`.
    fn items(&mut self, start: usize, end: usize) -> Vec<Item> {
        let mut out = Vec::new();
        let mut i = start;
        let mut other_start: Option<usize> = None;
        while i < end {
            let item_start = i;
            // Attributes belong to the item that follows.
            let mut j = i;
            while j + 1 < end
                && self.toks[j].is_punct('#')
                && (self.toks[j + 1].is_punct('[')
                    || (self.toks[j + 1].is_punct('!')
                        && j + 2 < end
                        && self.toks[j + 2].is_punct('[')))
            {
                let open = if self.toks[j + 1].is_punct('[') {
                    j + 1
                } else {
                    j + 2
                };
                j = skip_brackets(self.toks, open, end);
            }
            // Header modifiers before an item keyword.
            let mut k = j;
            while let Some(t) = self.toks.get(k).filter(|_| k < end) {
                if t.is_ident("pub") {
                    k += 1;
                    if self
                        .toks
                        .get(k)
                        .filter(|_| k < end)
                        .is_some_and(|u| u.is_punct('('))
                    {
                        k = skip_parens(self.toks, k, end);
                    }
                    continue;
                }
                if t.kind == TokKind::Ident
                    && matches!(t.text.as_str(), "const" | "unsafe" | "async" | "default")
                {
                    // `const fn` / `const NAME: ...` both start with `const`;
                    // only continue when an item keyword can still follow.
                    if self
                        .toks
                        .get(k + 1)
                        .filter(|_| k + 1 < end)
                        .is_some_and(|u| {
                            u.is_ident("fn")
                                || u.is_ident("unsafe")
                                || u.is_ident("extern")
                                || u.is_ident("async")
                        })
                    {
                        k += 1;
                        continue;
                    }
                    break;
                }
                if t.is_ident("extern")
                    && self
                        .toks
                        .get(k + 1)
                        .filter(|_| k + 1 < end)
                        .is_some_and(|u| u.kind == TokKind::Literal)
                    && self
                        .toks
                        .get(k + 2)
                        .filter(|_| k + 2 < end)
                        .is_some_and(|u| u.is_ident("fn"))
                {
                    k += 2;
                    continue;
                }
                break;
            }
            let keyword = self.toks.get(k).filter(|_| k < end);
            let parsed: Option<(usize, ItemKind)> = match keyword {
                Some(t) if t.is_ident("fn") => self.parse_fn(item_start, k, end),
                Some(t) if t.is_ident("mod") => self.parse_mod(k, end),
                Some(t) if t.is_ident("impl") => self.parse_impl(k, end),
                Some(t) if t.is_ident("trait") => self.parse_trait(k, end),
                _ => None,
            };
            match parsed {
                Some((next, kind)) => {
                    if let Some(os) = other_start.take() {
                        out.push(Item {
                            span: (os, item_start),
                            kind: ItemKind::Other,
                        });
                    }
                    out.push(Item {
                        span: (item_start, next),
                        kind,
                    });
                    i = next;
                }
                None => {
                    // Not a recognized item: absorb tokens until the next
                    // plausible item boundary into an Other run.
                    if other_start.is_none() {
                        other_start = Some(item_start);
                    }
                    i = self.skip_other(item_start, end);
                }
            }
        }
        if let Some(os) = other_start {
            out.push(Item {
                span: (os, end),
                kind: ItemKind::Other,
            });
        }
        out
    }

    /// Consumes one unrecognized construct: a `;`-terminated run or a
    /// braced block (struct/enum/macro body), whichever comes first.
    fn skip_other(&self, start: usize, end: usize) -> usize {
        let mut i = start;
        // Leading attribute on the unrecognized item.
        while i + 1 < end
            && self.toks[i].is_punct('#')
            && (self.toks[i + 1].is_punct('[')
                || (self.toks[i + 1].is_punct('!')
                    && i + 2 < end
                    && self.toks[i + 2].is_punct('[')))
        {
            let open = if self.toks[i + 1].is_punct('[') {
                i + 1
            } else {
                i + 2
            };
            i = skip_brackets(self.toks, open, end);
        }
        let mut paren = 0isize;
        let mut bracket = 0isize;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if t.is_punct('{') && paren == 0 && bracket == 0 {
                return skip_braces(self.toks, i, end);
            } else if t.is_punct(';') && paren == 0 && bracket == 0 {
                return i + 1;
            }
            i += 1;
        }
        end
    }

    fn parse_fn(
        &mut self,
        item_start: usize,
        fn_kw: usize,
        end: usize,
    ) -> Option<(usize, ItemKind)> {
        let name_tok = self.toks.get(fn_kw + 1).filter(|_| fn_kw + 1 < end)?;
        if name_tok.kind != TokKind::Ident {
            return None;
        }
        // Find the signature end: body `{` or declaration `;` at paren and
        // bracket depth 0 (generics/where clauses never contain braces;
        // the bracket depth keeps `-> [f64; 2]` from ending the scan).
        let mut paren = 0isize;
        let mut bracket = 0isize;
        let mut i = fn_kw + 1;
        let (sig_end, body_span) = loop {
            if i >= end {
                break (end, None);
            }
            let t = &self.toks[i];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if t.is_punct('{') && paren == 0 && bracket == 0 {
                break (i, Some((i, skip_braces(self.toks, i, end))));
            } else if t.is_punct(';') && paren == 0 && bracket == 0 {
                break (i + 1, None);
            }
            i += 1;
        };
        let next = body_span.map_or(sig_end, |(_, b)| b);
        let sig_close = body_span.map_or(sig_end, |(a, _)| a);
        let generics = generic_params(self.toks, fn_kw + 2, sig_close);
        let params = params_in(self.toks, fn_kw + 2, sig_close);
        let ret = return_type(self.toks, fn_kw + 2, sig_close);
        let is_pub = self.toks[item_start..fn_kw]
            .iter()
            .any(|t| t.is_ident("pub"));
        Some((
            next,
            ItemKind::Fn(FnDef {
                name: name_tok.text.clone(),
                is_pub,
                line: self.toks[fn_kw].line,
                sig_span: (item_start, sig_close),
                body_span,
                generics,
                params,
                ret,
            }),
        ))
    }

    fn parse_mod(&mut self, mod_kw: usize, end: usize) -> Option<(usize, ItemKind)> {
        let name_tok = self.toks.get(mod_kw + 1).filter(|_| mod_kw + 1 < end)?;
        if name_tok.kind != TokKind::Ident {
            return None;
        }
        let after = self.toks.get(mod_kw + 2).filter(|_| mod_kw + 2 < end)?;
        if !after.is_punct('{') {
            return None; // `mod name;` is an Other item
        }
        let open = mod_kw + 2;
        let close = skip_braces(self.toks, open, end);
        let items = self.items(open + 1, close.saturating_sub(1).max(open + 1));
        Some((
            close,
            ItemKind::Mod {
                name: name_tok.text.clone(),
                items,
                body: (open, close),
            },
        ))
    }

    fn parse_impl(&mut self, impl_kw: usize, end: usize) -> Option<(usize, ItemKind)> {
        // Header runs to the body `{` (or `;` — never valid, bail).
        let mut i = impl_kw + 1;
        let mut angle = 0isize;
        let mut for_at: Option<usize> = None;
        let open = loop {
            if i >= end {
                return None;
            }
            let t = &self.toks[i];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(i > 0 && self.toks[i - 1].is_punct('-')) {
                angle -= 1;
            } else if t.is_ident("for") && angle == 0 {
                for_at = Some(i);
            } else if t.is_punct('{') && angle <= 0 {
                break i;
            } else if t.is_punct(';') && angle <= 0 {
                return None;
            }
            i += 1;
        };
        let type_name = first_type_ident(self.toks, for_at.map_or(impl_kw + 1, |f| f + 1), open)
            .unwrap_or_default();
        let trait_name = for_at
            .and_then(|f| first_type_ident(self.toks, impl_kw + 1, f))
            .filter(|_| for_at.is_some());
        let close = skip_braces(self.toks, open, end);
        let items = self.items(open + 1, close.saturating_sub(1).max(open + 1));
        Some((
            close,
            ItemKind::Impl {
                type_name,
                trait_name,
                items,
                body: (open, close),
            },
        ))
    }

    fn parse_trait(&mut self, trait_kw: usize, end: usize) -> Option<(usize, ItemKind)> {
        let name_tok = self.toks.get(trait_kw + 1).filter(|_| trait_kw + 1 < end)?;
        if name_tok.kind != TokKind::Ident {
            return None;
        }
        let mut i = trait_kw + 2;
        let open = loop {
            if i >= end {
                return None;
            }
            let t = &self.toks[i];
            if t.is_punct('{') {
                break i;
            }
            if t.is_punct(';') {
                return None; // `trait X: Y;` — not a body
            }
            i += 1;
        };
        let close = skip_braces(self.toks, open, end);
        let items = self.items(open + 1, close.saturating_sub(1).max(open + 1));
        Some((
            close,
            ItemKind::Trait {
                name: name_tok.text.clone(),
                items,
                body: (open, close),
            },
        ))
    }
}

/// First ident in `[start, end)` that names a type: skips `&`, lifetimes,
/// `mut`, `dyn`, and leading path segments end at the *last* path ident
/// (`crate::module::Type` → `Type`).
fn first_type_ident(toks: &[Tok], start: usize, end: usize) -> Option<String> {
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('<') {
            // Skip a whole generic list (`impl<C: Clock> Estimator<C>`
            // must not pick up `C`).
            let mut depth = 0isize;
            while i < end {
                if toks[i].is_punct('<') {
                    depth += 1;
                } else if toks[i].is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
            i += 1;
            continue;
        }
        if t.is_punct('&') || t.kind == TokKind::Lifetime || t.is_ident("mut") || t.is_ident("dyn")
        {
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            // Follow the path to its final segment.
            let mut j = i;
            while j + 3 < end
                && toks[j + 1].is_punct(':')
                && toks[j + 2].is_punct(':')
                && toks[j + 3].kind == TokKind::Ident
            {
                j += 3;
            }
            return Some(toks[j].text.clone());
        }
        return None;
    }
    None
}

/// Declared generic parameter names of a fn signature: idents introduced
/// in the top-level `<...>` directly after the fn name (type and const
/// params; lifetimes excluded).
fn generic_params(toks: &[Tok], start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    let Some(first) = toks.get(start).filter(|_| start < end) else {
        return out;
    };
    if !first.is_punct('<') {
        return out;
    }
    let mut depth = 0isize;
    let mut expecting = true; // at a `<` or `,` of the outermost list
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('<') {
            depth += 1;
            expecting = depth == 1;
        } else if t.is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct(',') && depth == 1 {
            expecting = true;
        } else if expecting && t.kind == TokKind::Ident && depth == 1 {
            if t.is_ident("const") {
                // `const N: usize` — the name is next.
            } else {
                out.push(t.text.clone());
                expecting = false;
            }
        } else if expecting && t.kind == TokKind::Lifetime {
            expecting = false;
        }
        i += 1;
    }
    out
}

/// Parses the parameter list of the fn whose signature occupies
/// `[start, end)`: finds the top-level parens and splits at depth-0 commas.
fn params_in(toks: &[Tok], start: usize, end: usize) -> Vec<Param> {
    // Locate the param-list `(` — the first `(` at angle depth 0.
    let mut angle = 0isize;
    let mut open = None;
    for (i, t) in toks.iter().enumerate().take(end).skip(start) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
            angle -= 1;
        } else if t.is_punct('(') && angle <= 0 {
            open = Some(i);
            break;
        }
    }
    let Some(open) = open else { return Vec::new() };
    let close = skip_parens(toks, open, end).saturating_sub(1);
    let mut params = Vec::new();
    let mut depth = 0isize;
    let mut angle = 0isize;
    let mut seg_start = open + 1;
    let mut i = open + 1;
    while i <= close {
        let at_end = i == close;
        let t = &toks[i];
        if !at_end {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
                angle -= 1;
            }
        }
        if at_end || (t.is_punct(',') && depth == 0 && angle <= 0) {
            if seg_start < i {
                if let Some(p) = parse_param(toks, seg_start, i) {
                    params.push(p);
                }
            }
            seg_start = i + 1;
        }
        i += 1;
    }
    params
}

/// One `pattern: Type` segment (or a bare `self` receiver).
fn parse_param(toks: &[Tok], start: usize, end: usize) -> Option<Param> {
    // `self` receivers: `self`, `&self`, `&mut self`, `mut self`.
    let names_self = toks[start..end].iter().any(|t| t.is_ident("self"));
    // Split at the first top-level `:` (skipping `::`).
    let mut depth = 0isize;
    let mut colon = None;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')')
            || t.is_punct(']')
            // A `>` closes a generic group unless it is the `->` arrow.
            || (t.is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')))
        {
            depth -= 1;
        } else if t.is_punct(':') && depth == 0 {
            if toks.get(i + 1).is_some_and(|u| u.is_punct(':')) {
                i += 2;
                continue;
            }
            colon = Some(i);
            break;
        }
        i += 1;
    }
    match colon {
        Some(c) => {
            let name = toks[start..c]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident || t.is_punct('_'))
                .map(|t| t.text.clone())
                .unwrap_or_else(|| "_".into());
            Some(Param {
                name,
                ty: join(&toks[c + 1..end]),
            })
        }
        None if names_self => Some(Param {
            name: "self".into(),
            ty: join(&toks[start..end]),
        }),
        None => None,
    }
}

/// Normalized return type text: tokens between `->` (at paren/angle depth
/// 0, after the param list) and the `where` clause / signature end.
fn return_type(toks: &[Tok], start: usize, end: usize) -> String {
    // Find the param-list close first so `-> f64` inside `Fn(f64) -> f64`
    // generic bounds is not mistaken for the fn's own return arrow.
    let mut angle = 0isize;
    let mut open = None;
    for (i, t) in toks.iter().enumerate().take(end).skip(start) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
            angle -= 1;
        } else if t.is_punct('(') && angle <= 0 {
            open = Some(i);
            break;
        }
    }
    let Some(open) = open else {
        return String::new();
    };
    let after = skip_parens(toks, open, end);
    let mut i = after;
    while i + 1 < end {
        if toks[i].is_punct('-') && toks[i + 1].is_punct('>') {
            let mut j = i + 2;
            while j < end && !toks[j].is_ident("where") {
                j += 1;
            }
            return join(&toks[i + 2..j]);
        }
        i += 1;
    }
    String::new()
}

/// Joins token texts with single spaces (the normalized type rendering).
pub fn join(toks: &[Tok]) -> String {
    let mut s = String::new();
    for t in toks {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    s
}

/// Index just past a balanced `[...]`, bounded by `end`.
fn skip_brackets(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        if toks[i].is_punct('[') {
            depth += 1;
        } else if toks[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Index just past a balanced `(...)`, bounded by `end`.
pub fn skip_parens(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        if toks[i].is_punct('(') {
            depth += 1;
        } else if toks[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Index just past a balanced `{...}`, bounded by `end`.
pub fn skip_braces(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Flattens the item tree back into the covered token index sequence.
/// Losslessness means this equals `0..tokens_len` exactly; the proptest
/// in `tests/parse_roundtrip.rs` pins that for arbitrary sources.
pub fn reconstruct(items: &[Item]) -> Vec<usize> {
    let mut out = Vec::new();
    for item in items {
        reconstruct_item(item, &mut out);
    }
    out
}

fn reconstruct_item(item: &Item, out: &mut Vec<usize>) {
    match &item.kind {
        ItemKind::Fn(_) | ItemKind::Other => out.extend(item.span.0..item.span.1),
        ItemKind::Mod { items, body, .. }
        | ItemKind::Impl { items, body, .. }
        | ItemKind::Trait { items, body, .. } => {
            // Header + open brace, children, close brace.
            out.extend(item.span.0..=body.0);
            for child in items {
                reconstruct_item(child, out);
            }
            // Any trailing tokens between the last child and the close
            // brace were absorbed by the children (items() tiles the body
            // range completely), so only the close brace remains.
            out.extend(body.1.saturating_sub(1)..item.span.1);
        }
    }
}

/// Depth-first visit of every `FnDef` with its enclosing module path and
/// impl/trait context.
pub fn visit_fns<'t>(items: &'t [Item], f: &mut dyn FnMut(FnCtx<'t>)) {
    let mut modules = Vec::new();
    visit(items, &mut modules, None, None, f);
}

/// Context handed to [`visit_fns`] callbacks.
pub struct FnCtx<'t> {
    /// The fn item.
    pub def: &'t FnDef,
    /// Inline-module path from the file root.
    pub modules: Vec<String>,
    /// Enclosing `impl` self-type name, when inside an impl.
    pub impl_type: Option<&'t str>,
    /// Enclosing trait name: `impl Trait for` name or `trait` definition.
    pub trait_name: Option<&'t str>,
}

fn visit<'t>(
    items: &'t [Item],
    modules: &mut Vec<String>,
    impl_type: Option<&'t str>,
    trait_name: Option<&'t str>,
    f: &mut dyn FnMut(FnCtx<'t>),
) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(def) => f(FnCtx {
                def,
                modules: modules.clone(),
                impl_type,
                trait_name,
            }),
            ItemKind::Mod { name, items, .. } => {
                modules.push(name.clone());
                visit(items, modules, impl_type, trait_name, f);
                modules.pop();
            }
            ItemKind::Impl {
                type_name,
                trait_name: tn,
                items,
                ..
            } => visit(items, modules, Some(type_name), tn.as_deref(), f),
            ItemKind::Trait { name, items, .. } => visit(items, modules, impl_type, Some(name), f),
            ItemKind::Other => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<(String, Vec<Param>, String)> {
        let toks = lex(src).tokens;
        let items = parse(&toks);
        let mut out = Vec::new();
        visit_fns(&items, &mut |ctx| {
            out.push((
                ctx.def.name.clone(),
                ctx.def.params.clone(),
                ctx.def.ret.clone(),
            ))
        });
        out
    }

    #[test]
    fn parses_free_fn_signature() {
        let got = fns("pub fn f(xs: &[f64], n: usize) -> Result<f64, E> { xs[n] }\n");
        assert_eq!(got.len(), 1);
        let (name, params, ret) = &got[0];
        assert_eq!(name, "f");
        assert_eq!(
            params[0],
            Param {
                name: "xs".into(),
                ty: "& [ f64 ]".into()
            }
        );
        assert_eq!(
            params[1],
            Param {
                name: "n".into(),
                ty: "usize".into()
            }
        );
        assert_eq!(ret, "Result < f64 , E >");
    }

    #[test]
    fn fn_arg_generics_do_not_leak_into_return_type() {
        let got = fns("fn g<R: Fn(f64) -> f64>(r: R) -> f64 { r(0.0) }\n");
        assert_eq!(got[0].2, "f64");
        assert_eq!(
            got[0].1,
            vec![Param {
                name: "r".into(),
                ty: "R".into()
            }]
        );
    }

    #[test]
    fn impl_and_trait_context_resolved() {
        let src = "impl Clock for WallClock { fn now(&self) -> u64 { 0 } }\n\
                   impl Grid { pub fn len(&self) -> usize { 0 } }\n\
                   trait Sampler { fn sample(&self); }\n";
        let toks = lex(src).tokens;
        let items = parse(&toks);
        let mut got = Vec::new();
        visit_fns(&items, &mut |ctx| {
            got.push((
                ctx.def.name.clone(),
                ctx.impl_type.map(str::to_owned),
                ctx.trait_name.map(str::to_owned),
            ))
        });
        assert_eq!(
            got,
            [
                ("now".into(), Some("WallClock".into()), Some("Clock".into())),
                ("len".into(), Some("Grid".into()), None),
                ("sample".into(), None, Some("Sampler".into())),
            ]
        );
    }

    #[test]
    fn nested_modules_tracked() {
        let src = "mod outer { mod inner { fn deep() {} } fn shallow() {} }\n";
        let toks = lex(src).tokens;
        let items = parse(&toks);
        let mut got = Vec::new();
        visit_fns(&items, &mut |ctx| {
            got.push((ctx.def.name.clone(), ctx.modules.clone()))
        });
        assert_eq!(
            got,
            [
                ("deep".into(), vec!["outer".into(), "inner".into()]),
                ("shallow".into(), vec!["outer".into()]),
            ]
        );
    }

    #[test]
    fn reconstruction_tiles_mixed_items() {
        let src = "use std::fmt;\n\
                   pub struct S { x: f64 }\n\
                   #[derive(Debug)]\nenum E { A, B }\n\
                   impl S { fn get(&self) -> f64 { self.x } }\n\
                   mod m { pub fn f() {} }\n\
                   const N: usize = 3;\n\
                   macro_rules! mac { () => {} }\n\
                   trait T { fn d(&self) {} }\n\
                   fn tail() -> u8 { 7 }\n";
        let toks = lex(src).tokens;
        let items = parse(&toks);
        let covered = reconstruct(&items);
        assert_eq!(covered, (0..toks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn self_receivers_parsed() {
        let got = fns("impl S { fn a(&mut self, k: u32) {} fn b(self) {} }\n");
        assert_eq!(
            got[0].1[0],
            Param {
                name: "self".into(),
                ty: "& mut self".into()
            }
        );
        assert_eq!(
            got[0].1[1],
            Param {
                name: "k".into(),
                ty: "u32".into()
            }
        );
        assert_eq!(
            got[1].1[0],
            Param {
                name: "self".into(),
                ty: "self".into()
            }
        );
    }

    #[test]
    fn generic_param_names_collected() {
        let src = "fn f<C: SpatialCorrelation, const N: usize, R>(c: C, r: R) {}\n";
        let toks = lex(src).tokens;
        let items = parse(&toks);
        let mut generics = Vec::new();
        visit_fns(&items, &mut |ctx| generics = ctx.def.generics.clone());
        assert_eq!(generics, ["C", "N", "R"]);
    }

    #[test]
    fn where_clause_excluded_from_return_type() {
        let got = fns("fn f<T>(x: T) -> Vec<T> where T: Clone { vec![x] }\n");
        assert_eq!(got[0].2, "Vec < T >");
    }
}
