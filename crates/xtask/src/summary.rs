//! Per-function fact extraction: the bridge between the lossless parse
//! tree ([`crate::parse`]) and the interprocedural rules (L8–L11).
//!
//! A [`FnSummary`] records everything a workspace-level rule needs to know
//! about one function — its resolved-enough signature, every call site,
//! and every panic / index / entropy / accumulation site inside its body —
//! so the rules never touch raw tokens. The summaries are the nodes of the
//! call graph built in [`crate::graph`].

use crate::lexer::{Tok, TokKind};
use crate::parse::{self, FnCtx};
use crate::source::FileKind;

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// How the callee is named at the call site.
    pub kind: CallKind,
    /// Callee name (method or fn name, final path segment).
    pub name: String,
    /// Leading path segments (`a::b::name` → `["a", "b"]`); empty for
    /// bare calls and method calls.
    pub qual: Vec<String>,
    /// 1-based source line of the name token.
    pub line: u32,
    /// Absolute token index of the name token.
    pub tok: usize,
    /// Method-call receiver as a dotted ident chain (`self.inner`,
    /// `fam`); `None` for non-method calls and for receivers that are
    /// themselves calls/index expressions.
    pub recv_path: Option<String>,
    /// Absolute token span over which the call's result stays live:
    /// the binding's lexical region when `let`-bound bare (ended early
    /// by `drop(binding)`), else the rest of the statement. Used to
    /// track guards returned by wrapper functions.
    pub region: (usize, usize),
}

/// The syntactic shape of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)` or `path::to::name(...)` on a lowercase final segment.
    Free,
    /// `.name(...)` method call.
    Method,
    /// `Type::name(...)` — associated call, first qual segment is a type.
    Assoc,
}

/// A potentially panicking expression.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What panics: `unwrap`, `expect`, `panic!`, `unreachable!`,
    /// `todo!`, `unimplemented!`, or `index`.
    pub what: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Absolute token index of the site (the method/macro name token),
    /// so rules can test membership in lexical extents like
    /// `catch_unwind` argument spans.
    pub tok: usize,
}

/// A slice/array index expression `recv[...]`.
#[derive(Debug, Clone)]
pub struct IndexSite {
    /// Best-effort receiver name (last ident before the `[`).
    pub recv: String,
    /// Identifiers appearing inside the brackets.
    pub idents: Vec<String>,
    /// `true` when the brackets contain a `..` range.
    pub has_range: bool,
    /// 1-based source line of the `[`.
    pub line: u32,
    /// 1-based source column of the `[`.
    pub col: u32,
    /// Absolute token index of the `[`.
    pub tok: usize,
}

/// A bare float accumulation `acc += term` inside a loop body.
#[derive(Debug, Clone)]
pub struct AccumSite {
    /// The accumulator local's name.
    pub var: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A guard acquisition: argless `.lock()`, `.read()`, or `.write()`
/// on a pure dotted-path receiver.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Dotted receiver path (`self.inner`, `m`).
    pub path: String,
    /// `lock`, `read`, or `write`.
    pub method: String,
    /// 1-based source line of the method name.
    pub line: u32,
    /// 1-based source column of the method name.
    pub col: u32,
    /// Absolute token index of the method name.
    pub tok: usize,
    /// Local the guard is `let`-bound to, when it is.
    pub binding: Option<String>,
    /// Absolute token span over which the guard is live: the binding's
    /// lexical region (truncated at the first `drop(binding)`) when
    /// bound, else the rest of the acquiring statement.
    pub region: (usize, usize),
}

/// A condvar wait: `recv.wait(guard)` / `wait_timeout` / `wait_while`
/// / `wait_timeout_while` on a pure dotted-path receiver.
#[derive(Debug, Clone)]
pub struct WaitSite {
    /// Dotted receiver path of the condvar (`self.landed`).
    pub cond_path: String,
    /// The wait method name.
    pub method: String,
    /// `false` for argless `.wait()` (e.g. `Child::wait`), which is
    /// never a condvar wait.
    pub has_args: bool,
    /// `true` when the call sits inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
    /// 1-based source line of the method name.
    pub line: u32,
    /// 1-based source column of the method name.
    pub col: u32,
}

/// A channel endpoint operation: `.send(..)` / `.recv()` /
/// `.try_recv()` / `.recv_timeout(..)` on a pure dotted-path receiver.
#[derive(Debug, Clone)]
pub struct ChannelSite {
    /// Dotted receiver path.
    pub path: String,
    /// The endpoint method name.
    pub method: String,
    /// 1-based source line.
    pub line: u32,
}

/// An ambient entropy / wall-clock read.
#[derive(Debug, Clone)]
pub struct EntropySite {
    /// Human-readable source description (`rand::thread_rng()`, …).
    pub what: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// `true` when the read is a wall-clock read (eligible for the obs
    /// `impl Clock` carve-out).
    pub is_clock: bool,
}

/// Everything the interprocedural rules know about one function.
#[derive(Debug)]
pub struct FnSummary {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` self type, when a method.
    pub impl_type: Option<String>,
    /// Enclosing trait: `impl Trait for` or `trait` definition name.
    pub trait_name: Option<String>,
    /// Inline-module path from the file root.
    pub modules: Vec<String>,
    /// `true` for any `pub` visibility.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `true` when the fn sits inside a `#[cfg(test)]` extent.
    pub in_test: bool,
    /// `true` when the fn sits inside a `#[cfg(feature = "parallel")]`
    /// extent or takes a `Parallelism` parameter.
    pub parallel_gated: bool,
    /// `true` when any parameter type mentions `Parallelism`.
    pub takes_parallelism: bool,
    /// Declared generic parameter names.
    pub generics: Vec<String>,
    /// `(name, normalized type)` parameter pairs.
    pub params: Vec<(String, String)>,
    /// Normalized return type (empty for unit).
    pub ret: String,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Panic sites (`unwrap`/`expect`/panic-family macros).
    pub panics: Vec<PanicSite>,
    /// Index expressions.
    pub indexes: Vec<IndexSite>,
    /// Bare float accumulation loops.
    pub accums: Vec<AccumSite>,
    /// Ambient entropy / clock reads.
    pub entropy: Vec<EntropySite>,
    /// `true` when the body invokes any `assert!`-family macro — treated
    /// as documented bounds discipline by L9.
    pub has_assert: bool,
    /// Loop binders provably tied to index ranges: `for i in 0..n` /
    /// `.enumerate()` pattern idents.
    pub bounded_binders: Vec<String>,
    /// Absolute token span of the body, when present.
    pub body_span: Option<(usize, usize)>,
    /// `true` when the body contains any `for`/`while`/`loop`.
    pub has_loop: bool,
    /// Guard acquisitions (mutex/rwlock) with liveness regions.
    pub locks: Vec<LockSite>,
    /// Condvar waits.
    pub waits: Vec<WaitSite>,
    /// Channel sends/receives.
    pub channels: Vec<ChannelSite>,
    /// Absolute token spans of `catch_unwind(...)` argument lists: the
    /// lexical extents whose panics are caught locally instead of
    /// unwinding the caller (supervisor boundaries).
    pub catch_spans: Vec<(usize, usize)>,
    /// `true` when the body calls `resume_unwind` — the fn re-raises
    /// caught payloads, so its `catch_spans` are passthroughs, not
    /// panic sinks.
    pub has_resume_unwind: bool,
}

impl FnSummary {
    /// Stable display path for diagnostics: `module::Type::name`.
    pub fn qual_name(&self) -> String {
        let mut s = String::new();
        for m in &self.modules {
            s.push_str(m);
            s.push_str("::");
        }
        if let Some(t) = &self.impl_type {
            s.push_str(t);
            s.push_str("::");
        }
        s.push_str(&self.name);
        s
    }
}

/// Extracts summaries for every fn in a parsed file.
pub fn summarize(
    tokens: &[Tok],
    items: &[parse::Item],
    kind: FileKind,
    in_test: &dyn Fn(u32) -> bool,
    in_gate: &dyn Fn(u32) -> bool,
) -> Vec<FnSummary> {
    let mut out = Vec::new();
    parse::visit_fns(items, &mut |ctx: FnCtx<'_>| {
        let def = ctx.def;
        let takes_parallelism = def.params.iter().any(|p| p.ty.contains("Parallelism"));
        let mut s = FnSummary {
            name: def.name.clone(),
            impl_type: ctx.impl_type.map(str::to_owned),
            trait_name: ctx.trait_name.map(str::to_owned),
            modules: ctx.modules.clone(),
            is_pub: def.is_pub,
            line: def.line,
            in_test: kind != FileKind::Library || in_test(def.line),
            parallel_gated: takes_parallelism || in_gate(def.line),
            takes_parallelism,
            generics: def.generics.clone(),
            params: def
                .params
                .iter()
                .map(|p| (p.name.clone(), p.ty.clone()))
                .collect(),
            ret: def.ret.clone(),
            calls: Vec::new(),
            panics: Vec::new(),
            indexes: Vec::new(),
            accums: Vec::new(),
            entropy: Vec::new(),
            has_assert: false,
            bounded_binders: Vec::new(),
            body_span: def.body_span,
            has_loop: false,
            locks: Vec::new(),
            waits: Vec::new(),
            channels: Vec::new(),
            catch_spans: Vec::new(),
            has_resume_unwind: false,
        };
        if let Some((a, b)) = def.body_span {
            scan_body(tokens, a, b, &mut s);
            s.catch_spans = catch_spans(tokens, b, &s);
            s.has_resume_unwind = s.calls.iter().any(|c| c.name == "resume_unwind");
        }
        out.push(s);
    });
    out
}

/// Names that start control-flow constructs, never calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "move",
    "in", "as", "fn", "impl", "where", "unsafe", "mut", "ref", "dyn", "box", "await", "async",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn is_assert_macro(name: &str) -> bool {
    name == "assert"
        || name == "assert_eq"
        || name == "assert_ne"
        || name.starts_with("debug_assert")
}

/// Walks a fn body token span and fills the site lists.
fn scan_body(toks: &[Tok], start: usize, end: usize, s: &mut FnSummary) {
    // Float-zero locals and loop spans for accumulation detection,
    // restricted to this body.
    let body = &toks[start..end];
    let float_locals = float_zero_locals(body);
    let loops = loop_spans(body);
    s.has_loop = !loops.is_empty();

    let mut i = start;
    while i < end {
        let t = &toks[i];
        // Method calls and panic methods: `.name(` / `.name::<`.
        if t.is_punct('.') {
            if let Some(m) = method_name_at(toks, i, end) {
                let name = toks[m].text.clone();
                if name == "unwrap" || name == "expect" {
                    s.panics.push(PanicSite {
                        what: name.clone(),
                        line: toks[m].line,
                        col: toks[m].col,
                        tok: m,
                    });
                }
                let recv_path = receiver_path(toks, i, start);
                let region = live_region(toks, m, start, end);
                let argless = toks.get(m + 1).is_some_and(|u| u.is_punct('('))
                    && toks.get(m + 2).is_some_and(|u| u.is_punct(')'));
                if let Some(path) = &recv_path {
                    if argless && matches!(name.as_str(), "lock" | "read" | "write") {
                        s.locks.push(LockSite {
                            path: path.clone(),
                            method: name.clone(),
                            line: toks[m].line,
                            col: toks[m].col,
                            tok: m,
                            binding: let_bound_guard(toks, m, start, end),
                            region,
                        });
                    }
                    if matches!(
                        name.as_str(),
                        "wait" | "wait_timeout" | "wait_while" | "wait_timeout_while"
                    ) {
                        let rel = m - start;
                        s.waits.push(WaitSite {
                            cond_path: path.clone(),
                            method: name.clone(),
                            has_args: !argless,
                            in_loop: loops.iter().any(|&(a, b)| a < rel && rel < b),
                            line: toks[m].line,
                            col: toks[m].col,
                        });
                    }
                    if matches!(name.as_str(), "send" | "recv" | "try_recv" | "recv_timeout") {
                        s.channels.push(ChannelSite {
                            path: path.clone(),
                            method: name.clone(),
                            line: toks[m].line,
                        });
                    }
                }
                s.calls.push(CallSite {
                    kind: CallKind::Method,
                    name,
                    qual: Vec::new(),
                    line: toks[m].line,
                    tok: m,
                    recv_path,
                    region,
                });
                i = m + 1;
                continue;
            }
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            // Macros: `name ! ( | [ | {`.
            if toks
                .get(i + 1)
                .filter(|_| i + 1 < end)
                .is_some_and(|u| u.is_punct('!'))
                && toks
                    .get(i + 2)
                    .filter(|_| i + 2 < end)
                    .is_some_and(|u| u.is_punct('(') || u.is_punct('[') || u.is_punct('{'))
            {
                if PANIC_MACROS.contains(&t.text.as_str()) {
                    s.panics.push(PanicSite {
                        what: format!("{}!", t.text),
                        line: t.line,
                        col: t.col,
                        tok: i,
                    });
                } else if is_assert_macro(&t.text) {
                    s.has_assert = true;
                }
                i += 2;
                continue;
            }
            // Bounded binders: `for <pat> in <expr>` with `..`/`enumerate`.
            if t.is_ident("for") {
                collect_bounded_binders(toks, i, end, &mut s.bounded_binders);
            }
            // Entropy sources (L2's set).
            if let Some((what, is_clock)) = entropy_at(toks, i) {
                s.entropy.push(EntropySite {
                    what: what.to_owned(),
                    line: t.line,
                    col: t.col,
                    is_clock,
                });
            }
            // Calls: `path :: segs :: name (` or bare `name (`.
            if !(KEYWORDS.contains(&t.text.as_str()) || (i > start && toks[i - 1].is_punct('.'))) {
                let path_start = i;
                let mut j = i;
                while j + 3 < end
                    && toks[j + 1].is_punct(':')
                    && toks[j + 2].is_punct(':')
                    && toks[j + 3].kind == TokKind::Ident
                {
                    j += 3;
                }
                // Entropy sources named through a path (`rand::thread_rng`)
                // would otherwise be consumed by the path walk below.
                if j != i {
                    if let Some((what, is_clock)) = entropy_at(toks, j) {
                        s.entropy.push(EntropySite {
                            what: what.to_owned(),
                            line: toks[j].line,
                            col: toks[j].col,
                            is_clock,
                        });
                    }
                }
                let name_tok = &toks[j];
                let callable = toks
                    .get(j + 1)
                    .filter(|_| j + 1 < end)
                    .is_some_and(|u| u.is_punct('('))
                    && !toks.get(j + 1).is_some_and(|u| u.is_punct('!'));
                let is_ctor = name_tok
                    .text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase());
                if callable && !is_ctor && !KEYWORDS.contains(&name_tok.text.as_str()) {
                    let qual: Vec<String> = toks[path_start..j]
                        .iter()
                        .filter(|u| u.kind == TokKind::Ident)
                        .map(|u| u.text.clone())
                        .collect();
                    let kind = if qual
                        .last()
                        .is_some_and(|q| q.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
                    {
                        CallKind::Assoc
                    } else {
                        CallKind::Free
                    };
                    s.calls.push(CallSite {
                        kind,
                        name: name_tok.text.clone(),
                        qual,
                        line: name_tok.line,
                        tok: j,
                        recv_path: None,
                        region: live_region(toks, j, start, end),
                    });
                }
                // Accumulation: `acc += ...` inside a loop.
                if float_locals.contains(&t.text)
                    && toks
                        .get(i + 1)
                        .filter(|_| i + 1 < end)
                        .is_some_and(|u| u.is_punct('+'))
                    && toks
                        .get(i + 2)
                        .filter(|_| i + 2 < end)
                        .is_some_and(|u| u.is_punct('='))
                    && !(i > start && toks[i - 1].is_punct('.'))
                {
                    let rel = i - start;
                    if loops.iter().any(|&(a, b)| a < rel && rel < b) {
                        s.accums.push(AccumSite {
                            var: t.text.clone(),
                            line: t.line,
                            col: t.col,
                        });
                    }
                }
                i = j + 1;
                continue;
            }
        }
        // Index expressions: `recv [ ... ]` where recv ends with an ident,
        // `)`, or `]` (excludes array types/literals, slice patterns,
        // attributes, and `vec![...]`).
        if t.is_punct('[') && i > start {
            let prev = &toks[i - 1];
            let is_index = (prev.kind == TokKind::Ident && !KEYWORDS.contains(&prev.text.as_str()))
                || prev.is_punct(')')
                || prev.is_punct(']');
            if is_index {
                let close = skip_square(toks, i, end);
                let inner = &toks[i + 1..close.saturating_sub(1).max(i + 1)];
                let idents: Vec<String> = inner
                    .iter()
                    .filter(|u| u.kind == TokKind::Ident && !KEYWORDS.contains(&u.text.as_str()))
                    .map(|u| u.text.clone())
                    .collect();
                let has_range = inner
                    .windows(2)
                    .any(|w| w[0].is_punct('.') && w[1].is_punct('.'));
                s.indexes.push(IndexSite {
                    recv: if prev.kind == TokKind::Ident {
                        prev.text.clone()
                    } else {
                        String::new()
                    },
                    idents,
                    has_range,
                    line: t.line,
                    col: t.col,
                    tok: i,
                });
                // Do not skip the contents: nested calls/indexes inside the
                // brackets must still be scanned.
            }
        }
        i += 1;
    }
}

/// Absolute token spans of the argument lists of every `catch_unwind`
/// call in the summarized body: `(open paren, matching close paren)`.
/// Panic and call sites inside these extents are caught locally — the
/// supervisor-boundary escape L9 honors (unless the same fn re-raises
/// with `resume_unwind`).
fn catch_spans(toks: &[Tok], body_end: usize, s: &FnSummary) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for call in &s.calls {
        if call.name != "catch_unwind" {
            continue;
        }
        // The argument list opens at the first `(` after the name token
        // (immediately, or past a `::<...>` turbofish).
        let Some(open) = (call.tok + 1..body_end).find(|&k| toks[k].is_punct('(')) else {
            continue;
        };
        let mut depth = 0usize;
        for (k, tok) in toks.iter().enumerate().take(body_end).skip(open) {
            if tok.is_punct('(') {
                depth += 1;
            } else if tok.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    spans.push((open, k));
                    break;
                }
            }
        }
    }
    spans
}

/// `.name(` / `.name::<` at `i` (a `.`); returns the name token index.
fn method_name_at(toks: &[Tok], i: usize, end: usize) -> Option<usize> {
    let name = toks.get(i + 1).filter(|_| i + 1 < end)?;
    let next = toks.get(i + 2).filter(|_| i + 2 < end)?;
    if name.kind == TokKind::Ident
        && (next.is_punct('(')
            || (next.is_punct(':')
                && toks
                    .get(i + 3)
                    .filter(|_| i + 3 < end)
                    .is_some_and(|u| u.is_punct(':'))))
    {
        Some(i + 1)
    } else {
        None
    }
}

/// The L2 entropy-source set, detected at token `i`.
fn entropy_at(toks: &[Tok], i: usize) -> Option<(&'static str, bool)> {
    let t = &toks[i];
    if t.is_ident("thread_rng") {
        return Some(("rand::thread_rng()", false));
    }
    if t.is_ident("from_entropy") {
        return Some(("SeedableRng::from_entropy()", false));
    }
    if path_pair(toks, i, "rand", "random") {
        return Some(("rand::random()", false));
    }
    if path_pair(toks, i, "SystemTime", "now") || path_pair(toks, i, "Instant", "now") {
        return Some(("wall-clock read", true));
    }
    None
}

fn path_pair(toks: &[Tok], i: usize, a: &str, b: &str) -> bool {
    toks.get(i).is_some_and(|t| t.is_ident(a))
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(b))
}

/// Pattern idents of `for <pat> in <expr> {` loops whose iterated
/// expression is a literal range (`..`) or an `enumerate()` chain —
/// binders the L9 heuristics treat as bounds-disciplined.
fn collect_bounded_binders(toks: &[Tok], for_at: usize, end: usize, out: &mut Vec<String>) {
    let mut j = for_at + 1;
    let mut pat = Vec::new();
    let mut paren = 0isize;
    while j < end {
        let u = &toks[j];
        if u.is_punct('(') {
            paren += 1;
        } else if u.is_punct(')') {
            paren -= 1;
        } else if u.is_ident("in") && paren == 0 {
            break;
        } else if u.kind == TokKind::Ident && !u.is_ident("mut") {
            pat.push(u.text.clone());
        } else if u.is_punct('{') || u.is_punct(';') {
            return; // `impl Trait for` or malformed
        }
        j += 1;
    }
    if j >= end {
        return;
    }
    // Expression runs from after `in` to the body `{` at depth 0.
    let expr_start = j + 1;
    let mut k = expr_start;
    let mut depth = 0isize;
    let mut bounded = false;
    while k < end {
        let u = &toks[k];
        if u.is_punct('(') || u.is_punct('[') {
            depth += 1;
        } else if u.is_punct(')') || u.is_punct(']') {
            depth -= 1;
        } else if u.is_punct('{') && depth == 0 {
            break;
        }
        if k + 1 < end && u.is_punct('.') && toks[k + 1].is_punct('.') {
            bounded = true;
        }
        if u.is_ident("enumerate") {
            bounded = true;
        }
        k += 1;
    }
    if bounded {
        out.extend(pat);
    }
}

/// Method-call receiver as a pure dotted ident chain, walking backward
/// from the `.` at `dot`. `None` when the receiver involves a call or
/// index result (`foo().x`, `xs[i].y`), a `?`, or a literal — such
/// receivers cannot be mapped to a stable lock identity.
fn receiver_path(toks: &[Tok], dot: usize, start: usize) -> Option<String> {
    let mut segs: Vec<&str> = Vec::new();
    let mut j = dot;
    loop {
        if j <= start {
            return None;
        }
        let prev = &toks[j - 1];
        if prev.kind == TokKind::Ident && !KEYWORDS.contains(&prev.text.as_str()) {
            segs.push(&prev.text);
            if j - 1 > start && toks[j - 2].is_punct('.') {
                j -= 2;
                continue;
            }
            break;
        }
        return None;
    }
    segs.reverse();
    Some(segs.join("."))
}

/// Token index of the start of the statement containing `site`:
/// just past the previous `;`, past a block-closing `}`, or past the
/// enclosing block/group opener.
fn stmt_start(toks: &[Tok], site: usize, start: usize) -> usize {
    let mut depth = 0usize;
    let mut j = site;
    while j > start {
        let t = &toks[j - 1];
        if t.is_punct(';') && depth == 0 {
            return j;
        }
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            if t.is_punct('}') && depth == 0 {
                return j;
            }
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        }
        j -= 1;
    }
    j
}

/// Token index of the end of the statement containing `site`: the next
/// `;` at relative depth 0 (balanced groups skipped), or the closer of
/// the enclosing group for tail expressions.
fn stmt_end(toks: &[Tok], site: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = site;
    while j < end {
        let t = &toks[j];
        if t.is_punct(';') && depth == 0 {
            return j;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        }
        j += 1;
    }
    end
}

/// Token index of the `}` closing the block that contains `from`.
fn block_end(toks: &[Tok], from: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = from;
    while j < end {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        }
        j += 1;
    }
    end
}

/// When the statement containing `site` is `let [mut] NAME [: T] =`
/// and the call at `site` is chained only through `unwrap`-family
/// adapters (so the binding really holds the call's result), returns
/// the binding name.
fn let_bound_guard(toks: &[Tok], site: usize, start: usize, end: usize) -> Option<String> {
    let ss = stmt_start(toks, site, start);
    if !toks.get(ss).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut j = ss + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = toks.get(j).filter(|t| t.kind == TokKind::Ident)?;
    // Only the bare `let name [: T] = expr` shape; tuple/struct patterns
    // are never guard bindings in this workspace.
    let after = toks.get(j + 1)?;
    if !(after.is_punct('=') || after.is_punct(':')) {
        return None;
    }
    // The call's value must reach the binding undisturbed: only
    // unwrap-family method chaining after the call, no field walks or
    // other adapters (`let n = m.lock().unwrap().len()` binds a usize,
    // not the guard).
    let se = stmt_end(toks, site, end);
    let mut k = site + 1;
    let mut depth = 0usize;
    while k < se {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct('.') {
            let chained = toks.get(k + 1).map(|u| u.text.as_str()).unwrap_or("");
            if !matches!(chained, "unwrap" | "expect" | "unwrap_or_else") {
                return None;
            }
        } else if depth == 0 && t.is_punct('?') {
            return None;
        }
        k += 1;
    }
    Some(name.text.clone())
}

/// The absolute token span over which the value produced at `site`
/// stays live (exclusive of `site` itself): for a bare `let`-bound
/// result, to the enclosing block's `}` — truncated at the first
/// `drop(binding)`; otherwise to the end of the statement.
fn live_region(toks: &[Tok], site: usize, start: usize, end: usize) -> (usize, usize) {
    let se = stmt_end(toks, site, end);
    if let Some(binding) = let_bound_guard(toks, site, start, end) {
        let be = block_end(toks, se, end);
        let mut j = se;
        while j + 3 < be {
            if toks[j].is_ident("drop")
                && toks[j + 1].is_punct('(')
                && toks[j + 2].is_ident(&binding)
                && toks[j + 3].is_punct(')')
            {
                return (site, j);
            }
            j += 1;
        }
        (site, be)
    } else {
        (site, se)
    }
}

/// Index just past a balanced `[...]`, bounded by `end`.
fn skip_square(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        if toks[i].is_punct('[') {
            depth += 1;
        } else if toks[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Names of locals initialized as floating-point zeros within a body.
fn float_zero_locals(toks: &[Tok]) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j) else { continue };
        if name.kind != TokKind::Ident {
            continue;
        }
        let mut k = j + 1;
        let mut annotated_float = false;
        if toks.get(k).is_some_and(|t| t.is_punct(':')) {
            annotated_float = toks
                .get(k + 1)
                .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"));
            k += 2;
        }
        if !toks.get(k).is_some_and(|t| t.is_punct('=')) {
            continue;
        }
        let Some(init) = toks.get(k + 1) else {
            continue;
        };
        let float_literal = init.kind == TokKind::Literal
            && (init.text.contains('.')
                || init.text.ends_with("f64")
                || init.text.ends_with("f32"));
        if (float_literal || (annotated_float && init.kind == TokKind::Literal))
            && toks.get(k + 2).is_some_and(|t| t.is_punct(';'))
        {
            names.insert(name.text.clone());
        }
    }
    names
}

/// Token spans (relative, exclusive end) of `for`/`while`/`loop` bodies.
fn loop_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("for") || t.is_ident("while") || t.is_ident("loop")) {
            continue;
        }
        let mut j = i + 1;
        let mut paren = 0isize;
        let mut saw_in = false;
        while j < toks.len() {
            let u = &toks[j];
            if u.is_punct('(') {
                paren += 1;
            } else if u.is_punct(')') {
                paren -= 1;
            } else if u.is_ident("in") && paren == 0 {
                saw_in = true;
            } else if u.is_punct('{') && paren == 0 {
                if t.is_ident("for") && !saw_in {
                    break;
                }
                spans.push((j, parse::skip_braces(toks, j, toks.len())));
                break;
            } else if u.is_punct(';') && paren == 0 {
                break;
            }
            j += 1;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn summaries(src: &str) -> Vec<FnSummary> {
        let toks = lex(src).tokens;
        let items = parse(&toks);
        summarize(&toks, &items, FileKind::Library, &|_| false, &|_| false)
    }

    #[test]
    fn calls_classified_by_shape() {
        let src = "fn f() { helper(); stats::kahan_sum(&[]); KahanSum::new(); x.merge(y); }\n";
        let s = &summaries(src)[0];
        let kinds: Vec<(CallKind, &str)> =
            s.calls.iter().map(|c| (c.kind, c.name.as_str())).collect();
        assert!(kinds.contains(&(CallKind::Free, "helper")), "{kinds:?}");
        assert!(kinds.contains(&(CallKind::Free, "kahan_sum")), "{kinds:?}");
        assert!(kinds.contains(&(CallKind::Assoc, "new")), "{kinds:?}");
        assert!(kinds.contains(&(CallKind::Method, "merge")), "{kinds:?}");
    }

    #[test]
    fn struct_literals_not_calls() {
        let src = "fn f() -> Tiling { Tiling { rows: 1, far_cutoff: None } }\n";
        let s = &summaries(src)[0];
        assert!(s.calls.is_empty(), "{:?}", s.calls);
    }

    #[test]
    fn panic_sites_found() {
        let src =
            "fn f(x: Option<u8>) -> u8 { let v = x.unwrap(); if v > 9 { panic!(\"no\") } v }\n";
        let s = &summaries(src)[0];
        let whats: Vec<&str> = s.panics.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(whats, ["unwrap", "panic!"]);
    }

    #[test]
    fn index_sites_and_bounded_binders() {
        let src = "fn f(xs: &[f64], k: usize) -> f64 {\n\
                     let mut t = 0.0f64;\n\
                     for i in 0..xs.len() { t = t.max(xs[i]); }\n\
                     xs[k] + xs[0]\n\
                   }\n";
        let s = &summaries(src)[0];
        assert_eq!(s.indexes.len(), 3, "{:?}", s.indexes);
        assert!(s.bounded_binders.contains(&"i".to_string()));
        assert_eq!(s.indexes[1].idents, ["k"]);
        assert!(s.indexes[2].idents.is_empty());
    }

    #[test]
    fn array_types_and_macros_not_indexes() {
        let src = "fn f() -> [f64; 2] { let v = vec![1.0]; let [a, b] = [v[0], 2.0]; [a, b] }\n";
        let s = &summaries(src)[0];
        assert_eq!(s.indexes.len(), 1, "{:?}", s.indexes);
        assert_eq!(s.indexes[0].recv, "v");
    }

    #[test]
    fn accumulation_inside_loop_found() {
        let src = "fn f(xs: &[f64]) -> f64 {\n\
                     let mut acc = 0.0;\n\
                     for x in xs { acc += x; }\n\
                     acc\n\
                   }\n";
        let s = &summaries(src)[0];
        assert_eq!(s.accums.len(), 1);
        assert_eq!(s.accums[0].var, "acc");
    }

    #[test]
    fn entropy_and_assert_detected() {
        let src = "fn f(n: usize) -> u64 {\n\
                     assert!(n > 0);\n\
                     let r = rand::thread_rng();\n\
                     let t = Instant::now();\n\
                     0\n\
                   }\n";
        let s = &summaries(src)[0];
        assert!(s.has_assert);
        assert_eq!(s.entropy.len(), 2, "{:?}", s.entropy);
        assert!(!s.entropy[0].is_clock);
        assert!(s.entropy[1].is_clock);
    }

    #[test]
    fn parallelism_param_marks_gated() {
        let src = "pub fn run_with(n: usize, par: Parallelism) -> f64 { n as f64 }\n";
        let s = &summaries(src)[0];
        assert!(s.takes_parallelism);
        assert!(s.parallel_gated);
    }

    #[test]
    fn lock_site_region_ends_at_drop() {
        let src = "impl Fam {\n\
                     fn get(&self) -> u64 {\n\
                       let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);\n\
                       inner.count += 1;\n\
                       drop(inner);\n\
                       self.compute();\n\
                       0\n\
                     }\n\
                   }\n";
        let s = &summaries(src)[0];
        assert_eq!(s.locks.len(), 1, "{:?}", s.locks);
        let lock = &s.locks[0];
        assert_eq!(lock.path, "self.inner");
        assert_eq!(lock.binding.as_deref(), Some("inner"));
        // The `compute` call must fall OUTSIDE the guard region.
        let compute = s.calls.iter().find(|c| c.name == "compute").unwrap();
        assert!(
            !(lock.region.0 < compute.tok && compute.tok < lock.region.1),
            "compute at {} must be outside region {:?}",
            compute.tok,
            lock.region
        );
        // The `+= 1` statement sits inside it.
        assert!(lock.region.1 > lock.region.0);
    }

    #[test]
    fn unbound_lock_region_covers_statement() {
        let src = "impl S {\n\
                     fn bump(&self) {\n\
                       self.state.lock().unwrap().push(1);\n\
                       self.after();\n\
                     }\n\
                   }\n";
        let s = &summaries(src)[0];
        assert_eq!(s.locks.len(), 1);
        let lock = &s.locks[0];
        assert!(lock.binding.is_none());
        let push = s.calls.iter().find(|c| c.name == "push").unwrap();
        let after = s.calls.iter().find(|c| c.name == "after").unwrap();
        assert!(lock.region.0 < push.tok && push.tok < lock.region.1);
        assert!(after.tok > lock.region.1);
    }

    #[test]
    fn guard_in_inner_block_ends_at_block_close() {
        let src = "impl O {\n\
                     fn write(&self) {\n\
                       let line = {\n\
                         let mut state = self.state.lock().unwrap();\n\
                         state.take()\n\
                       };\n\
                       self.emit(line);\n\
                     }\n\
                   }\n";
        let s = &summaries(src)[0];
        assert_eq!(s.locks.len(), 1);
        let lock = &s.locks[0];
        assert_eq!(lock.binding.as_deref(), Some("state"));
        let emit = s.calls.iter().find(|c| c.name == "emit").unwrap();
        assert!(
            emit.tok > lock.region.1,
            "emit at {} must be outside region {:?}",
            emit.tok,
            lock.region
        );
        let take = s.calls.iter().find(|c| c.name == "take").unwrap();
        assert!(lock.region.0 < take.tok && take.tok < lock.region.1);
    }

    #[test]
    fn consumed_guard_is_not_a_binding() {
        let src = "impl S { fn len(&self) -> usize { let n = self.m.lock().unwrap().len(); n } }\n";
        let s = &summaries(src)[0];
        assert_eq!(s.locks.len(), 1);
        // `n` holds a usize, not the guard: temporary region only.
        assert!(s.locks[0].binding.is_none());
    }

    #[test]
    fn impure_receiver_yields_no_lock_site() {
        let src = "fn f(v: &[M]) { v[0].lock().unwrap(); shard().lock().unwrap(); }\n";
        let s = &summaries(src)[0];
        assert!(s.locks.is_empty(), "{:?}", s.locks);
        let lock_call = s.calls.iter().find(|c| c.name == "lock").unwrap();
        assert!(lock_call.recv_path.is_none());
    }

    #[test]
    fn wait_sites_and_loop_detection() {
        let src = "impl Q {\n\
                     fn pop(&self) {\n\
                       let mut g = self.state.lock().unwrap();\n\
                       while g.is_empty() {\n\
                         g = self.ready.wait(g).unwrap();\n\
                       }\n\
                       let other = self.cv.wait(g).unwrap();\n\
                       drop(other);\n\
                       self.child.wait();\n\
                     }\n\
                   }\n";
        let s = &summaries(src)[0];
        assert_eq!(s.waits.len(), 3, "{:?}", s.waits);
        assert!(s.waits[0].in_loop && s.waits[0].has_args);
        assert_eq!(s.waits[0].cond_path, "self.ready");
        assert!(!s.waits[1].in_loop && s.waits[1].has_args);
        assert!(!s.waits[2].has_args, "argless Child::wait");
    }

    #[test]
    fn channel_sites_recorded() {
        let src =
            "fn f(tx: Sender<u8>, rx: Receiver<u8>) { tx.send(1).unwrap(); rx.recv().unwrap(); }\n";
        let s = &summaries(src)[0];
        let ops: Vec<(&str, &str)> = s
            .channels
            .iter()
            .map(|c| (c.path.as_str(), c.method.as_str()))
            .collect();
        assert_eq!(ops, [("tx", "send"), ("rx", "recv")]);
    }

    #[test]
    fn method_receiver_paths_and_wrapper_region() {
        let src = "impl W {\n\
                     fn add(&self) {\n\
                       let g = self.shard();\n\
                       g.bump();\n\
                     }\n\
                     fn touch(&self) { self.shard().bump(); }\n\
                   }\n";
        let s = &summaries(src)[0];
        let shard = s.calls.iter().find(|c| c.name == "shard").unwrap();
        assert_eq!(shard.recv_path.as_deref(), Some("self"));
        let bump = s.calls.iter().find(|c| c.name == "bump").unwrap();
        assert!(
            shard.region.0 < bump.tok && bump.tok < shard.region.1,
            "bump at {} inside wrapper region {:?}",
            bump.tok,
            shard.region
        );
        assert!(!s.has_loop);
        // Inline wrapper use: region covers the statement.
        let t = &summaries(src)[1];
        let shard2 = t.calls.iter().find(|c| c.name == "shard").unwrap();
        let bump2 = t.calls.iter().find(|c| c.name == "bump").unwrap();
        assert!(shard2.region.0 < bump2.tok && bump2.tok < shard2.region.1);
    }

    #[test]
    fn enumerate_binders_bounded() {
        let src = "fn f(xs: &[f64]) -> f64 {\n\
                     let mut m = 1.0f64;\n\
                     for (i, x) in xs.iter().enumerate() { m = m.max(xs[i] * x); }\n\
                     m\n\
                   }\n";
        let s = &summaries(src)[0];
        assert!(
            s.bounded_binders.contains(&"i".to_string()),
            "{:?}",
            s.bounded_binders
        );
    }
}
