//! Synchronization facts over the call graph: which locks each fn
//! acquires (directly, through guard-returning wrappers, or
//! transitively), which guard regions are live at a token, and the
//! workspace lock-acquisition graph. The concurrency rules (L12–L14)
//! are thin queries over these facts; L15 reads wait sites straight
//! off the summaries.
//!
//! Lock identities are syntactic, field-granular names:
//!
//! - `self.field.lock()` inside `impl Type` → `Type::field` — every
//!   method of the type agrees on the name, so nesting across methods
//!   composes;
//! - a lock rooted at a parameter names the parameter's lock type
//!   (`Mutex<Shard>` from `m: &Mutex<Shard>`) — wrappers like
//!   `Shard::lock(m)` thereby share one identity across call sites;
//! - anything else (a local) is scoped to the owning fn
//!   (`module::Type::fn::path`), so distinct locals never unify.
//!
//! Call edges are filtered before they feed the fixpoints: method
//! calls must have a pure dotted receiver and a name outside the
//! container/iterator/sync-primitive vocabulary ("strict" edges).
//! "Heavy" edges additionally drop the `Recorder` vocabulary
//! (`add`/`record`/`merge`/`span_ns`) so instrumentation under a lock
//! does not count as kernel work, while L12/L14 still see the lock the
//! recorder itself takes.

use crate::graph::CallGraph;
use crate::source::SourceFile;
use crate::summary::{CallKind, CallSite, FnSummary};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names that never count as sync-relevant call edges:
/// container/iterator/option vocabulary plus the sync primitives
/// themselves (a `.lock()` site is a [`crate::summary::LockSite`], not
/// an edge to some workspace fn that happens to be called `lock`).
const STRICT_METHOD_EXCLUDE: &[&str] = &[
    // containers and iterators
    "insert",
    "remove",
    "get",
    "get_mut",
    "entry",
    "or_insert",
    "or_default",
    "push",
    "push_back",
    "pop",
    "pop_front",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "keys",
    "values",
    "clone",
    "extend",
    "drain",
    "clear",
    "take",
    "replace",
    "next",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "filter",
    "fold",
    "collect",
    "to_owned",
    "to_string",
    "as_ref",
    "as_str",
    "as_bytes",
    "fetch_add",
    "load",
    "store",
    "min",
    "max",
    "expect",
    "unwrap",
    // sync primitives
    "lock",
    "read",
    "write",
    "try_lock",
    "try_read",
    "try_write",
    "wait",
    "wait_while",
    "wait_timeout",
    "wait_timeout_while",
    "notify_one",
    "notify_all",
];

/// Extra method names dropped from *heavy* edges only: the `Recorder`
/// vocabulary. `ins.add(...)` under a guard is instrumentation, not
/// blocking kernel work — but the shard lock it takes must still feed
/// the lock graph, so strict edges keep these names.
const HEAVY_METHOD_EXCLUDE: &[&str] = &["add", "record", "merge", "span_ns"];

/// Files whose loop-bearing fns count as kernel work for L13: cell
/// characterization, the estimation kernels, FFT, Monte-Carlo
/// sampling, and grid simulation.
const KERNEL_PREFIXES: &[&str] = &[
    "crates/cells/src/charax.rs",
    "crates/core/src/estimator/",
    "crates/numeric/src/fft.rs",
    "crates/montecarlo/src/",
    "crates/sim/src/",
];

/// Call names that block the calling thread outright (I/O, sleeps,
/// joins, channel receives). `Condvar::wait` is deliberately absent:
/// waiting releases the guard, and L15 owns wait-site discipline.
pub const BLOCKING_CALLS: &[&str] = &[
    "accept",
    "connect",
    "read_line",
    "read_to_end",
    "read_to_string",
    "fill_buf",
    "read_exact",
    "write_all",
    "flush",
    "sleep",
    "join",
    "recv",
    "recv_timeout",
];

/// `true` when a call site may carry sync facts between fns.
fn strict_call(call: &CallSite) -> bool {
    match call.kind {
        CallKind::Method => {
            call.recv_path.is_some() && !STRICT_METHOD_EXCLUDE.contains(&call.name.as_str())
        }
        CallKind::Assoc | CallKind::Free => true,
    }
}

/// `true` when a call site may carry *heavy work* between fns.
fn heavy_call(call: &CallSite) -> bool {
    strict_call(call)
        && !(call.kind == CallKind::Method && HEAVY_METHOD_EXCLUDE.contains(&call.name.as_str()))
}

/// Extracts the balanced `Mutex<...>`/`RwLock<...>` head of a
/// whitespace-free type rendering, if present.
fn lock_primitive(flat: &str) -> Option<String> {
    for prim in ["Mutex<", "RwLock<"] {
        if let Some(pos) = flat.find(prim) {
            let rest = &flat[pos..];
            let mut depth = 0i32;
            for (i, c) in rest.char_indices() {
                if c == '<' {
                    depth += 1;
                } else if c == '>' {
                    depth -= 1;
                    if depth == 0 {
                        return Some(rest[..=i].to_owned());
                    }
                }
            }
            return Some(rest.to_owned());
        }
    }
    None
}

/// Canonical identity of the lock behind a dotted receiver path.
pub fn lock_identity(s: &FnSummary, path: &str) -> String {
    let mut segs = path.split('.');
    let root = segs.next().unwrap_or(path);
    let field = segs.next();
    if root == "self" {
        if let (Some(ty), Some(f)) = (s.impl_type.as_deref(), field) {
            return format!("{ty}::{f}");
        }
    }
    if let Some((_, ty)) = s.params.iter().find(|(n, _)| n == root) {
        let flat: String = ty.chars().filter(|c| !c.is_whitespace()).collect();
        if let Some(prim) = lock_primitive(&flat) {
            return prim;
        }
        let base = flat.trim_start_matches('&').trim_start_matches("mut");
        return match field {
            Some(f) => format!("{base}::{f}"),
            None => base.to_owned(),
        };
    }
    format!("{}::{}", s.qual_name(), path)
}

/// One lock acquisition a fn performs: a direct `.lock()`/`.read()`/
/// `.write()` site, or a call to a guard-returning wrapper.
#[derive(Debug, Clone)]
pub struct Acq {
    /// Canonical lock identity (see [`lock_identity`]).
    pub identity: String,
    /// How the lock is taken, for diagnostics (`.lock()` on `self.inner`,
    /// or the wrapper's name).
    pub how: String,
    /// 1-based site line.
    pub line: u32,
    /// 1-based site column (1 for wrapper-call acquisitions).
    pub col: u32,
    /// Token index of the acquiring site.
    pub tok: usize,
    /// Token span over which the guard is live (exclusive of `tok`).
    pub region: (usize, usize),
}

/// A lock-graph edge: `to` is acquired somewhere while `from` is held.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The identity already held.
    pub from: String,
    /// The identity acquired under it.
    pub to: String,
    /// Node performing the nested acquisition (or the call leading to it).
    pub node: usize,
    /// 1-based line of the nested site.
    pub line: u32,
    /// 1-based column of the nested site.
    pub col: u32,
}

/// A re-acquisition of an already-held lock (self-deadlock with
/// non-reentrant std mutexes).
#[derive(Debug, Clone)]
pub struct Reentry {
    /// Node holding the lock when it is re-acquired.
    pub node: usize,
    /// 1-based line of the re-acquiring site (or call).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The lock identity acquired twice.
    pub identity: String,
    /// The callee that (transitively) re-acquires, for chain evidence;
    /// `None` for an intra-fn double acquisition.
    pub target: Option<usize>,
}

/// Synchronization facts for one lint run, indexed by call-graph node.
pub struct SyncFacts {
    /// Per-node direct acquisitions (own sites + wrapper calls).
    pub direct: Vec<Vec<Acq>>,
    /// Per-node transitive closure of acquired lock identities over
    /// strict edges.
    pub acquires: Vec<BTreeSet<String>>,
    /// Per-node: is (or reaches over heavy edges) loop-bearing kernel code.
    pub heavy: Vec<bool>,
    /// Per-node: is itself loop-bearing kernel code.
    pub kernel: Vec<bool>,
    /// Lock-acquisition graph edges (distinct identities only).
    pub lock_edges: Vec<LockEdge>,
    /// Held-lock re-acquisitions.
    pub reentries: Vec<Reentry>,
    /// Strict call sites per node: `(index into summary.calls, targets)`.
    pub strict_calls: Vec<Vec<(usize, Vec<usize>)>>,
    /// Heavy call sites per node (subset of `strict_calls`).
    pub heavy_calls: Vec<Vec<(usize, Vec<usize>)>>,
}

impl SyncFacts {
    /// Computes all facts for the files under `graph`.
    pub fn build(files: &[SourceFile], graph: &CallGraph) -> SyncFacts {
        let n = graph.len();
        let mut strict_calls: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); n];
        let mut heavy_calls: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); n];
        for id in 0..n {
            let s = graph.summary(files, id);
            for (ci, targets) in graph.call_targets(id) {
                let call = &s.calls[*ci];
                if strict_call(call) {
                    strict_calls[id].push((*ci, targets.clone()));
                    if heavy_call(call) {
                        heavy_calls[id].push((*ci, targets.clone()));
                    }
                }
            }
        }

        // Guard-returning wrappers and the identities they acquire
        // (fixpoint: wrappers may delegate to other wrappers).
        let wrapper: Vec<bool> = (0..n)
            .map(|id| graph.summary(files, id).ret.contains("Guard"))
            .collect();
        let mut wrapper_locks: Vec<BTreeSet<String>> = (0..n)
            .map(|id| {
                if !wrapper[id] {
                    return BTreeSet::new();
                }
                let s = graph.summary(files, id);
                s.locks.iter().map(|l| lock_identity(s, &l.path)).collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for id in 0..n {
                if !wrapper[id] {
                    continue;
                }
                let mut add: BTreeSet<String> = BTreeSet::new();
                for (_, targets) in &strict_calls[id] {
                    for &t in targets {
                        if wrapper[t] && t != id {
                            add.extend(wrapper_locks[t].iter().cloned());
                        }
                    }
                }
                for ident in add {
                    changed |= wrapper_locks[id].insert(ident);
                }
            }
            if !changed {
                break;
            }
        }

        // Direct acquisitions: own lock sites + wrapper-call sites.
        let mut direct: Vec<Vec<Acq>> = vec![Vec::new(); n];
        for id in 0..n {
            let s = graph.summary(files, id);
            for l in &s.locks {
                direct[id].push(Acq {
                    identity: lock_identity(s, &l.path),
                    how: format!("`{}.{}()`", l.path, l.method),
                    line: l.line,
                    col: l.col,
                    tok: l.tok,
                    region: l.region,
                });
            }
            for (ci, targets) in &strict_calls[id] {
                let call = &s.calls[*ci];
                let mut idents: BTreeSet<String> = BTreeSet::new();
                for &t in targets {
                    if wrapper[t] && t != id {
                        idents.extend(wrapper_locks[t].iter().cloned());
                    }
                }
                for identity in idents {
                    direct[id].push(Acq {
                        identity,
                        how: format!("`{}(...)` (guard-returning wrapper)", call.name),
                        line: call.line,
                        col: 1,
                        tok: call.tok,
                        region: call.region,
                    });
                }
            }
        }

        // Transitive acquisitions over strict edges.
        let mut acquires: Vec<BTreeSet<String>> = direct
            .iter()
            .map(|acqs| acqs.iter().map(|a| a.identity.clone()).collect())
            .collect();
        loop {
            let mut changed = false;
            for id in 0..n {
                let mut add: BTreeSet<String> = BTreeSet::new();
                for (_, targets) in &strict_calls[id] {
                    for &t in targets {
                        if t != id {
                            for ident in &acquires[t] {
                                if !acquires[id].contains(ident) {
                                    add.insert(ident.clone());
                                }
                            }
                        }
                    }
                }
                for ident in add {
                    changed |= acquires[id].insert(ident);
                }
            }
            if !changed {
                break;
            }
        }

        // Kernel membership and backward heavy propagation.
        let kernel: Vec<bool> = (0..n)
            .map(|id| {
                let (fi, _) = graph.node(id);
                let s = graph.summary(files, id);
                s.has_loop && KERNEL_PREFIXES.iter().any(|p| files[fi].rel.starts_with(p))
            })
            .collect();
        let mut heavy = kernel.clone();
        loop {
            let mut changed = false;
            for id in 0..n {
                if heavy[id] {
                    continue;
                }
                let reaches = heavy_calls[id]
                    .iter()
                    .any(|(_, targets)| targets.iter().any(|&t| heavy[t]));
                if reaches {
                    heavy[id] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Lock-graph edges and re-acquisitions.
        let mut lock_edges = Vec::new();
        let mut reentries = Vec::new();
        for id in 0..n {
            let s = graph.summary(files, id);
            for a in &direct[id] {
                for b in &direct[id] {
                    if b.tok > a.region.0 && b.tok < a.region.1 && b.tok != a.tok {
                        if b.identity == a.identity {
                            reentries.push(Reentry {
                                node: id,
                                line: b.line,
                                col: b.col,
                                identity: a.identity.clone(),
                                target: None,
                            });
                        } else {
                            lock_edges.push(LockEdge {
                                from: a.identity.clone(),
                                to: b.identity.clone(),
                                node: id,
                                line: b.line,
                                col: b.col,
                            });
                        }
                    }
                }
                for (ci, targets) in &strict_calls[id] {
                    let call = &s.calls[*ci];
                    if !(call.tok > a.region.0 && call.tok < a.region.1) {
                        continue;
                    }
                    for &t in targets {
                        if t == id {
                            continue;
                        }
                        for b_ident in &acquires[t] {
                            if *b_ident == a.identity {
                                reentries.push(Reentry {
                                    node: id,
                                    line: call.line,
                                    col: 1,
                                    identity: a.identity.clone(),
                                    target: Some(t),
                                });
                            } else {
                                lock_edges.push(LockEdge {
                                    from: a.identity.clone(),
                                    to: b_ident.clone(),
                                    node: id,
                                    line: call.line,
                                    col: 1,
                                });
                            }
                        }
                    }
                }
            }
        }

        SyncFacts {
            direct,
            acquires,
            heavy,
            kernel,
            lock_edges,
            reentries,
            strict_calls,
            heavy_calls,
        }
    }

    /// The acquisitions of `node` whose guard region contains `tok`.
    pub fn held_at(&self, node: usize, tok: usize) -> Vec<&Acq> {
        self.direct[node]
            .iter()
            .filter(|a| tok > a.region.0 && tok < a.region.1)
            .collect()
    }

    /// BFS path of lock identities from `from` to `to` over the lock
    /// graph, inclusive of both endpoints; `None` when unreachable.
    pub fn lock_path(&self, from: &str, to: &str) -> Option<Vec<String>> {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &self.lock_edges {
            adj.entry(e.from.as_str())
                .or_default()
                .insert(e.to.as_str());
        }
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        parent.insert(from, from);
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                let mut path = vec![cur.to_owned()];
                let mut c = cur;
                while parent[c] != c {
                    c = parent[c];
                    path.push(c.to_owned());
                }
                path.reverse();
                return Some(path);
            }
            if let Some(nexts) = adj.get(cur) {
                for &nx in nexts {
                    parent.entry(nx).or_insert_with(|| {
                        queue.push_back(nx);
                        cur
                    });
                }
            }
        }
        None
    }

    /// Shortest strict-edge call chain from `start` to a fn that
    /// directly acquires `identity` (inclusive); empty when none.
    pub fn acquire_chain(&self, start: usize, identity: &str) -> Vec<usize> {
        self.chain(start, |facts, id| {
            facts.direct[id].iter().any(|a| a.identity == identity)
        })
    }

    /// Shortest heavy-edge call chain from `start` to a loop-bearing
    /// kernel fn (inclusive); empty when none.
    pub fn heavy_chain(&self, start: usize) -> Vec<usize> {
        let mut parent = BTreeMap::new();
        let mut queue = VecDeque::new();
        parent.insert(start, start);
        queue.push_back(start);
        while let Some(cur) = queue.pop_front() {
            if self.kernel[cur] {
                return unwind(&parent, cur);
            }
            for (_, targets) in &self.heavy_calls[cur] {
                for &t in targets {
                    parent.entry(t).or_insert_with(|| {
                        queue.push_back(t);
                        cur
                    });
                }
            }
        }
        Vec::new()
    }

    fn chain(&self, start: usize, hit: impl Fn(&SyncFacts, usize) -> bool) -> Vec<usize> {
        let mut parent = BTreeMap::new();
        let mut queue = VecDeque::new();
        parent.insert(start, start);
        queue.push_back(start);
        while let Some(cur) = queue.pop_front() {
            if hit(self, cur) {
                return unwind(&parent, cur);
            }
            for (_, targets) in &self.strict_calls[cur] {
                for &t in targets {
                    parent.entry(t).or_insert_with(|| {
                        queue.push_back(t);
                        cur
                    });
                }
            }
        }
        Vec::new()
    }
}

/// Rebuilds the BFS path ending at `last` from a parent map.
fn unwind(parent: &BTreeMap<usize, usize>, last: usize) -> Vec<usize> {
    let mut path = vec![last];
    let mut c = last;
    while parent[&c] != c {
        c = parent[&c];
        path.push(c);
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CrateInfo;
    use crate::source::{FileKind, SourceFile};

    fn facts(files: Vec<(&str, &str)>) -> (Vec<SourceFile>, CallGraph, SyncFacts) {
        let files: Vec<SourceFile> = files
            .into_iter()
            .map(|(rel, src)| {
                SourceFile::parse(rel.to_owned(), src.to_owned(), FileKind::classify(rel))
            })
            .collect();
        let crates = vec![CrateInfo {
            rel_root: "crates/core".into(),
            name: "leakage-core".into(),
            has_parallel_feature: true,
        }];
        let graph = CallGraph::build(&files, &crates);
        let sync = SyncFacts::build(&files, &graph);
        (files, graph, sync)
    }

    fn node_named(files: &[SourceFile], graph: &CallGraph, name: &str) -> usize {
        (0..graph.len())
            .find(|&id| graph.summary(files, id).name == name)
            .unwrap_or_else(|| panic!("no node named {name}"))
    }

    #[test]
    fn identity_self_field_and_param_and_local() {
        let (files, graph, _) = facts(vec![(
            "crates/core/src/lib.rs",
            "pub struct S { inner: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn a(&self) { let _g = self.inner.lock().unwrap(); }\n\
             }\n\
             pub fn b(m: &std::sync::Mutex<u32>) { let _g = m.lock().unwrap(); }\n\
             pub fn c() { let m = std::sync::Mutex::new(0); let _g = m.lock().unwrap(); }\n",
        )]);
        let a = graph.summary(&files, node_named(&files, &graph, "a"));
        assert_eq!(lock_identity(a, "self.inner"), "S::inner");
        let b = graph.summary(&files, node_named(&files, &graph, "b"));
        assert_eq!(lock_identity(b, "m"), "Mutex<u32>");
        let c = graph.summary(&files, node_named(&files, &graph, "c"));
        assert_eq!(lock_identity(c, "m"), "c::m");
    }

    #[test]
    fn wrapper_call_counts_as_acquisition() {
        let (files, graph, sync) = facts(vec![(
            "crates/core/src/lib.rs",
            "pub struct Shard;\n\
             impl Shard {\n\
               pub fn lock(m: &std::sync::Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {\n\
                 m.lock().unwrap()\n\
               }\n\
             }\n\
             pub fn user(m: &std::sync::Mutex<Shard>) {\n\
               let _g = Shard::lock(m);\n\
             }\n",
        )]);
        let user = node_named(&files, &graph, "user");
        assert!(
            sync.direct[user]
                .iter()
                .any(|a| a.identity == "Mutex<Shard>"),
            "wrapper call should register Mutex<Shard>: {:?}",
            sync.direct[user]
        );
    }

    #[test]
    fn nested_guards_make_a_lock_edge_and_cycles_resolve() {
        let (files, graph, sync) = facts(vec![(
            "crates/core/src/lib.rs",
            "pub struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn ab(&self) {\n\
                 let _ga = self.a.lock().unwrap();\n\
                 let _gb = self.b.lock().unwrap();\n\
               }\n\
               pub fn ba(&self) {\n\
                 let _gb = self.b.lock().unwrap();\n\
                 let _ga = self.a.lock().unwrap();\n\
               }\n\
             }\n",
        )]);
        let _ = files;
        let _ = graph;
        assert!(
            sync.lock_edges
                .iter()
                .any(|e| e.from == "S::a" && e.to == "S::b"),
            "{:?}",
            sync.lock_edges
        );
        assert!(
            sync.lock_edges
                .iter()
                .any(|e| e.from == "S::b" && e.to == "S::a"),
            "{:?}",
            sync.lock_edges
        );
        let path = sync.lock_path("S::b", "S::a").expect("cycle path");
        assert_eq!(path, vec!["S::b".to_owned(), "S::a".to_owned()]);
    }

    #[test]
    fn callee_acquisition_makes_interprocedural_edge() {
        let (files, graph, sync) = facts(vec![(
            "crates/core/src/lib.rs",
            "pub struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn outer(&self) {\n\
                 let _ga = self.a.lock().unwrap();\n\
                 self.inner_b();\n\
               }\n\
               fn inner_b(&self) { let _gb = self.b.lock().unwrap(); }\n\
             }\n",
        )]);
        let outer = node_named(&files, &graph, "outer");
        assert!(
            sync.lock_edges
                .iter()
                .any(|e| e.from == "S::a" && e.to == "S::b" && e.node == outer),
            "{:?}",
            sync.lock_edges
        );
    }

    #[test]
    fn reentry_direct_and_through_call() {
        let (files, graph, sync) = facts(vec![(
            "crates/core/src/lib.rs",
            "pub struct S { a: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn twice(&self) {\n\
                 let _g1 = self.a.lock().unwrap();\n\
                 let _g2 = self.a.lock().unwrap();\n\
               }\n\
               pub fn outer(&self) {\n\
                 let _g = self.a.lock().unwrap();\n\
                 self.takes_it();\n\
               }\n\
               fn takes_it(&self) { let _g = self.a.lock().unwrap(); }\n\
             }\n",
        )]);
        let twice = node_named(&files, &graph, "twice");
        let outer = node_named(&files, &graph, "outer");
        assert!(
            sync.reentries
                .iter()
                .any(|r| r.node == twice && r.target.is_none() && r.identity == "S::a"),
            "{:?}",
            sync.reentries
        );
        assert!(
            sync.reentries
                .iter()
                .any(|r| r.node == outer && r.target.is_some() && r.identity == "S::a"),
            "{:?}",
            sync.reentries
        );
        let takes_it = node_named(&files, &graph, "takes_it");
        let chain = sync.acquire_chain(takes_it, "S::a");
        assert_eq!(chain, vec![takes_it]);
    }

    #[test]
    fn heavy_propagates_backward_but_not_through_recorder_calls() {
        let (files, graph, sync) = facts(vec![(
            "crates/core/src/estimator/exact.rs",
            "pub fn kernel(xs: &[f64]) -> f64 {\n\
               let mut m = 0.0f64;\n\
               for i in 0..xs.len() { m = m.max(xs[i]); }\n\
               m\n\
             }\n\
             pub fn driver(xs: &[f64]) -> f64 { kernel(xs) }\n\
             pub struct Ins;\n\
             impl Ins {\n\
               pub fn add(&self, _c: &'static str, _by: u64) {\n\
                 let mut i = 0usize; loop { i += 1; if i > 1 { break; } }\n\
               }\n\
             }\n\
             pub fn instrumented(ins: &Ins) { ins.add(\"n\", 1); }\n",
        )]);
        let kernel = node_named(&files, &graph, "kernel");
        let driver = node_named(&files, &graph, "driver");
        let instrumented = node_named(&files, &graph, "instrumented");
        assert!(sync.kernel[kernel]);
        assert!(sync.heavy[driver], "driver reaches the kernel");
        assert!(
            !sync.heavy[instrumented],
            "recorder vocabulary must not carry heaviness"
        );
        assert_eq!(sync.heavy_chain(driver), vec![driver, kernel]);
    }

    #[test]
    fn held_at_respects_guard_regions() {
        let (files, graph, sync) = facts(vec![(
            "crates/core/src/lib.rs",
            "pub struct S { a: std::sync::Mutex<u32> }\n\
             impl S {\n\
               pub fn f(&self) {\n\
                 let g = self.a.lock().unwrap();\n\
                 drop(g);\n\
                 self.after();\n\
               }\n\
               fn after(&self) {}\n\
             }\n",
        )]);
        let f = node_named(&files, &graph, "f");
        let s = graph.summary(&files, f);
        let after_call = s.calls.iter().find(|c| c.name == "after").unwrap();
        assert!(
            sync.held_at(f, after_call.tok).is_empty(),
            "guard dropped before the call"
        );
        assert!(
            sync.reentries.iter().all(|r| r.node != f),
            "{:?}",
            sync.reentries
        );
    }
}
