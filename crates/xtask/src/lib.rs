//! `chipleak-lint`: repo-specific static analysis for the leakage workspace.
//!
//! The paper's estimators (exact O(n²) pair sum, Eq. 17
//! distance-multiplicity, Eqs. 20/24–26 integrals) are only a valid
//! reproduction if results are bit-reproducible across thread counts and
//! summation orders. Those invariants — counter-seeded RNG streams,
//! fixed-order chunk reduction, compensated summation — were previously
//! enforced by convention; this crate enforces them mechanically on every
//! build via `cargo xtask lint`.
//!
//! Architecture: a dependency-free Rust lexer ([`lexer`]) feeds a
//! lightweight structural scanner ([`source`]) that recovers the item
//! facts the rules need (test/bench classification, `#[cfg]`-gated
//! extents, `fn` items with signature/body spans). The [`rules`] each
//! implement [`engine::Rule`] and report [`engine::Diagnostic`]s with
//! file/line/column spans; the [`engine`] applies
//! `// chipleak-lint: allow(<rule>): <why>` suppressions and renders
//! human-readable or JSON output.
//!
//! The engine deliberately does not depend on `syn`: the workspace builds
//! against a vendored/offline dependency set, and token-level analysis
//! with structural recovery is sufficient for every rule (this is the
//! same trade rustc's `tidy` makes). Rules are written so that a future
//! swap to a full AST visitor only has to reimplement the `Rule` trait.

pub mod cache;
pub mod engine;
pub mod fix;
pub mod graph;
pub mod json;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod summary;
pub mod sync;

use engine::{Context, CrateInfo, Diagnostic};
use source::{FileKind, SourceFile};
use std::path::{Path, PathBuf};

/// Recursively collects the `.rs` files of the workspace rooted at `root`.
///
/// Skips `target/`, VCS metadata, and the lint fixtures (which are
/// deliberately non-conforming snippets).
pub fn collect_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        // Sorted traversal keeps diagnostic order stable across platforms.
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if matches!(name, "target" | ".git" | ".claude" | "fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = relative_unix(root, &path);
                let text = std::fs::read_to_string(&path)?;
                let kind = FileKind::classify(&rel);
                files.push(SourceFile::parse(rel, text, kind));
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

/// Reads `crates/*/Cargo.toml` (plus the root manifest) to learn which
/// crates declare a `parallel` feature — input to the L4 parity rule.
pub fn collect_crates(root: &Path) -> std::io::Result<Vec<CrateInfo>> {
    let mut crates = Vec::new();
    let mut manifests = vec![(String::new(), root.join("Cargo.toml"))];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let path = entry?.path();
            let manifest = path.join("Cargo.toml");
            if manifest.is_file() {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("")
                    .to_owned();
                manifests.push((format!("crates/{name}"), manifest));
            }
        }
    }
    for (rel_root, manifest) in manifests {
        let text = std::fs::read_to_string(&manifest)?;
        crates.push(CrateInfo {
            rel_root,
            name: manifest_package_name(&text),
            has_parallel_feature: manifest_has_parallel_feature(&text),
        });
    }
    crates.sort_by(|a, b| a.rel_root.cmp(&b.rel_root));
    Ok(crates)
}

/// `true` when a `[features]` table defines a `parallel` feature.
fn manifest_has_parallel_feature(manifest: &str) -> bool {
    let mut in_features = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_features = line == "[features]";
            continue;
        }
        if in_features && line.split('=').next().map(str::trim) == Some("parallel") {
            return true;
        }
    }
    false
}

/// The `[package] name = "..."` value (empty when absent).
fn manifest_package_name(manifest: &str) -> String {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return v.trim().trim_matches(['"', '\'']).to_owned();
                }
            }
        }
    }
    String::new()
}

/// Runs every registered rule over `files` and returns the surviving
/// (post-suppression) diagnostics.
pub fn run_lint(files: &[SourceFile], crates: Vec<CrateInfo>) -> Vec<Diagnostic> {
    let ctx = Context { crates };
    engine::run(&rules::registry(), files, &ctx)
}

/// [`run_lint`], replaying unchanged files' file-rule diagnostics from the
/// incremental cache at `cache_path` (and refreshing it). Suppression
/// matching and the workspace rules (L8–L11) always run fresh.
pub fn run_lint_cached(
    files: &[SourceFile],
    crates: Vec<CrateInfo>,
    cache_path: &Path,
) -> Vec<Diagnostic> {
    let rules = rules::registry();
    let ctx = Context { crates };
    let fp = cache::fingerprint(&rules, &ctx.crates);
    let cached = cache::load(cache_path, &fp, &rules);
    let mut next = std::collections::BTreeMap::new();
    let mut file_diags = Vec::with_capacity(files.len());
    for f in files {
        // The kind participates in the hash: a reclassification (say a
        // crate becoming tooling) must invalidate the entry even though
        // the file's text is unchanged.
        let hash = cache::hash_text(&format!("{:?}\n{}", f.kind, f.text));
        let diags = match cached.get(&f.rel) {
            Some(e) if e.hash == hash => e.diags.clone(),
            _ => engine::file_rule_diags(&rules, f, &ctx),
        };
        next.insert(
            f.rel.clone(),
            cache::Entry {
                hash,
                diags: diags.clone(),
            },
        );
        file_diags.push(diags);
    }
    cache::save(cache_path, &fp, &next);
    engine::run_with_file_diags(&rules, files, &ctx, file_diags)
}

fn relative_unix(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_detection_reads_features_table_only() {
        let with = "[package]\nname='x'\n[features]\ndefault=[]\nparallel = []\n";
        let without = "[package]\nname='x'\n[dependencies]\nparallel = '1'\n";
        assert!(manifest_has_parallel_feature(with));
        assert!(!manifest_has_parallel_feature(without));
    }
}
