//! Workspace call graph over [`crate::summary::FnSummary`] nodes, with
//! reachability queries and evidence chains for the interprocedural rules.
//!
//! Resolution is deliberately *over-approximating*: a call site links to
//! every function it could plausibly name, so reachability never misses a
//! real path (the rules' exemption lists handle the resulting noise).
//! Name resolution is purely syntactic — no type inference:
//!
//! - bare `name(...)` — same-file free fns, else same-crate, else every
//!   free fn of that name in the workspace;
//! - `path::to::name(...)` — when a path segment names a workspace crate
//!   (`leakage_numeric`), free fns of that crate; `crate`/`self`/`super`
//!   paths stay in the calling crate;
//! - `Type::name(...)` — fns inside `impl Type` blocks (any crate);
//!   `Self::name` uses the caller's own impl type;
//! - `.name(...)` — every impl/trait method of that name in the workspace.

use crate::engine::CrateInfo;
use crate::source::{FileKind, SourceFile};
use crate::summary::{CallKind, FnSummary};
use std::collections::BTreeMap;

/// A node: `(file index, summary index)` into the lint run's file slice.
pub type NodeRef = (usize, usize);

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Flat node list; the node id is the index.
    nodes: Vec<NodeRef>,
    /// Sorted, deduplicated callee ids per node.
    edges: Vec<Vec<usize>>,
    /// Crate rel-root per node (`"crates/numeric"`, `""` for the root
    /// package).
    crate_of: Vec<String>,
    /// Per-node resolved targets of each call site, as
    /// `(index into summary.calls, target node ids)` — the same
    /// resolution the edges are built from, kept per-site so the
    /// synchronization rules can filter by call shape and position.
    call_targets: Vec<Vec<(usize, Vec<usize>)>>,
}

impl CallGraph {
    /// Builds the graph over the library fn summaries in `files`.
    ///
    /// Tool/test/bench/bin files and `#[cfg(test)]` fns are excluded:
    /// every interprocedural rule roots at and flags library code only,
    /// and common method names (`run`, `parse`, `build`) in tooling or
    /// test helpers would otherwise pull unrelated code into every
    /// reachability set.
    pub fn build(files: &[SourceFile], crates: &[CrateInfo]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut crate_of = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            if file.kind != FileKind::Library {
                continue;
            }
            for (si, s) in file.summaries.iter().enumerate() {
                if s.in_test {
                    continue;
                }
                nodes.push((fi, si));
                crate_of.push(crate_root_of(&file.rel, crates));
            }
        }
        // Name tables. BTreeMap keeps candidate order deterministic.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut assoc: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, &(fi, si)) in nodes.iter().enumerate() {
            let s = &files[fi].summaries[si];
            match &s.impl_type {
                Some(ty) => {
                    methods.entry(&s.name).or_default().push(id);
                    assoc.entry((ty, &s.name)).or_default().push(id);
                }
                None if s.trait_name.is_some() => {
                    // Trait default methods are callable as methods.
                    methods.entry(&s.name).or_default().push(id);
                }
                None => free.entry(&s.name).or_default().push(id),
            }
        }
        let crate_names: Vec<(String, &str)> = crates
            .iter()
            .map(|c| (c.name.replace('-', "_"), c.rel_root.as_str()))
            .collect();
        let mut edges = vec![Vec::new(); nodes.len()];
        let mut call_targets = vec![Vec::new(); nodes.len()];
        for (id, &(fi, si)) in nodes.iter().enumerate() {
            let s = &files[fi].summaries[si];
            let mut out = Vec::new();
            let mut per_call = Vec::new();
            for (ci, call) in s.calls.iter().enumerate() {
                let mut targets: Vec<usize> = Vec::new();
                match call.kind {
                    CallKind::Method => {
                        if let Some(c) = methods.get(call.name.as_str()) {
                            targets.extend_from_slice(c);
                        }
                    }
                    CallKind::Assoc => {
                        let ty = call.qual.last().map(String::as_str).unwrap_or("");
                        let ty = if ty == "Self" {
                            s.impl_type.as_deref().unwrap_or("")
                        } else {
                            ty
                        };
                        if let Some(c) = assoc.get(&(ty, call.name.as_str())) {
                            targets.extend_from_slice(c);
                        }
                    }
                    CallKind::Free => {
                        let candidates = free.get(call.name.as_str()).map_or(&[][..], |v| v);
                        let target_crate: Option<&str> = if call.qual.is_empty() {
                            None
                        } else if matches!(call.qual[0].as_str(), "crate" | "self" | "super") {
                            Some(&crate_of[id])
                        } else {
                            call.qual.iter().find_map(|seg| {
                                crate_names
                                    .iter()
                                    .find(|(n, _)| n == seg)
                                    .map(|(_, root)| *root)
                            })
                        };
                        let picked: Vec<usize> = match target_crate {
                            Some(root) => candidates
                                .iter()
                                .copied()
                                .filter(|&c| crate_of[c] == root)
                                .collect(),
                            None => {
                                let same_file: Vec<usize> = candidates
                                    .iter()
                                    .copied()
                                    .filter(|&c| nodes[c].0 == fi)
                                    .collect();
                                if !same_file.is_empty() {
                                    same_file
                                } else {
                                    let same_crate: Vec<usize> = candidates
                                        .iter()
                                        .copied()
                                        .filter(|&c| crate_of[c] == crate_of[id])
                                        .collect();
                                    if !same_crate.is_empty() {
                                        same_crate
                                    } else {
                                        candidates.to_vec()
                                    }
                                }
                            }
                        };
                        // Unresolvable crate-qualified paths fall back to
                        // every candidate rather than dropping the edge.
                        if picked.is_empty() {
                            targets.extend_from_slice(candidates);
                        } else {
                            targets.extend(picked);
                        }
                    }
                }
                targets.sort_unstable();
                targets.dedup();
                out.extend_from_slice(&targets);
                if !targets.is_empty() {
                    per_call.push((ci, targets));
                }
            }
            out.sort_unstable();
            out.dedup();
            edges[id] = out;
            call_targets[id] = per_call;
        }
        CallGraph {
            nodes,
            edges,
            crate_of,
            call_targets,
        }
    }

    /// Resolved targets of each call site of a node, as
    /// `(index into the summary's calls, target node ids)`; sites that
    /// resolved to nothing are omitted.
    pub fn call_targets(&self, id: usize) -> &[(usize, Vec<usize>)] {
        &self.call_targets[id]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The `(file, summary)` pair of a node id.
    pub fn node(&self, id: usize) -> NodeRef {
        self.nodes[id]
    }

    /// All node ids with their summaries.
    pub fn iter<'a>(
        &'a self,
        files: &'a [SourceFile],
    ) -> impl Iterator<Item = (usize, &'a FnSummary)> + 'a {
        self.nodes
            .iter()
            .enumerate()
            .map(move |(id, &(fi, si))| (id, &files[fi].summaries[si]))
    }

    /// The summary of a node id.
    pub fn summary<'a>(&self, files: &'a [SourceFile], id: usize) -> &'a FnSummary {
        let (fi, si) = self.nodes[id];
        &files[fi].summaries[si]
    }

    /// Workspace-relative crate root of a node id.
    pub fn crate_of(&self, id: usize) -> &str {
        &self.crate_of[id]
    }

    /// BFS from `roots`; the result answers membership and yields
    /// call-chain evidence.
    pub fn reachable(&self, roots: &[usize]) -> Reach {
        let mut from = vec![usize::MAX; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if from[r] == usize::MAX {
                from[r] = r;
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if from[m] == usize::MAX {
                    from[m] = n;
                    queue.push_back(m);
                }
            }
        }
        Reach { from }
    }

    /// BFS from `roots` that consults `skip_call(node, call index)` per
    /// call site: a `true` return drops that site's edges from the walk.
    /// Rules use this to model lexical escape extents — e.g. L9 treats
    /// calls inside a `catch_unwind(...)` argument list as supervised,
    /// so panics below them cannot unwind back to the root.
    pub fn reachable_filtered(
        &self,
        roots: &[usize],
        skip_call: impl Fn(usize, usize) -> bool,
    ) -> Reach {
        let mut from = vec![usize::MAX; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if from[r] == usize::MAX {
                from[r] = r;
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for (ci, targets) in &self.call_targets[n] {
                if skip_call(n, *ci) {
                    continue;
                }
                for &m in targets {
                    if from[m] == usize::MAX {
                        from[m] = n;
                        queue.push_back(m);
                    }
                }
            }
        }
        Reach { from }
    }
}

/// Result of a reachability query.
pub struct Reach {
    /// BFS parent per node; `usize::MAX` = unreached, self = root.
    from: Vec<usize>,
}

impl Reach {
    /// `true` when the node is reachable from any root.
    pub fn contains(&self, id: usize) -> bool {
        self.from[id] != usize::MAX
    }

    /// Shortest call chain `root → … → id` (inclusive) as node ids.
    pub fn chain(&self, id: usize) -> Vec<usize> {
        let mut path = vec![id];
        let mut cur = id;
        while self.from[cur] != cur {
            cur = self.from[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }
}

/// Renders a call chain as `a → b → c` using qualified fn names.
pub fn render_chain(graph: &CallGraph, files: &[SourceFile], chain: &[usize]) -> String {
    chain
        .iter()
        .map(|&id| {
            let (fi, si) = graph.node(id);
            files[fi].summaries[si].qual_name()
        })
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Maps a file path to its crate rel-root (`""` for the root package).
fn crate_root_of(rel: &str, crates: &[CrateInfo]) -> String {
    crates
        .iter()
        .filter(|c| !c.rel_root.is_empty())
        .find(|c| rel.starts_with(&format!("{}/", c.rel_root)))
        .map(|c| c.rel_root.clone())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn crates() -> Vec<CrateInfo> {
        vec![
            CrateInfo {
                rel_root: "crates/a".into(),
                name: "leakage-a".into(),
                has_parallel_feature: false,
            },
            CrateInfo {
                rel_root: "crates/b".into(),
                name: "leakage-b".into(),
                has_parallel_feature: false,
            },
        ]
    }

    fn parse(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(rel.into(), src.into(), FileKind::Library)
    }

    fn find(graph: &CallGraph, files: &[SourceFile], name: &str) -> usize {
        graph
            .iter(files)
            .find(|(_, s)| s.name == name)
            .map(|(id, _)| id)
            .expect(name)
    }

    #[test]
    fn same_file_call_preferred_over_cross_crate() {
        let files = vec![
            parse(
                "crates/a/src/lib.rs",
                "pub fn entry() { helper(); }\nfn helper() {}\n",
            ),
            parse(
                "crates/b/src/lib.rs",
                "pub fn helper() { Instant::now(); }\n",
            ),
        ];
        let g = CallGraph::build(&files, &crates());
        let entry = find(&g, &files, "entry");
        let local = g
            .iter(&files)
            .find(|(id, s)| s.name == "helper" && g.node(*id).0 == 0)
            .unwrap()
            .0;
        let reach = g.reachable(&[entry]);
        assert!(reach.contains(local));
        let remote = g
            .iter(&files)
            .find(|(id, s)| s.name == "helper" && g.node(*id).0 == 1)
            .unwrap()
            .0;
        assert!(!reach.contains(remote));
    }

    #[test]
    fn crate_qualified_call_crosses_crates() {
        let files = vec![
            parse(
                "crates/a/src/lib.rs",
                "pub fn entry() { leakage_b::helper(); }\n",
            ),
            parse("crates/b/src/lib.rs", "pub fn helper() {}\n"),
        ];
        let g = CallGraph::build(&files, &crates());
        let reach = g.reachable(&[find(&g, &files, "entry")]);
        assert!(reach.contains(find(&g, &files, "helper")));
    }

    #[test]
    fn method_and_assoc_calls_resolve() {
        let files = vec![parse(
            "crates/a/src/lib.rs",
            "pub struct S;\n\
             impl S {\n  pub fn new() -> S { S }\n  pub fn work(&self) { deep(); }\n}\n\
             fn deep() {}\n\
             pub fn entry() { let s = S::new(); s.work(); }\n",
        )];
        let g = CallGraph::build(&files, &crates());
        let reach = g.reachable(&[find(&g, &files, "entry")]);
        assert!(reach.contains(find(&g, &files, "new")));
        assert!(reach.contains(find(&g, &files, "work")));
        assert!(reach.contains(find(&g, &files, "deep")));
    }

    #[test]
    fn chain_reports_path() {
        let files = vec![parse(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )];
        let g = CallGraph::build(&files, &crates());
        let reach = g.reachable(&[find(&g, &files, "a")]);
        let chain = reach.chain(find(&g, &files, "c"));
        assert_eq!(render_chain(&g, &files, &chain), "a -> b -> c");
    }

    #[test]
    fn unrelated_fns_not_reachable() {
        let files = vec![parse(
            "crates/a/src/lib.rs",
            "pub fn a() {}\nfn other() { Instant::now(); }\n",
        )];
        let g = CallGraph::build(&files, &crates());
        let reach = g.reachable(&[find(&g, &files, "a")]);
        assert!(!reach.contains(find(&g, &files, "other")));
    }
}
