//! `--fix`: mechanical repairs the engine can prove safe.
//!
//! Two fix classes, applied in order:
//!
//! 1. **Provable `.unwrap()`/`.expect(..)` → `?`** — only when the
//!    panicking call's receiver is a direct call to a free fn *in the same
//!    file* whose return type is `Result<_, E>` with the *textually
//!    identical* error type as the enclosing fn. That is the one shape
//!    where replacing the panic with `?` cannot change the error type or
//!    require a `From` impl the code may not have.
//! 2. **Stale suppression cleanup** — a full lint run is taken after the
//!    rewrites, and every directive the engine reports as *unused*
//!    (L0 warning) is deleted: the whole line when the comment owns the
//!    line, else just the trailing comment.
//!
//! Unjustified suppressions (L0 errors) are never auto-fixed: they need a
//! human-written reason, not deletion.

use crate::lexer::{Tok, TokKind};
use crate::parse::skip_parens;
use crate::source::{FileKind, SourceFile};
use crate::summary::FnSummary;
use std::path::Path;

/// One applied fix, for reporting.
#[derive(Debug)]
pub struct Applied {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line the fix touched.
    pub line: u32,
    /// Human description.
    pub what: String,
}

/// Applies all provable fixes under `root`, writing files in place.
pub fn apply(root: &Path) -> std::io::Result<Vec<Applied>> {
    let mut applied = Vec::new();

    // Pass 1: unwrap/expect → `?` where provably safe.
    let files = crate::collect_workspace(root)?;
    for file in &files {
        if file.kind != FileKind::Library {
            continue;
        }
        let edits = unwrap_edits(file);
        if edits.is_empty() {
            continue;
        }
        let new_text = splice(&file.text, &edits);
        std::fs::write(root.join(&file.rel), new_text)?;
        for e in edits {
            applied.push(Applied {
                file: file.rel.clone(),
                line: e.line,
                what: format!("rewrote `.{}(..)` on `{}(..)` to `?`", e.what, e.callee),
            });
        }
    }

    // Pass 2: delete stale suppressions (re-lint over the edited tree).
    let files = crate::collect_workspace(root)?;
    let crates = crate::collect_crates(root)?;
    let diags = crate::run_lint(&files, crates);
    let mut stale: std::collections::BTreeMap<String, Vec<u32>> = std::collections::BTreeMap::new();
    for d in &diags {
        if d.rule == "lint-suppression" && d.message.starts_with("unused suppression") {
            stale.entry(d.file.clone()).or_default().push(d.line);
        }
    }
    for (rel, lines) in stale {
        let Some(file) = files.iter().find(|f| f.rel == rel) else {
            continue;
        };
        std::fs::write(root.join(&rel), strip_directive_lines(&file.text, &lines))?;
        for line in lines {
            applied.push(Applied {
                file: rel.clone(),
                line,
                what: "deleted stale suppression".into(),
            });
        }
    }

    applied.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(applied)
}

/// A byte-range replacement.
#[derive(Debug)]
struct Edit {
    start: usize,
    end: usize,
    line: u32,
    what: String,
    callee: String,
}

/// Finds provable `.unwrap()`/`.expect(..)` → `?` rewrites in one file.
fn unwrap_edits(file: &SourceFile) -> Vec<Edit> {
    let mut edits = Vec::new();
    let toks = &file.tokens;
    for s in &file.summaries {
        if s.in_test {
            continue;
        }
        let Some(err) = result_err_type(&s.ret) else {
            continue;
        };
        for p in &s.panics {
            if p.what != "unwrap" && p.what != "expect" {
                continue;
            }
            if suppressed_panic_site(file, p.line) {
                continue; // a justified suppression is a human decision
            }
            // Locate the method-name token, then check the receiver shape:
            // `callee ( ... ) . unwrap ( ... )` with `callee` a plain free
            // call (no `.`/`::` prefix).
            let Some(ti) = toks
                .iter()
                .position(|t| t.line == p.line && t.col == p.col && t.is_ident(&p.what))
            else {
                continue;
            };
            if ti < 3 || !toks[ti - 1].is_punct('.') || !toks[ti - 2].is_punct(')') {
                continue;
            }
            let Some(open) = matching_open_paren(toks, ti - 2) else {
                continue;
            };
            if open == 0 || toks[open - 1].kind != TokKind::Ident {
                continue;
            }
            let callee = &toks[open - 1];
            if open >= 2 && (toks[open - 2].is_punct('.') || toks[open - 2].is_punct(':')) {
                continue; // method or path-qualified call: not resolvable here
            }
            if !callee_returns_err(&file.summaries, &callee.text, &err) {
                continue;
            }
            // Replace from the `.` through the close paren of the
            // unwrap/expect argument list with `?`.
            let Some(args_open) = toks.get(ti + 1).filter(|t| t.is_punct('(')) else {
                continue;
            };
            let _ = args_open;
            let close = skip_parens(toks, ti + 1, toks.len());
            let Some(close_tok) = toks.get(close.saturating_sub(1)) else {
                continue;
            };
            let Some(start) = byte_offset(&file.text, toks[ti - 1].line, toks[ti - 1].col) else {
                continue;
            };
            let Some(end) = byte_offset(&file.text, close_tok.line, close_tok.col) else {
                continue;
            };
            edits.push(Edit {
                start,
                end: end + 1,
                line: p.line,
                what: p.what.clone(),
                callee: callee.text.clone(),
            });
        }
    }
    edits
}

/// `true` when a justified L5/L9 suppression covers the panic site.
fn suppressed_panic_site(file: &SourceFile, line: u32) -> bool {
    file.suppressions.iter().any(|s| {
        !s.reason.is_empty()
            && (s.covers("no-unwrap-in-library", "L5") || s.covers("panic-freedom", "L9"))
            && (s.file_scope || s.line == line || s.line + 1 == line)
    })
}

/// `true` when exactly the free fns named `name` in this file all return
/// `Result<_, err>` (and at least one exists).
fn callee_returns_err(summaries: &[FnSummary], name: &str, err: &str) -> bool {
    let mut any = false;
    for s in summaries {
        if s.name != name || s.impl_type.is_some() {
            continue;
        }
        any = true;
        if result_err_type(&s.ret).as_deref() != Some(err) {
            return false;
        }
    }
    any
}

/// The error type of a normalized `Result < T , E >` return type text.
fn result_err_type(ret: &str) -> Option<String> {
    let toks: Vec<&str> = ret.split_whitespace().collect();
    let pos = toks.iter().position(|t| *t == "Result")?;
    if toks.get(pos + 1) != Some(&"<") {
        return None;
    }
    // Split the angle-bracket payload at the top-level comma.
    let mut depth = 0usize;
    let mut i = pos + 1;
    let mut comma = None;
    let mut close = None;
    while i < toks.len() {
        match toks[i] {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    close = Some(i);
                    break;
                }
            }
            "," if depth == 1 => comma = Some(i),
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    let (comma, close) = (comma?, close?);
    if comma + 1 >= close {
        return None;
    }
    Some(toks[comma + 1..close].join(" "))
}

/// Token index of the `(` matching the `)` at `close`.
fn matching_open_paren(toks: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0isize;
    let mut i = close;
    loop {
        if toks[i].is_punct(')') {
            depth += 1;
        } else if toks[i].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}

/// Byte offset of the (1-based) line/char-column position.
fn byte_offset(text: &str, line: u32, col: u32) -> Option<usize> {
    let mut offset = 0usize;
    for (n, l) in text.split_inclusive('\n').enumerate() {
        if n + 1 == line as usize {
            let (idx, _) = l.char_indices().nth(col as usize - 1)?;
            return Some(offset + idx);
        }
        offset += l.len();
    }
    None
}

/// Applies byte-range edits (replacement text `?`), back to front.
fn splice(text: &str, edits: &[Edit]) -> String {
    let mut out = text.to_owned();
    let mut sorted: Vec<&Edit> = edits.iter().collect();
    sorted.sort_by_key(|e| std::cmp::Reverse(e.start));
    for e in sorted {
        out.replace_range(e.start..e.end, "?");
    }
    out
}

/// Removes the `chipleak-lint:` directive on each listed (1-based) line:
/// the whole line when the comment owns it, else the trailing comment.
fn strip_directive_lines(text: &str, lines: &[u32]) -> String {
    let mut out = String::with_capacity(text.len());
    for (n, l) in text.split_inclusive('\n').enumerate() {
        let line_no = (n + 1) as u32;
        if !lines.contains(&line_no) {
            out.push_str(l);
            continue;
        }
        let Some(pos) = l.find("//") else {
            out.push_str(l);
            continue;
        };
        if l[..pos].trim().is_empty() {
            continue; // comment owns the line: drop it entirely
        }
        let kept = l[..pos].trim_end();
        out.push_str(kept);
        if l.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("chipleak-lint-fix-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/demo/src")).unwrap();
        std::fs::write(dir.join("Cargo.toml"), "[package]\nname = \"root\"\n").unwrap();
        std::fs::write(
            dir.join("crates/demo/Cargo.toml"),
            "[package]\nname = \"demo\"\n",
        )
        .unwrap();
        dir
    }

    fn lib(dir: &Path) -> std::path::PathBuf {
        dir.join("crates/demo/src/lib.rs")
    }

    #[test]
    fn provable_unwrap_rewritten_to_question_mark() {
        let dir = scratch("provable");
        let src = "\
pub fn parse_num(s: &str) -> Result<u32, ParseError> { s.parse().map_err(|_| ParseError) }
pub fn double(s: &str) -> Result<u32, ParseError> {
    let v = parse_num(s).unwrap();
    Ok(v * 2)
}
";
        std::fs::write(lib(&dir), src).unwrap();
        let applied = apply(&dir).unwrap();
        let out = std::fs::read_to_string(lib(&dir)).unwrap();
        assert!(out.contains("let v = parse_num(s)?;"), "{out}");
        assert!(
            applied.iter().any(|a| a.what.contains("unwrap")),
            "{applied:?}"
        );
    }

    #[test]
    fn expect_with_message_rewritten() {
        let dir = scratch("expect");
        let src = "\
pub fn load() -> Result<u32, Error> { Ok(1) }
pub fn run() -> Result<u32, Error> {
    let v = load().expect(\"load failed (fatal)\");
    Ok(v)
}
";
        std::fs::write(lib(&dir), src).unwrap();
        apply(&dir).unwrap();
        let out = std::fs::read_to_string(lib(&dir)).unwrap();
        assert!(out.contains("let v = load()?;"), "{out}");
    }

    #[test]
    fn mismatched_error_types_left_alone() {
        let dir = scratch("mismatch");
        let src = "\
pub fn load() -> Result<u32, IoError> { Ok(1) }
// chipleak-lint: allow(l5): scratch fixture exercising the non-fix path
pub fn run() -> Result<u32, ParseError> { Ok(load().unwrap()) }
";
        std::fs::write(lib(&dir), src).unwrap();
        apply(&dir).unwrap();
        let out = std::fs::read_to_string(lib(&dir)).unwrap();
        assert!(out.contains(".unwrap()"), "{out}");
    }

    #[test]
    fn method_receivers_left_alone() {
        let dir = scratch("method");
        let src = "\
// chipleak-lint: allow-file(l5, l9): scratch fixture exercising the non-fix path
pub fn run(s: &str) -> Result<u32, Error> { Ok(s.parse::<u32>().unwrap()) }
";
        std::fs::write(lib(&dir), src).unwrap();
        apply(&dir).unwrap();
        let out = std::fs::read_to_string(lib(&dir)).unwrap();
        assert!(out.contains(".unwrap()"), "{out}");
    }

    #[test]
    fn stale_suppressions_deleted_own_line_and_trailing() {
        let dir = scratch("stale");
        let src = "\
// chipleak-lint: allow(l5): nothing fires here any more
pub fn clean() -> u32 { 1 }
pub fn also_clean() -> u32 { 2 } // chipleak-lint: allow(l2): stale too
";
        std::fs::write(lib(&dir), src).unwrap();
        let applied = apply(&dir).unwrap();
        let out = std::fs::read_to_string(lib(&dir)).unwrap();
        assert!(!out.contains("chipleak-lint"), "{out}");
        assert!(out.contains("pub fn also_clean() -> u32 { 2 }\n"), "{out}");
        assert_eq!(applied.len(), 2, "{applied:?}");
    }

    #[test]
    fn err_type_extraction() {
        assert_eq!(
            result_err_type("Result < u32 , ParseError >").as_deref(),
            Some("ParseError")
        );
        assert_eq!(
            result_err_type("Result < Vec < f64 > , Box < dyn Error > >").as_deref(),
            Some("Box < dyn Error >")
        );
        assert_eq!(result_err_type("Option < u32 >"), None);
        assert_eq!(result_err_type("EstimatorResult"), None);
    }
}
