//! Diagnostic engine: rule registry, suppression handling, and rendering.

use crate::source::SourceFile;
use std::fmt::Write as _;

/// Diagnostic severity. Only [`Severity::Error`] fails the lint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory (unused suppressions and similar hygiene findings).
    Warning,
    /// Invariant violation; fails `cargo xtask lint`.
    Error,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a file position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (kebab-case), e.g. `no-ambient-entropy`.
    pub rule: &'static str,
    /// Short rule code, e.g. `L2`.
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong, specifically.
    pub message: String,
    /// How to fix (or legitimately suppress) it.
    pub help: String,
}

/// Per-crate facts rules may consult.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Workspace-relative crate root (`""` for the root package).
    pub rel_root: String,
    /// Whether the crate manifest declares a `parallel` feature.
    pub has_parallel_feature: bool,
}

/// Workspace-level context shared by all rules.
#[derive(Debug, Default)]
pub struct Context {
    /// Crates of the workspace.
    pub crates: Vec<CrateInfo>,
}

impl Context {
    /// `true` when `rel` lives in a crate with a `parallel` feature.
    pub fn in_parallel_crate(&self, rel: &str) -> bool {
        self.crates.iter().any(|c| {
            if c.rel_root.is_empty() {
                // Root package owns `src/**` only.
                c.has_parallel_feature && rel.starts_with("src/")
            } else {
                c.has_parallel_feature && rel.starts_with(&format!("{}/", c.rel_root))
            }
        })
    }
}

/// A lint rule: inspects one file at a time and reports diagnostics.
pub trait Rule {
    /// Kebab-case id used in suppression comments and output.
    fn id(&self) -> &'static str;
    /// Short code (`L1`..`L5`), also accepted in suppressions.
    fn code(&self) -> &'static str;
    /// One-line description for `cargo xtask rules`.
    fn description(&self) -> &'static str;
    /// Runs the rule over one file.
    fn check_file(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>);
}

/// Runs `rules` over `files`, applies suppressions, and returns the
/// surviving diagnostics sorted by position.
pub fn run(rules: &[Box<dyn Rule>], files: &[SourceFile], ctx: &Context) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    for file in files {
        for rule in rules {
            rule.check_file(file, ctx, &mut raw);
        }
    }
    apply_suppressions(files, raw)
}

/// Suppression matching: a directive covers a diagnostic of a named rule
/// when it is file-scoped, on the same line, or on the line directly
/// above. Directives must carry a justification (`: <why>`); unjustified
/// or unused directives are themselves reported.
fn apply_suppressions(files: &[SourceFile], raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut used = vec![Vec::new(); files.len()];
    for (fi, file) in files.iter().enumerate() {
        used[fi] = vec![false; file.suppressions.len()];
    }
    for d in raw {
        let Some(fi) = files.iter().position(|f| f.rel == d.file) else {
            out.push(d);
            continue;
        };
        let file = &files[fi];
        let mut suppressed = false;
        for (si, s) in file.suppressions.iter().enumerate() {
            if !s.covers(d.rule, d.code) {
                continue;
            }
            if !(s.file_scope || s.line == d.line || s.line + 1 == d.line) {
                continue;
            }
            if s.reason.is_empty() {
                continue; // rejected below as unjustified
            }
            used[fi][si] = true;
            suppressed = true;
            break;
        }
        if !suppressed {
            out.push(d);
        }
    }
    for (fi, file) in files.iter().enumerate() {
        for (si, s) in file.suppressions.iter().enumerate() {
            if s.reason.is_empty() {
                out.push(Diagnostic {
                    rule: "lint-suppression",
                    code: "L0",
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "suppression of `{}` has no justification",
                        s.rules.join(", ")
                    ),
                    help: "append `: <why this is sound>` after the closing paren".into(),
                });
            } else if !used[fi][si] {
                out.push(Diagnostic {
                    rule: "lint-suppression",
                    code: "L0",
                    severity: Severity::Warning,
                    file: file.rel.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "unused suppression of `{}` — nothing fires here",
                        s.rules.join(", ")
                    ),
                    help: "delete the stale directive".into(),
                });
            }
        }
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    out
}

/// Renders diagnostics in the familiar `file:line:col` compiler style.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        let _ = writeln!(
            s,
            "{}:{}:{}: {}[{}/{}]: {}",
            d.file,
            d.line,
            d.col,
            d.severity.as_str(),
            d.code,
            d.rule,
            d.message
        );
        if !d.help.is_empty() {
            let _ = writeln!(s, "    = help: {}", d.help);
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    let _ = writeln!(s, "chipleak-lint: {errors} error(s), {warnings} warning(s)");
    s
}

/// Renders diagnostics as a JSON array (stable field order, no deps).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"rule\":{},\"code\":{},\"severity\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"help\":{}}}",
            json_str(d.rule),
            json_str(d.code),
            json_str(d.severity.as_str()),
            json_str(&d.file),
            d.line,
            d.col,
            json_str(&d.message),
            json_str(&d.help),
        );
    }
    s.push_str("]\n");
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    struct FakeRule;
    impl Rule for FakeRule {
        fn id(&self) -> &'static str {
            "fake-rule"
        }
        fn code(&self) -> &'static str {
            "L9"
        }
        fn description(&self) -> &'static str {
            "fires on the ident `bad`"
        }
        fn check_file(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
            for t in &file.tokens {
                if t.is_ident("bad") {
                    out.push(Diagnostic {
                        rule: self.id(),
                        code: self.code(),
                        severity: Severity::Error,
                        file: file.rel.clone(),
                        line: t.line,
                        col: t.col,
                        message: "found `bad`".into(),
                        help: String::new(),
                    });
                }
            }
        }
    }

    fn run_fake(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), src.into(), FileKind::Library);
        run(&[Box::new(FakeRule)], &[f], &Context::default())
    }

    #[test]
    fn fires_and_sorts() {
        let diags = run_fake("fn f() { bad(); }\nfn g() { bad(); }\n");
        assert_eq!(diags.len(), 2);
        assert!(diags[0].line < diags[1].line);
    }

    #[test]
    fn same_line_suppression() {
        let diags = run_fake("fn f() { bad(); } // chipleak-lint: allow(l9): test fixture\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn previous_line_suppression_by_id() {
        let diags =
            run_fake("// chipleak-lint: allow(fake-rule): justified here\nfn f() { bad(); }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn file_scope_suppression_covers_everything() {
        let diags = run_fake(
            "// chipleak-lint: allow-file(l9): fixture-wide\nfn f() { bad(); }\nfn g() { bad(); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unjustified_suppression_rejected() {
        let diags = run_fake("fn f() { bad(); } // chipleak-lint: allow(l9)\n");
        assert_eq!(diags.len(), 2); // original + L0
        assert!(diags.iter().any(|d| d.rule == "lint-suppression"));
    }

    #[test]
    fn unused_suppression_warns() {
        let diags = run_fake("// chipleak-lint: allow(l9): nothing here\nfn f() { ok(); }\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn human_rendering_has_summary() {
        let out = render_human(&[]);
        assert!(out.contains("0 error(s)"));
    }
}
