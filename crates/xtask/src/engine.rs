//! Diagnostic engine: rule registry, suppression handling, and rendering.

use crate::source::SourceFile;
use std::fmt::Write as _;

/// Diagnostic severity. Only [`Severity::Error`] fails the lint run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory (unused suppressions and similar hygiene findings).
    Warning,
    /// Invariant violation; fails `cargo xtask lint`.
    Error,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to a file position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (kebab-case), e.g. `no-ambient-entropy`.
    pub rule: &'static str,
    /// Short rule code, e.g. `L2`.
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong, specifically.
    pub message: String,
    /// How to fix (or legitimately suppress) it.
    pub help: String,
}

/// Per-crate facts rules may consult.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Workspace-relative crate root (`""` for the root package).
    pub rel_root: String,
    /// Package name as declared in the manifest (dashes preserved).
    pub name: String,
    /// Whether the crate manifest declares a `parallel` feature.
    pub has_parallel_feature: bool,
}

/// Workspace-level context shared by all rules.
#[derive(Debug, Default)]
pub struct Context {
    /// Crates of the workspace.
    pub crates: Vec<CrateInfo>,
}

impl Context {
    /// `true` when `rel` lives in a crate with a `parallel` feature.
    pub fn in_parallel_crate(&self, rel: &str) -> bool {
        self.crates.iter().any(|c| {
            if c.rel_root.is_empty() {
                // Root package owns `src/**` only.
                c.has_parallel_feature && rel.starts_with("src/")
            } else {
                c.has_parallel_feature && rel.starts_with(&format!("{}/", c.rel_root))
            }
        })
    }
}

/// The whole-workspace view handed to interprocedural rules: every parsed
/// file plus the call graph built over their fn summaries.
pub struct Workspace<'a> {
    /// All files of the lint run, in stable path order.
    pub files: &'a [SourceFile],
    /// Workspace context (crate facts).
    pub ctx: &'a Context,
    /// Call graph over all fn summaries.
    pub graph: crate::graph::CallGraph,
}

/// A lint rule: inspects one file at a time (and optionally the whole
/// workspace) and reports diagnostics.
pub trait Rule {
    /// Kebab-case id used in suppression comments and output.
    fn id(&self) -> &'static str;
    /// Short code (`L1`..`L11`), also accepted in suppressions.
    fn code(&self) -> &'static str;
    /// One-line description for `cargo xtask rules`.
    fn description(&self) -> &'static str;
    /// Runs the rule over one file. File-scoped rules implement this;
    /// workspace rules leave it as the default no-op.
    fn check_file(&self, _file: &SourceFile, _ctx: &Context, _out: &mut Vec<Diagnostic>) {}
    /// Runs the rule over the whole workspace (call-graph view).
    /// Interprocedural rules (L8–L11) implement this.
    fn check_workspace(&self, _ws: &Workspace<'_>, _out: &mut Vec<Diagnostic>) {}
}

/// Runs `rules` over `files`, applies suppressions, and returns the
/// surviving diagnostics sorted by position.
pub fn run(rules: &[Box<dyn Rule>], files: &[SourceFile], ctx: &Context) -> Vec<Diagnostic> {
    let file_diags = files
        .iter()
        .map(|f| file_rule_diags(rules, f, ctx))
        .collect();
    run_with_file_diags(rules, files, ctx, file_diags)
}

/// [`run`], but with the per-file (file-scoped-rule) diagnostics supplied
/// by the caller — either freshly computed or replayed from the
/// incremental cache. The workspace pass (call graph + L8–L11) always runs
/// fresh: it is cheap relative to the per-file token scans and depends on
/// every file at once.
pub fn run_with_file_diags(
    rules: &[Box<dyn Rule>],
    files: &[SourceFile],
    ctx: &Context,
    file_diags: Vec<Vec<Diagnostic>>,
) -> Vec<Diagnostic> {
    let mut raw: Vec<Diagnostic> = file_diags.into_iter().flatten().collect();
    let ws = Workspace {
        files,
        ctx,
        graph: crate::graph::CallGraph::build(files, &ctx.crates),
    };
    for rule in rules {
        rule.check_workspace(&ws, &mut raw);
    }
    apply_suppressions(files, raw)
}

/// Raw (pre-suppression) diagnostics of the file-scoped rules for one
/// file — the unit the incremental cache stores.
pub fn file_rule_diags(
    rules: &[Box<dyn Rule>],
    file: &SourceFile,
    ctx: &Context,
) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    for rule in rules {
        rule.check_file(file, ctx, &mut raw);
    }
    raw
}

/// Suppression matching: a directive covers a diagnostic of a named rule
/// when it is file-scoped, on the same line, or on the line directly
/// above. Directives must carry a justification (`: <why>`); unjustified
/// or unused directives are themselves reported.
fn apply_suppressions(files: &[SourceFile], raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut used = vec![Vec::new(); files.len()];
    for (fi, file) in files.iter().enumerate() {
        used[fi] = vec![false; file.suppressions.len()];
    }
    for d in raw {
        let Some(fi) = files.iter().position(|f| f.rel == d.file) else {
            out.push(d);
            continue;
        };
        let file = &files[fi];
        let mut suppressed = false;
        for (si, s) in file.suppressions.iter().enumerate() {
            if !s.covers(d.rule, d.code) {
                continue;
            }
            if !(s.file_scope || s.line == d.line || s.line + 1 == d.line) {
                continue;
            }
            if s.reason.is_empty() {
                continue; // rejected below as unjustified
            }
            used[fi][si] = true;
            suppressed = true;
            break;
        }
        if !suppressed {
            out.push(d);
        }
    }
    for (fi, file) in files.iter().enumerate() {
        for (si, s) in file.suppressions.iter().enumerate() {
            if s.reason.is_empty() {
                out.push(Diagnostic {
                    rule: "lint-suppression",
                    code: "L0",
                    severity: Severity::Error,
                    file: file.rel.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "suppression of `{}` has no justification",
                        s.rules.join(", ")
                    ),
                    help: "append `: <why this is sound>` after the closing paren".into(),
                });
            } else if !used[fi][si] && !anchors_panic_site(file, s) {
                out.push(Diagnostic {
                    rule: "lint-suppression",
                    code: "L0",
                    severity: Severity::Warning,
                    file: file.rel.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "unused suppression of `{}` — nothing fires here",
                        s.rules.join(", ")
                    ),
                    help: "delete the stale directive".into(),
                });
            }
        }
    }
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    out
}

/// L9 treats a justified L5/L9 directive on a panic or index site as a
/// locally proven invariant and never emits a diagnostic there — so the
/// textual suppression matching above cannot observe the directive being
/// consumed. A directive anchored to a real panic/index site in the fn
/// summaries is live, not stale: deleting it would re-arm the site.
fn anchors_panic_site(file: &SourceFile, s: &crate::source::Suppression) -> bool {
    if s.reason.is_empty()
        || !(s.covers("no-unwrap-in-library", "L5") || s.covers("panic-freedom", "L9"))
    {
        return false;
    }
    file.summaries.iter().any(|f| {
        f.panics
            .iter()
            .map(|p| p.line)
            .chain(f.indexes.iter().map(|ix| ix.line))
            .any(|line| s.file_scope || s.line == line || s.line + 1 == line)
    })
}

/// Renders diagnostics in the familiar `file:line:col` compiler style.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        let _ = writeln!(
            s,
            "{}:{}:{}: {}[{}/{}]: {}",
            d.file,
            d.line,
            d.col,
            d.severity.as_str(),
            d.code,
            d.rule,
            d.message
        );
        if !d.help.is_empty() {
            let _ = writeln!(s, "    = help: {}", d.help);
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    let _ = writeln!(s, "chipleak-lint: {errors} error(s), {warnings} warning(s)");
    s
}

/// Renders diagnostics as a JSON array (stable field order, no deps).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"rule\":{},\"code\":{},\"severity\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"help\":{}}}",
            json_str(d.rule),
            json_str(d.code),
            json_str(d.severity.as_str()),
            json_str(&d.file),
            d.line,
            d.col,
            json_str(&d.message),
            json_str(&d.help),
        );
    }
    s.push_str("]\n");
    s
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    struct FakeRule;
    impl Rule for FakeRule {
        fn id(&self) -> &'static str {
            "fake-rule"
        }
        fn code(&self) -> &'static str {
            "L9"
        }
        fn description(&self) -> &'static str {
            "fires on the ident `bad`"
        }
        fn check_file(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
            for t in &file.tokens {
                if t.is_ident("bad") {
                    out.push(Diagnostic {
                        rule: self.id(),
                        code: self.code(),
                        severity: Severity::Error,
                        file: file.rel.clone(),
                        line: t.line,
                        col: t.col,
                        message: "found `bad`".into(),
                        help: String::new(),
                    });
                }
            }
        }
    }

    fn run_fake(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("crates/x/src/lib.rs".into(), src.into(), FileKind::Library);
        run(&[Box::new(FakeRule)], &[f], &Context::default())
    }

    #[test]
    fn fires_and_sorts() {
        let diags = run_fake("fn f() { bad(); }\nfn g() { bad(); }\n");
        assert_eq!(diags.len(), 2);
        assert!(diags[0].line < diags[1].line);
    }

    #[test]
    fn same_line_suppression() {
        let diags = run_fake("fn f() { bad(); } // chipleak-lint: allow(l9): test fixture\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn previous_line_suppression_by_id() {
        let diags =
            run_fake("// chipleak-lint: allow(fake-rule): justified here\nfn f() { bad(); }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn file_scope_suppression_covers_everything() {
        let diags = run_fake(
            "// chipleak-lint: allow-file(l9): fixture-wide\nfn f() { bad(); }\nfn g() { bad(); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unjustified_suppression_rejected() {
        let diags = run_fake("fn f() { bad(); } // chipleak-lint: allow(l9)\n");
        assert_eq!(diags.len(), 2); // original + L0
        assert!(diags.iter().any(|d| d.rule == "lint-suppression"));
    }

    #[test]
    fn unused_suppression_warns() {
        let diags = run_fake("// chipleak-lint: allow(l9): nothing here\nfn f() { ok(); }\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn human_rendering_has_summary() {
        let out = render_human(&[]);
        assert!(out.contains("0 error(s)"));
    }
}
