//! Content-hash incremental cache for the file-scoped rule pass.
//!
//! The expensive part of a lint run is the per-file token scans of L1–L7
//! (and L11); the workspace pass over fn summaries is cheap but depends on
//! every file, so it always runs fresh. The cache therefore stores, per
//! file, the FNV-1a hash of its text plus the *raw pre-suppression*
//! diagnostics of the file-scoped rules. On a hit the file's scan is
//! skipped and the cached diagnostics are replayed; suppression matching
//! and L0 hygiene always re-run, so a cache hit can never hide a stale
//! suppression.
//!
//! The whole cache is invalidated by an engine fingerprint covering the
//! xtask version, the registered rule set, and the crate configuration —
//! a rule change or feature-flag change never replays stale results.
//!
//! Default location: `target/chipleak-lint-cache.json` under the
//! workspace root (swept by `cargo clean`, carried by CI's target cache).

use crate::engine::{json_str, Diagnostic, Rule, Severity};
use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One cached file entry.
#[derive(Debug)]
pub struct Entry {
    /// FNV-1a hash of the file text.
    pub hash: String,
    /// Raw (pre-suppression) file-rule diagnostics.
    pub diags: Vec<Diagnostic>,
}

/// FNV-1a 64-bit hash, hex-rendered.
pub fn hash_text(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Engine fingerprint: a rule-set or crate-config change invalidates every
/// entry.
pub fn fingerprint(rules: &[Box<dyn Rule>], crates: &[crate::engine::CrateInfo]) -> String {
    let mut desc = String::from(env!("CARGO_PKG_VERSION"));
    for r in rules {
        let _ = write!(desc, ";{}={}", r.code(), r.id());
    }
    for c in crates {
        let _ = write!(
            desc,
            ";{}:{}:{}",
            c.rel_root, c.name, c.has_parallel_feature
        );
    }
    hash_text(&desc)
}

/// Loads the cache, returning replayable entries keyed by file path.
/// A missing/corrupt file, fingerprint mismatch, or unknown rule id yields
/// an empty map — a cache miss, never an error.
pub fn load(path: &Path, fp: &str, rules: &[Box<dyn Rule>]) -> BTreeMap<String, Entry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let Ok(v) = json::parse(&text) else {
        return BTreeMap::new();
    };
    if v.get("fingerprint").and_then(Value::as_str) != Some(fp) {
        return BTreeMap::new();
    }
    let Some(files) = v.get("files").and_then(Value::as_obj) else {
        return BTreeMap::new();
    };
    let mut out = BTreeMap::new();
    'files: for (rel, entry) in files {
        let Some(hash) = entry.get("hash").and_then(Value::as_str) else {
            continue;
        };
        let Some(raw) = entry.get("diags").and_then(Value::as_arr) else {
            continue;
        };
        let mut diags = Vec::with_capacity(raw.len());
        for d in raw {
            let Some(diag) = diag_from_json(d, rules) else {
                // Unknown rule id: drop the whole file entry so the scan
                // re-runs rather than silently losing a diagnostic.
                continue 'files;
            };
            diags.push(diag);
        }
        out.insert(
            rel.clone(),
            Entry {
                hash: hash.to_owned(),
                diags,
            },
        );
    }
    out
}

/// Persists the cache; IO errors are swallowed (a cache is advisory).
pub fn save(path: &Path, fp: &str, entries: &BTreeMap<String, Entry>) {
    let mut s = String::from("{\"fingerprint\":");
    s.push_str(&json_str(fp));
    s.push_str(",\"files\":{");
    for (i, (rel, e)) in entries.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{}:{{\"hash\":{},\"diags\":[",
            json_str(rel),
            json_str(&e.hash)
        );
        for (j, d) in e.diags.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"rule\":{},\"severity\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"help\":{}}}",
                json_str(d.rule),
                json_str(match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                }),
                json_str(&d.file),
                d.line,
                d.col,
                json_str(&d.message),
                json_str(&d.help),
            );
        }
        s.push_str("]}");
    }
    s.push_str("}}\n");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(path, s);
}

/// Rebuilds a [`Diagnostic`] from its cached JSON, resolving the rule id
/// against the live registry (the `&'static str` fields must point into
/// the running binary).
fn diag_from_json(v: &Value, rules: &[Box<dyn Rule>]) -> Option<Diagnostic> {
    let id = v.get("rule")?.as_str()?;
    let (rule, code) = if id == "lint-suppression" {
        ("lint-suppression", "L0")
    } else {
        let r = rules.iter().find(|r| r.id() == id)?;
        (r.id(), r.code())
    };
    let severity = match v.get("severity")?.as_str()? {
        "error" => Severity::Error,
        "warning" => Severity::Warning,
        _ => return None,
    };
    Some(Diagnostic {
        rule,
        code,
        severity,
        file: v.get("file")?.as_str()?.to_owned(),
        line: v.get("line")?.as_f64()? as u32,
        col: v.get("col")?.as_f64()? as u32,
        message: v.get("message")?.as_str()?.to_owned(),
        help: v.get("help")?.as_str()?.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CrateInfo;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("chipleak-lint-cache-tests");
        let _ = std::fs::create_dir_all(&dir);
        dir.join(name)
    }

    fn sample_entry() -> Entry {
        Entry {
            hash: hash_text("fn f() {}"),
            diags: vec![Diagnostic {
                rule: "no-ambient-entropy",
                code: "L2",
                severity: Severity::Error,
                file: "crates/a/src/lib.rs".into(),
                line: 3,
                col: 7,
                message: "msg \"quoted\"".into(),
                help: "help".into(),
            }],
        }
    }

    #[test]
    fn save_load_round_trip() {
        let path = tmp("round_trip.json");
        let rules = crate::rules::registry();
        let fp = fingerprint(&rules, &[]);
        let mut entries = BTreeMap::new();
        entries.insert("crates/a/src/lib.rs".to_owned(), sample_entry());
        save(&path, &fp, &entries);
        let loaded = load(&path, &fp, &rules);
        assert_eq!(loaded.len(), 1);
        let e = &loaded["crates/a/src/lib.rs"];
        assert_eq!(e.hash, hash_text("fn f() {}"));
        assert_eq!(e.diags.len(), 1);
        assert_eq!(e.diags[0].rule, "no-ambient-entropy");
        assert_eq!(e.diags[0].code, "L2");
        assert_eq!(e.diags[0].message, "msg \"quoted\"");
    }

    #[test]
    fn fingerprint_mismatch_discards() {
        let path = tmp("fp_mismatch.json");
        let rules = crate::rules::registry();
        let mut entries = BTreeMap::new();
        entries.insert("a.rs".to_owned(), sample_entry());
        save(&path, "old-fp", &entries);
        assert!(load(&path, "new-fp", &rules).is_empty());
    }

    #[test]
    fn unknown_rule_id_drops_file_entry() {
        let path = tmp("unknown_rule.json");
        let text = "{\"fingerprint\":\"fp\",\"files\":{\"a.rs\":{\"hash\":\"h\",\"diags\":[\
                    {\"rule\":\"ghost-rule\",\"severity\":\"error\",\"file\":\"a.rs\",\
                    \"line\":1,\"col\":1,\"message\":\"m\",\"help\":\"h\"}]}}}";
        std::fs::write(&path, text).unwrap();
        assert!(load(&path, "fp", &crate::rules::registry()).is_empty());
    }

    #[test]
    fn corrupt_cache_is_a_miss() {
        let path = tmp("corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(load(&path, "fp", &crate::rules::registry()).is_empty());
    }

    #[test]
    fn fingerprint_depends_on_crate_config() {
        let rules = crate::rules::registry();
        let a = fingerprint(
            &rules,
            &[CrateInfo {
                rel_root: "crates/a".into(),
                name: "a".into(),
                has_parallel_feature: true,
            }],
        );
        let b = fingerprint(
            &rules,
            &[CrateInfo {
                rel_root: "crates/a".into(),
                name: "a".into(),
                has_parallel_feature: false,
            }],
        );
        assert_ne!(a, b);
    }
}
