//! Per-file structural model: file classification, suppression
//! directives, `#[cfg(test)]`/`#[test]` extents, `parallel`-feature-gated
//! extents, and `fn` items with signature/body token ranges.

use crate::lexer::{lex, Comment, Tok, TokKind};

/// Coarse role of a file; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Non-test library code — the full rule set applies.
    Library,
    /// Integration tests (`tests/` directories).
    Test,
    /// Benchmarks (`benches/`, the `crates/bench` harness crate).
    Bench,
    /// Binaries and examples (CLI entry points).
    Bin,
    /// Workspace tooling (this crate).
    Tool,
}

impl FileKind {
    /// Classifies a workspace-relative unix-style path.
    pub fn classify(rel: &str) -> FileKind {
        // loomlite is verification tooling like xtask itself: a model
        // checker whose failure-reporting contract *is* panicking, and
        // whose `Condvar` shim hosts the raw `wait` the clients loop over.
        if rel.starts_with("crates/xtask/") || rel.starts_with("crates/loomlite/") {
            FileKind::Tool
        } else if rel.starts_with("tests/") || rel.contains("/tests/") {
            FileKind::Test
        } else if rel.starts_with("crates/bench/") || rel.contains("/benches/") {
            FileKind::Bench
        } else if rel.starts_with("src/bin/")
            || rel.contains("/src/bin/")
            || rel.contains("/examples/")
        {
            FileKind::Bin
        } else {
            FileKind::Library
        }
    }
}

/// A parsed `chipleak-lint:` directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule ids/codes this directive silences (lower-cased).
    pub rules: Vec<String>,
    /// `allow-file(...)` — applies to the whole file.
    pub file_scope: bool,
    /// Line the directive's comment starts on.
    pub line: u32,
    /// Justification text after the closing paren (may be empty — the
    /// engine rejects empty justifications).
    pub reason: String,
}

impl Suppression {
    /// `true` when this directive names the rule (by id or `lN` code).
    pub fn covers(&self, id: &str, code: &str) -> bool {
        self.rules
            .iter()
            .any(|r| r == &id.to_ascii_lowercase() || r == &code.to_ascii_lowercase())
    }
}

/// An inclusive 1-based line range.
pub type LineSpan = (u32, u32);

/// One `fn` item recovered by the scanner.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// `true` when declared with any `pub` visibility.
    pub is_pub: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token range of the signature: `[fn_index, body_open)` (exclusive).
    pub sig: (usize, usize),
    /// Token range of the body including braces, when the fn has one.
    pub body: Option<(usize, usize)>,
}

/// A lexed and structurally scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative unix-style path.
    pub rel: String,
    /// File classification.
    pub kind: FileKind,
    /// Full source text.
    pub text: String,
    /// Code tokens (no comments).
    pub tokens: Vec<Tok>,
    /// Comment stream.
    pub comments: Vec<Comment>,
    /// Parsed `chipleak-lint:` directives.
    pub suppressions: Vec<Suppression>,
    /// Line extents of `#[cfg(test)]` items and `#[test]` functions.
    pub test_spans: Vec<LineSpan>,
    /// Line extents of items/blocks behind a `cfg` that names the
    /// `parallel` feature (positively or via `not(...)`).
    pub gated_spans: Vec<LineSpan>,
    /// All `fn` items (including nested/test ones).
    pub fns: Vec<FnItem>,
    /// Parsed item tree ([`crate::parse`]) — the lossless IR.
    pub items: Vec<crate::parse::Item>,
    /// Per-fn interprocedural summaries extracted from the item tree.
    pub summaries: Vec<crate::summary::FnSummary>,
}

impl SourceFile {
    /// Lexes, scans, and parses one file.
    pub fn parse(rel: String, text: String, kind: FileKind) -> SourceFile {
        let lexed = lex(&text);
        let suppressions = parse_suppressions(&lexed.comments);
        let scan = scan_structure(&lexed.tokens);
        let items = crate::parse::parse(&lexed.tokens);
        let test_spans = scan.test_spans;
        let gated_spans = scan.gated_spans;
        let summaries = crate::summary::summarize(
            &lexed.tokens,
            &items,
            kind,
            &|line| test_spans.iter().any(|&(a, b)| a <= line && line <= b),
            &|line| gated_spans.iter().any(|&(a, b)| a <= line && line <= b),
        );
        SourceFile {
            rel,
            kind,
            text,
            tokens: lexed.tokens,
            comments: lexed.comments,
            suppressions,
            test_spans,
            gated_spans,
            fns: scan.fns,
            items,
            summaries,
        }
    }

    /// `true` when the line falls inside test-only code.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// `true` when the line falls inside a `parallel`-feature-gated extent.
    pub fn in_parallel_gate(&self, line: u32) -> bool {
        self.gated_spans
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// `true` when library-code rules should inspect this line.
    pub fn lintable_library_line(&self, line: u32) -> bool {
        self.kind == FileKind::Library && !self.in_test(line)
    }
}

fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        if c.doc {
            // Doc comments are prose; mentioning the directive syntax in
            // rustdoc must not create a live suppression.
            continue;
        }
        let Some(pos) = c.text.find("chipleak-lint:") else {
            continue;
        };
        let rest = c.text[pos + "chipleak-lint:".len()..].trim_start();
        let file_scope = rest.starts_with("allow-file");
        let rest = rest
            .strip_prefix("allow-file")
            .or_else(|| rest.strip_prefix("allow"))
            .unwrap_or("");
        let Some(open) = rest.find('(') else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules = rest[open + 1..close]
            .split(',')
            .map(|r| r.trim().to_ascii_lowercase())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = rest[close + 1..].trim_start_matches(':').trim().to_owned();
        out.push(Suppression {
            rules,
            file_scope,
            line: c.line,
            reason,
        });
    }
    out
}

#[derive(Debug, Default)]
struct Scan {
    test_spans: Vec<LineSpan>,
    gated_spans: Vec<LineSpan>,
    fns: Vec<FnItem>,
}

/// What an attribute means to the scanner.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AttrClass {
    CfgTest,
    CfgParallel,
    TestFn,
    Other,
}

fn classify_attr(tokens: &[Tok]) -> AttrClass {
    // `tokens` covers the bracketed body: everything inside `#[ ... ]`.
    let Some(first) = tokens.first() else {
        return AttrClass::Other;
    };
    if first.is_ident("cfg") {
        let names_parallel_feature = tokens.windows(3).any(|w| {
            w[0].is_ident("feature")
                && w[1].is_punct('=')
                && w[2].kind == TokKind::Literal
                && w[2].text == "\"parallel\""
        });
        if names_parallel_feature {
            return AttrClass::CfgParallel;
        }
        if tokens.iter().any(|t| t.is_ident("test")) {
            return AttrClass::CfgTest;
        }
        return AttrClass::Other;
    }
    // `#[test]`, `#[tokio::test]`, `#[bench]` and friends.
    if tokens
        .iter()
        .all(|t| t.kind == TokKind::Ident || t.is_punct(':'))
        && tokens
            .last()
            .is_some_and(|t| t.is_ident("test") || t.is_ident("bench"))
    {
        return AttrClass::TestFn;
    }
    AttrClass::Other
}

/// Index just past a balanced `[...]` starting at `open` (which must be `[`).
fn skip_brackets(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('[') {
            depth += 1;
        } else if tokens[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Index just past a balanced `{...}` starting at `open` (which must be `{`).
fn skip_braces(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// From `start`, finds the end (exclusive token index) of the construct an
/// attribute attaches to: skips further attributes, then either a `;`-
/// terminated item or a braced item/block/expression.
fn attached_extent(tokens: &[Tok], mut i: usize) -> usize {
    // Skip stacked attributes.
    while i + 1 < tokens.len() && tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
        i = skip_brackets(tokens, i + 1);
    }
    let mut paren = 0isize;
    let mut bracket = 0isize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('{') && paren == 0 && bracket == 0 {
            return skip_braces(tokens, i);
        } else if t.is_punct(';') && paren == 0 && bracket == 0 {
            return i + 1;
        }
        i += 1;
    }
    tokens.len()
}

fn scan_structure(tokens: &[Tok]) -> Scan {
    let mut scan = Scan::default();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            let body_end = skip_brackets(tokens, i + 1);
            let class = classify_attr(&tokens[i + 2..body_end.saturating_sub(1)]);
            if matches!(
                class,
                AttrClass::CfgTest | AttrClass::CfgParallel | AttrClass::TestFn
            ) {
                let end = attached_extent(tokens, body_end);
                let span = (
                    t.line,
                    tokens.get(end.saturating_sub(1)).map_or(t.line, |e| e.line),
                );
                match class {
                    AttrClass::CfgTest | AttrClass::TestFn => scan.test_spans.push(span),
                    AttrClass::CfgParallel => scan.gated_spans.push(span),
                    AttrClass::Other => {}
                }
            }
            i = body_end;
            continue;
        }
        if t.is_ident("fn") {
            if let Some(name_tok) = tokens.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    let is_pub = visibility_is_pub(tokens, i);
                    let (sig_end, body) = fn_extent(tokens, i);
                    scan.fns.push(FnItem {
                        name: name_tok.text.clone(),
                        is_pub,
                        line: t.line,
                        sig: (i, sig_end),
                        body,
                    });
                }
            }
        }
        i += 1;
    }
    scan
}

/// Looks backwards from the `fn` keyword for a `pub` in the same
/// declaration header (stopping at tokens that end a previous item).
fn visibility_is_pub(tokens: &[Tok], fn_index: usize) -> bool {
    let mut i = fn_index;
    let mut paren = 0isize;
    while i > 0 {
        i -= 1;
        let t = &tokens[i];
        if t.is_punct(')') {
            paren += 1;
            continue;
        }
        if t.is_punct('(') {
            paren -= 1;
            continue;
        }
        if paren > 0 {
            continue; // inside `pub(crate)` etc.
        }
        if t.is_ident("pub") {
            return true;
        }
        let header_token = t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern")
            || t.kind == TokKind::Literal; // ABI string in `extern "C"`
        if !header_token {
            return false;
        }
    }
    false
}

/// Signature end (exclusive) and body token range of the fn at `fn_index`.
fn fn_extent(tokens: &[Tok], fn_index: usize) -> (usize, Option<(usize, usize)>) {
    let mut paren = 0isize;
    let mut i = fn_index + 1;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('{') && paren == 0 {
            return (i, Some((i, skip_braces(tokens, i))));
        } else if t.is_punct(';') && paren == 0 {
            return (i, None); // trait method declaration
        }
        i += 1;
    }
    (tokens.len(), None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(src: &str) -> SourceFile {
        SourceFile::parse(
            "crates/demo/src/lib.rs".into(),
            src.into(),
            FileKind::Library,
        )
    }

    #[test]
    fn classify_paths() {
        assert_eq!(
            FileKind::classify("crates/core/src/pairwise.rs"),
            FileKind::Library
        );
        assert_eq!(
            FileKind::classify("crates/core/tests/determinism.rs"),
            FileKind::Test
        );
        assert_eq!(FileKind::classify("tests/determinism.rs"), FileKind::Test);
        assert_eq!(
            FileKind::classify("crates/bench/src/bin/fig2.rs"),
            FileKind::Bench
        );
        assert_eq!(
            FileKind::classify("crates/numeric/benches/fft.rs"),
            FileKind::Bench
        );
        assert_eq!(FileKind::classify("src/bin/chipleak.rs"), FileKind::Bin);
        assert_eq!(FileKind::classify("src/lib.rs"), FileKind::Library);
        assert_eq!(
            FileKind::classify("crates/xtask/src/main.rs"),
            FileKind::Tool
        );
    }

    #[test]
    fn cfg_test_module_extent_covers_its_lines() {
        let f = lib_file(
            "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\npub fn after() {}\n",
        );
        assert!(!f.in_test(1));
        assert!(f.in_test(3));
        assert!(f.in_test(4));
        assert!(!f.in_test(6));
    }

    #[test]
    fn test_attr_fn_extent() {
        let f = lib_file("#[test]\nfn check() {\n    body();\n}\nfn other() {}\n");
        assert!(f.in_test(2));
        assert!(f.in_test(3));
        assert!(!f.in_test(5));
    }

    #[test]
    fn parallel_gate_extents_including_not() {
        let src = "#[cfg(feature = \"parallel\")]\nfn spawny() {\n    x();\n}\n\
                   #[cfg(not(feature = \"parallel\"))]\nfn serial() {}\nfn open() {}\n";
        let f = lib_file(src);
        assert!(f.in_parallel_gate(3));
        assert!(f.in_parallel_gate(6));
        assert!(!f.in_parallel_gate(7));
    }

    #[test]
    fn statement_level_cfg_block_is_gated() {
        let src = "fn f() {\n    serial();\n    #[cfg(feature = \"parallel\")]\n    {\n        spawn();\n    }\n    more();\n}\n";
        let f = lib_file(src);
        assert!(f.in_parallel_gate(5));
        assert!(!f.in_parallel_gate(2));
        assert!(!f.in_parallel_gate(7));
    }

    #[test]
    fn fn_items_with_visibility_and_bodies() {
        let src =
            "pub fn a(x: (i32, i32)) -> Vec<f64> { inner() }\nfn b();\npub(crate) fn c() {}\n";
        let f = lib_file(src);
        let names: Vec<_> = f.fns.iter().map(|x| (x.name.as_str(), x.is_pub)).collect();
        assert_eq!(names, [("a", true), ("b", false), ("c", true)]);
        assert!(f.fns[0].body.is_some());
        assert!(f.fns[1].body.is_none());
    }

    #[test]
    fn suppression_parsing_roundtrip() {
        let src =
            "// chipleak-lint: allow(l5, no-unwrap-in-library): invariant, tested exhaustively\n\
                   // chipleak-lint: allow-file(L1): lookup-only map\n\
                   // chipleak-lint: allow(l2)\n";
        let f = lib_file(src);
        assert_eq!(f.suppressions.len(), 3);
        assert!(f.suppressions[0].covers("no-unwrap-in-library", "L5"));
        assert!(f.suppressions[0].covers("anything", "L5"));
        assert!(!f.suppressions[0].covers("other", "L2"));
        assert!(f.suppressions[1].file_scope);
        assert!(f.suppressions[1].covers("no-nondeterministic-iteration", "L1"));
        assert!(f.suppressions[2].reason.is_empty());
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let src = "//! Syntax: `// chipleak-lint: allow(l5): reason`.\n\
                   /// Also `// chipleak-lint: allow-file(l1): reason`.\n\
                   pub fn documented() {}\n";
        let f = lib_file(src);
        assert!(f.suppressions.is_empty(), "{:?}", f.suppressions);
    }

    #[test]
    fn doc_comment_examples_are_not_code() {
        let src =
            "/// ```\n/// let x = map.keys();\n/// x.unwrap();\n/// ```\npub fn documented() {}\n";
        let f = lib_file(src);
        assert!(f.tokens.iter().all(|t| t.text != "unwrap"));
    }
}
