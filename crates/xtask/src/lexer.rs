//! A small Rust lexer: code tokens with line/column spans, plus the
//! comment stream (comments carry the suppression directives).
//!
//! Handles the full literal grammar the rules can encounter — nested block
//! comments, string/raw-string/byte-string/char literals, lifetimes,
//! numbers with exponents and suffixes — so that rule patterns never match
//! inside text. Doc comments (and therefore doctest code) land in the
//! comment stream, which automatically exempts examples from code rules.

/// Kind of a code token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (compound operators arrive as
    /// consecutive tokens: `+=` is `+` then `=`).
    Punct,
    /// Any literal: number, string, char, byte string.
    Literal,
    /// A lifetime such as `'a` (label or bound).
    Lifetime,
}

/// One code token with its source position (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Tok {
    /// `true` for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// One comment (line or block) with its position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body without the `//`/`/*` markers, trimmed.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (same as `line` for `//`).
    pub end_line: u32,
    /// `true` when only whitespace precedes the comment on its line.
    pub own_line: bool,
    /// `true` for doc comments (`///`, `//!`, `/** */`, `/*! */`).
    pub doc: bool,
}

/// Lexer output: the code token stream and the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source text. Never fails: unknown bytes become punctuation.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    i: usize,
    line: u32,
    col: u32,
    line_has_code: bool,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            chars: src.chars().collect(),
            src,
            i: 0,
            line: 1,
            col: 1,
            line_has_code: false,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.line_has_code = false;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, col),
                'r' if matches!(self.peek(1), Some('"') | Some('#'))
                    && self.raw_string_ahead(1) =>
                {
                    self.raw_string(line, col)
                }
                'b' if self.peek(1) == Some('"') => self.string_prefixed(line, col),
                'b' if self.peek(1) == Some('\'') => self.char_prefixed(line, col),
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.raw_string(line, col)
                }
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    let c = self.bump().unwrap_or(' ');
                    self.push(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.line_has_code = true;
        self.out.tokens.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    /// `r`/`br` raw-string lookahead: `#`* followed by `"`.
    fn raw_string_ahead(&self, mut ahead: usize) -> bool {
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        let own_line = !self.line_has_code;
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let raw: String = self.chars[start..self.i].iter().collect();
        let doc = raw.starts_with("///") || raw.starts_with("//!");
        let body = raw
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim()
            .to_owned();
        self.out.comments.push(Comment {
            text: body,
            line,
            end_line: line,
            own_line,
            doc,
        });
    }

    fn block_comment(&mut self, line: u32) {
        let own_line = !self.line_has_code;
        let start = self.i;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let raw: String = self.chars[start..self.i].iter().collect();
        let doc = raw.starts_with("/**") || raw.starts_with("/*!");
        let body = raw
            .trim_start_matches("/*")
            .trim_end_matches("*/")
            .trim()
            .to_owned();
        self.out.comments.push(Comment {
            text: body,
            line,
            end_line: self.line,
            own_line,
            doc,
        });
    }

    fn string(&mut self, line: u32, col: u32) {
        let start = self.i;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokKind::Literal, text, line, col);
    }

    fn string_prefixed(&mut self, line: u32, col: u32) {
        self.bump(); // the b prefix
        let start = self.i - 1;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokKind::Literal, text, line, col);
    }

    fn raw_string(&mut self, line: u32, col: u32) {
        let start = self.i;
        while matches!(self.peek(0), Some('r') | Some('b')) {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for _ in 0..hashes {
                    if self.peek(0) == Some('#') {
                        self.bump();
                    } else {
                        continue 'outer;
                    }
                }
                break;
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokKind::Literal, text, line, col);
    }

    fn char_prefixed(&mut self, line: u32, col: u32) {
        self.bump(); // b
        self.char_literal_body(self.i - 1, line, col);
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // `'x'` / `'\n'` are char literals; `'a` (no closing quote) is a
        // lifetime or loop label.
        let is_char = matches!(
            (self.peek(1), self.peek(2)),
            (Some('\\'), _) | (Some(_), Some('\''))
        );
        if is_char {
            self.char_literal_body(self.i, line, col);
        } else {
            let start = self.i;
            self.bump(); // quote
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let text: String = self.chars[start..self.i].iter().collect();
            self.push(TokKind::Lifetime, text, line, col);
        }
    }

    fn char_literal_body(&mut self, start: usize, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokKind::Literal, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.i;
        self.bump();
        while let Some(c) = self.peek(0) {
            match c {
                '0'..='9' | 'a'..='z' | 'A'..='Z' | '_' => {
                    // `1e-9` / `2E+4`: the sign belongs to the literal.
                    let is_exp = (c == 'e' || c == 'E')
                        && matches!(self.peek(1), Some('+') | Some('-'))
                        && self.peek(2).is_some_and(|d| d.is_ascii_digit());
                    self.bump();
                    if is_exp {
                        self.bump(); // sign
                    }
                }
                '.' => {
                    // A digit after the dot keeps it in the literal;
                    // `0..n` and `1.max(x)` end the number at the dot.
                    if self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(TokKind::Literal, text, line, col);
    }
}

// Keep a borrow of the original source so `Lexer` stays generic-free; the
// field is currently only read by tests/debugging.
impl std::fmt::Debug for Lexer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Lexer at {}:{} of {} bytes",
            self.line,
            self.col,
            self.src.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            texts("let x = a.b_c + 1e-9;"),
            ["let", "x", "=", "a", ".", "b_c", "+", "1e-9", ";"]
        );
    }

    #[test]
    fn ranges_and_method_calls_split_correctly() {
        assert_eq!(texts("0..n"), ["0", ".", ".", "n"]);
        assert_eq!(texts("1.5.max(2.0)"), ["1.5", ".", "max", "(", "2.0", ")"]);
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        let toks = lex(r#"f("let x = HashMap::new()", 'x', '\n')"#);
        let idents: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["f"]);
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        let toks = lex(r##"let s = r#"a "quoted" HashMap"#; let b = b"bytes";"##);
        let idents: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "let", "b"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) {}");
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
    }

    #[test]
    fn comments_collected_with_positions() {
        let src = "let a = 1; // trailing\n// own line\n/* block\nspans */ let b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 3);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[2].line, 3);
        assert_eq!(lexed.comments[2].end_line, 4);
        assert_eq!(lexed.comments[0].text, "trailing");
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            ["let", "x", "=", "1", ";"]
        );
    }

    #[test]
    fn line_and_column_tracking() {
        let lexed = lex("a\n  bb\n");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }
}
