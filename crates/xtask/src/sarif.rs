//! SARIF 2.1.0 output for CI code scanning.
//!
//! Emits the subset of the SARIF schema GitHub code scanning consumes:
//! one run with a `tool.driver` (name, version, rule metadata) and one
//! `result` per diagnostic with `ruleId`/`ruleIndex`, a `level`, a
//! `message.text`, and a physical location (`uri` + `region`) rooted at
//! `%SRCROOT%`. The shape is pinned by `tests/sarif_shape.rs` through the
//! in-crate JSON parser.

use crate::engine::{json_str, Diagnostic, Rule, Severity};
use std::fmt::Write as _;

/// SARIF version emitted.
pub const SARIF_VERSION: &str = "2.1.0";

/// Schema URI advertised in `$schema`.
pub const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Renders diagnostics as a single-run SARIF 2.1.0 log.
pub fn render(rules: &[Box<dyn Rule>], diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    s.push_str("{\"$schema\":");
    s.push_str(&json_str(SARIF_SCHEMA));
    let _ = write!(s, ",\"version\":{}", json_str(SARIF_VERSION));
    s.push_str(",\"runs\":[{\"tool\":{\"driver\":{");
    let _ = write!(
        s,
        "\"name\":\"chipleak-lint\",\"version\":{},\"informationUri\":{},\"rules\":[",
        json_str(env!("CARGO_PKG_VERSION")),
        json_str("https://github.com/fullchip-leakage/fullchip-leakage#chipleak-lint"),
    );
    // Rule metadata, plus the engine's own L0 hygiene rule.
    let mut rule_ids: Vec<(&str, &str)> = rules.iter().map(|r| (r.id(), r.description())).collect();
    rule_ids.push((
        "lint-suppression",
        "suppressions must be justified and live (L0)",
    ));
    for (i, (id, desc)) in rule_ids.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\"defaultConfiguration\":{{\"level\":\"error\"}}}}",
            json_str(id),
            json_str(desc),
        );
    }
    s.push_str("]}},\"results\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let rule_index = rule_ids
            .iter()
            .position(|(id, _)| *id == d.rule)
            .unwrap_or(rule_ids.len() - 1);
        let level = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let _ = write!(
            s,
            "{{\"ruleId\":{},\"ruleIndex\":{rule_index},\"level\":\"{level}\",\
             \"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":{},\"uriBaseId\":\"%SRCROOT%\"}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            json_str(d.rule),
            json_str(&format!("{} [{}] help: {}", d.message, d.code, d.help)),
            json_str(&d.file),
            d.line.max(1),
            d.col.max(1),
        );
    }
    s.push_str("]}]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic {
            rule: "entropy-taint",
            code: "L8",
            severity: Severity::Error,
            file: "crates/core/src/estimator/mod.rs".into(),
            line: 12,
            col: 5,
            message: "taints \"output\"".into(),
            help: "thread a seed".into(),
        }]
    }

    #[test]
    fn output_is_valid_json_with_sarif_shape() {
        let out = render(&crate::rules::registry(), &sample());
        let v = json::parse(&out).expect("valid JSON");
        assert_eq!(v.get("version").unwrap().as_str(), Some(SARIF_VERSION));
        let run = &v.get("runs").unwrap().as_arr().unwrap()[0];
        let driver = run.get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.get("name").unwrap().as_str(), Some("chipleak-lint"));
        let rules = driver.get("rules").unwrap().as_arr().unwrap();
        assert!(rules.len() >= 12, "11 rules + L0");
        let results = run.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.get("ruleId").unwrap().as_str(), Some("entropy-taint"));
        let idx = r.get("ruleIndex").unwrap().as_f64().unwrap() as usize;
        assert_eq!(
            rules[idx].get("id").unwrap().as_str(),
            Some("entropy-taint")
        );
        let loc = &r.get("locations").unwrap().as_arr().unwrap()[0];
        let phys = loc.get("physicalLocation").unwrap();
        assert_eq!(
            phys.get("artifactLocation")
                .unwrap()
                .get("uri")
                .unwrap()
                .as_str(),
            Some("crates/core/src/estimator/mod.rs")
        );
        assert_eq!(
            phys.get("region")
                .unwrap()
                .get("startLine")
                .unwrap()
                .as_f64(),
            Some(12.0)
        );
    }

    #[test]
    fn empty_diags_still_valid() {
        let out = render(&crate::rules::registry(), &[]);
        let v = json::parse(&out).expect("valid JSON");
        let run = &v.get("runs").unwrap().as_arr().unwrap()[0];
        assert_eq!(run.get("results").unwrap().as_arr().unwrap().len(), 0);
    }
}
