// Fixture: L4 must fire — default fn drifts from its `_with` sibling, and
// thread primitives appear outside a `parallel` cfg gate.
pub fn stats_with(xs: &[f64], par: Parallelism) -> f64 {
    drop(par);
    xs.len() as f64
}

pub fn stats(xs: &[f64]) -> f64 {
    // Reimplements the serial path instead of delegating.
    xs.len() as f64
}

pub fn spawn_workers() {
    std::thread::scope(|s| {
        let _ = s;
    });
}
