// Fixture: L6 must stay quiet — every skipped estimator leaves a trace.
pub fn estimate_all(ins: Ins) -> Result<Vec<f64>, Error> {
    let mut out = Vec::new();
    match polar(ins) {
        Ok(e) => out.push(e),
        Err(Error::NotApplicable { .. }) => {
            ins.add("core.estimate_all.polar_skipped", 1);
        }
        Err(e) => return Err(e),
    }
    match integral(ins) {
        Ok(e) => out.push(e),
        Err(e) => return Err(e),
    }
    Ok(out)
}
