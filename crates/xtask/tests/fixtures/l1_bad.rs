// Fixture: L1 must fire — iterating hash-ordered collections in library code.
use std::collections::{HashMap, HashSet};

pub struct Table {
    cells: HashMap<u32, f64>,
}

impl Table {
    pub fn total(&self) -> f64 {
        let mut total = 0;
        for (_, v) in self.cells.iter() {
            total += *v as u64;
        }
        total as f64
    }
}

pub fn ids(seen: &HashSet<u32>) -> Vec<u32> {
    seen.iter().copied().collect()
}
