// Fixture: L5 must fire — panicking paths in library code.
pub fn head(xs: &[f64]) -> f64 {
    let first = xs.first().unwrap();
    if !first.is_finite() {
        panic!("non-finite head");
    }
    *first
}

pub fn lookup(map: &std::collections::BTreeMap<u32, f64>, id: u32) -> f64 {
    *map.get(&id).expect("id registered")
}
