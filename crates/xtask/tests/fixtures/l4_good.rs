// Fixture: L4 must stay quiet — the default routes through `_with` and
// thread use is feature-gated.
pub fn stats_with(xs: &[f64], par: Parallelism) -> f64 {
    drop(par);
    xs.len() as f64
}

pub fn stats(xs: &[f64]) -> f64 {
    stats_with(xs, Parallelism::auto())
}

#[cfg(feature = "parallel")]
pub fn spawn_workers() {
    std::thread::scope(|s| {
        let _ = s;
    });
}
