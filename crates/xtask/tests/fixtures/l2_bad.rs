// Fixture: L2 must fire — ambient entropy and wall-clock reads.
pub fn sample() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
