//! L13 fixture: slow work under a live guard — a loop-bearing
//! characterization kernel invoked while the family mutex is held, and
//! a blocking channel receive under the same lock.

pub struct Family {
    inner: std::sync::Mutex<f64>,
}

fn characterize(xs: &[f64]) -> f64 {
    let mut m = 0.0f64;
    for i in 0..xs.len() {
        m = m.max(xs[i]);
    }
    m
}

impl Family {
    pub fn fill(&self, xs: &[f64]) {
        let mut g = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *g = characterize(xs);
    }

    pub fn drain(&self, rx: &std::sync::mpsc::Receiver<f64>) {
        let mut g = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *g = rx.recv().unwrap_or(0.0);
    }
}
