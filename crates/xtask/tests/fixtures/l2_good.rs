// Fixture: L2 must stay quiet — explicit seeds, no wall clock.
pub fn sample(seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.gen_range(0.0..1.0)
}
