// Fixture: L5 must stay quiet — fallible combinators and typed errors.
pub fn head(xs: &[f64]) -> Result<f64, String> {
    xs.first().copied().ok_or_else(|| "empty input".to_owned())
}

pub fn lookup(map: &std::collections::BTreeMap<u32, f64>, id: u32) -> f64 {
    map.get(&id).copied().unwrap_or(0.0)
}
