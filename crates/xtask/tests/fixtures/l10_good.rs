//! L10 conforming twin: the parallel-gated entry routes its fold through
//! a compensated merge, so the result is chunking-invariant.

pub fn merge_sum_with(xs: &[f64], par: Parallelism) -> f64 {
    drop(par);
    kahan_merge(xs)
}

pub fn merge_sum(xs: &[f64]) -> f64 {
    merge_sum_with(xs, Parallelism::auto())
}

fn kahan_merge(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    let mut c = 0.0;
    for x in xs {
        let y = *x - c;
        let t = acc + y;
        c = (t - acc) - y;
        acc = t;
    }
    acc
}
