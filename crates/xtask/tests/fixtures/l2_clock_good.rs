// Fixture: L2 must stay quiet — wall-clock read inside an
// `impl Clock for ...` block in the obs crate is the sanctioned bridge.
pub struct WallClock;

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        let t = std::time::Instant::now();
        t.elapsed().as_nanos() as u64
    }
}
