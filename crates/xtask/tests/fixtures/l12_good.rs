//! L12 conforming twin: both paths take `a` before `b`, so the lock
//! graph has one direction only and stays acyclic.

pub struct Pair {
    a: std::sync::Mutex<u64>,
    b: std::sync::Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self
            .a
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let gb = self
            .b
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *ga ^ *gb
    }

    pub fn backward(&self) -> u64 {
        let ga = self
            .a
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let gb = self
            .b
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *gb ^ *ga
    }
}
