//! L9 conforming twin: typed errors for fallible access, a bounds-tied
//! loop binder for the provable index.

pub fn estimate_resilient(xs: &[f64], k: usize) -> Result<f64, String> {
    let v = xs
        .get(k)
        .copied()
        .ok_or_else(|| format!("site index {k} out of range"))?;
    Ok(v + checked_last(xs)? + peak(xs))
}

fn checked_last(xs: &[f64]) -> Result<f64, String> {
    xs.last().copied().ok_or_else(|| "empty slice".to_owned())
}

fn peak(xs: &[f64]) -> f64 {
    let mut m = f64::NEG_INFINITY;
    for i in 0..xs.len() {
        m = m.max(xs[i]);
    }
    m
}
