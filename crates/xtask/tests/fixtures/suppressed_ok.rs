// Fixture: a justified suppression silences the rule without L0 noise.
pub fn head(xs: &[f64]) -> f64 {
    // chipleak-lint: allow(no-unwrap-in-library): caller guarantees non-empty via debug_assert
    let first = xs.first().unwrap();
    *first
}
