// Fixture: L6 must fire — Err arms that swallow failures tracelessly.
pub fn estimate_all(ins: Ins) -> Vec<f64> {
    let mut out = Vec::new();
    match polar(ins) {
        Ok(e) => out.push(e),
        Err(Error::NotApplicable { .. }) => {}
    }
    match integral(ins) {
        Ok(e) => out.push(e),
        Err(_) => (),
    }
    out
}
