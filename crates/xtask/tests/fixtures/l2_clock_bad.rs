// Fixture: L2 must fire — a raw wall-clock read in the obs crate that is
// NOT inside an `impl Clock for ...` block gets no exemption.
pub fn sneak_timestamp() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        // Fine on its own: inside the Clock impl.
        std::time::Instant::now().elapsed().as_nanos() as u64
    }
}
