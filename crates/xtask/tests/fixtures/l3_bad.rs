// Fixture: L3 must fire — naive summation in estimator-scope code.
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

pub fn total(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc
}
