// Fixture: a suppression that covers nothing is reported as an L0 warning.
pub fn head(xs: &[f64]) -> Option<f64> {
    // chipleak-lint: allow(no-unwrap-in-library): stale — the unwrap was removed
    xs.first().copied()
}
