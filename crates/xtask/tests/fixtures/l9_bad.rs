//! L9 non-conforming twin: a panic site and an unprovable slice index,
//! both reachable from the resilient ladder's public surface.

pub fn estimate_resilient(xs: &[f64], k: usize) -> f64 {
    pick(xs, k) + last(xs)
}

fn pick(xs: &[f64], k: usize) -> f64 {
    xs[k]
}

fn last(xs: &[f64]) -> f64 {
    xs.last().copied().unwrap()
}
