//! L14 fixture: re-acquiring a held lock — once directly in the same
//! fn, once through a call chain (`snapshot_and_bump` holds `state`
//! and calls `bump`, which locks it again: self-deadlock).

pub struct Registry {
    state: std::sync::Mutex<u64>,
}

impl Registry {
    pub fn bump(&self) {
        let mut g = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *g = g.saturating_add(1);
    }

    pub fn snapshot_and_bump(&self) -> u64 {
        let g = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.bump();
        *g
    }

    pub fn double_lock(&self) -> u64 {
        let a = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let b = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *a ^ *b
    }
}
