//! L14 conforming twin: the guard is dropped before any path that
//! locks again, and nested helpers receive the guard instead of
//! re-locking.

pub struct Registry {
    state: std::sync::Mutex<u64>,
}

fn bump_locked(g: &mut u64) {
    *g = g.saturating_add(1);
}

impl Registry {
    pub fn bump(&self) {
        let mut g = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        bump_locked(&mut g);
    }

    pub fn snapshot_then_bump(&self) -> u64 {
        let g = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let v = *g;
        drop(g);
        self.bump();
        v
    }
}
