//! L15 conforming twin: the wait sits in a `while` that re-checks the
//! predicate, or uses `wait_while`, which re-checks internally.

pub struct Gate {
    ready: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

impl Gate {
    pub fn pass(&self) {
        let mut g = self
            .ready
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*g {
            g = self
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *g = false;
    }

    pub fn pass_predicate(&self) {
        let guard = self
            .ready
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut g = self
            .cv
            .wait_while(guard, |ready| !*ready)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *g = false;
    }
}
