//! L13 conforming twin: compute first, publish under the lock — the
//! guard region contains only the O(1) store.

pub struct Family {
    inner: std::sync::Mutex<f64>,
}

fn characterize(xs: &[f64]) -> f64 {
    let mut m = 0.0f64;
    for i in 0..xs.len() {
        m = m.max(xs[i]);
    }
    m
}

impl Family {
    pub fn fill(&self, xs: &[f64]) {
        let v = characterize(xs);
        let mut g = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *g = v;
    }

    pub fn drain(&self, rx: &std::sync::mpsc::Receiver<f64>) {
        let v = rx.recv().unwrap_or(0.0);
        let mut g = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *g = v;
    }
}
