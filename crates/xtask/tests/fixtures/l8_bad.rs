//! L8 non-conforming twin: the estimator's public surface reaches an
//! ambient entropy read two helpers down — invisible to L2's per-file
//! scan of the estimator, visible to the call-graph walk.

pub fn estimate_total(xs: &[f64]) -> f64 {
    xs.len() as f64 * perturbation()
}

fn perturbation() -> f64 {
    noise_source()
}

fn noise_source() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
