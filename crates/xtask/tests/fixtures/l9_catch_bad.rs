//! L9 non-conforming twin for the supervisor escape: `resume_unwind`
//! re-raises the caught payload, so the catch is a passthrough rather
//! than a sink and the escape is withdrawn for the whole fn — and the
//! trailing index sits outside the parens, never supervised at all.

pub fn estimate_resilient(xs: &[f64], k: usize) -> f64 {
    let v = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| risky(xs, k)))
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
    v + xs[k + 1]
}

fn risky(xs: &[f64], k: usize) -> f64 {
    xs[k]
}
