// Fixture: L3 must stay quiet — Kahan-routed accumulation, integer counters.
pub fn mean(xs: &[f64]) -> f64 {
    kahan_sum(xs.iter().copied()) / xs.len() as f64
}

pub fn count_nonzero(xs: &[f64]) -> usize {
    let mut n = 0;
    for x in xs {
        if *x != 0.0 {
            n += 1;
        }
    }
    n
}

pub fn total(acc: KahanSum) -> f64 {
    acc.sum()
}
