//! L12 fixture: AB/BA lock-order inversion — `forward` nests `b` under
//! `a` while `backward` nests `a` under `b`, so two threads can each
//! hold one lock and wait forever for the other.

pub struct Pair {
    a: std::sync::Mutex<u64>,
    b: std::sync::Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self
            .a
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let gb = self
            .b
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *ga ^ *gb
    }

    pub fn backward(&self) -> u64 {
        let gb = self
            .b
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ga = self
            .a
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *ga ^ *gb
    }
}
