//! L7 violations: a public tiled kernel with no same-file serial twin and
//! no route to the workspace thread-count policy.

pub fn pair_sum_tiled(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += *x;
    }
    acc
}
