//! L11 non-conforming twin: one `_with` variant drifts from its base
//! signature, another is a variant in name only.

pub fn frob(xs: &[f64], n: usize) -> f64 {
    frob_with(xs, Parallelism::auto())
}

pub fn frob_with(xs: &[f64], par: Parallelism) -> f64 {
    drop(par);
    xs.len() as f64
}

pub fn quux(xs: &[f64]) -> f64 {
    quux_with(xs)
}

pub fn quux_with(xs: &[f64]) -> f64 {
    xs.len() as f64
}
