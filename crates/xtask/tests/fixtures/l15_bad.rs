//! L15 fixture: `Condvar::wait`/`wait_timeout` outside a predicate
//! loop — a spurious wakeup (or a notify racing the predicate store)
//! resumes with the condition still false.

pub struct Gate {
    ready: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

impl Gate {
    pub fn pass(&self) {
        let mut g = self
            .ready
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !*g {
            g = self
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *g = false;
    }

    pub fn pass_briefly(&self) {
        let g = self
            .ready
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _r = self
            .cv
            .wait_timeout(g, std::time::Duration::from_millis(10))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}
