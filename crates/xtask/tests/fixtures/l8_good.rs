//! L8 conforming twin: entropy is injected — every helper only touches
//! the caller-provided seeded source, so no ambient read is reachable.

pub fn estimate_total<R: Rng>(xs: &[f64], rng: &mut R) -> f64 {
    xs.len() as f64 * perturbation(rng)
}

fn perturbation<R: Rng>(rng: &mut R) -> f64 {
    rng.gen()
}
