//! L10 non-conforming twin: the parallel-gated entry folds its partial
//! sums through a bare `+=` helper — merged bits now depend on chunking.

pub fn merge_sum_with(xs: &[f64], par: Parallelism) -> f64 {
    drop(par);
    fold_parts(xs)
}

pub fn merge_sum(xs: &[f64]) -> f64 {
    merge_sum_with(xs, Parallelism::auto())
}

fn fold_parts(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += *x;
    }
    acc
}
