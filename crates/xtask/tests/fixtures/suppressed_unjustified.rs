// Fixture: a bare suppression with no `: <why>` must not silence anything
// and must itself be reported as an L0 error.
pub fn head(xs: &[f64]) -> f64 {
    // chipleak-lint: allow(no-unwrap-in-library)
    let first = xs.first().unwrap();
    *first
}
