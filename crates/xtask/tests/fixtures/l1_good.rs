// Fixture: L1 must stay quiet — ordered collections and lookup-only hashing.
use std::collections::{BTreeMap, HashMap};

pub struct Table {
    cells: BTreeMap<u32, f64>,
    index: HashMap<u32, usize>,
}

impl Table {
    pub fn total(&self) -> f64 {
        let mut total = 0;
        for (_, v) in self.cells.iter() {
            total += *v as u64;
        }
        total as f64
    }

    pub fn lookup(&self, id: u32) -> Option<usize> {
        self.index.get(&id).copied()
    }
}
