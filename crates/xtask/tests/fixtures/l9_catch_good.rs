//! L9 conforming twin for the supervisor escape: a `catch_unwind`
//! argument list is a legitimate panic sink, so the unprovable indexes
//! it wraps — inline in the closure and down the wrapped call chain —
//! stay unreported as long as the payload is converted to a typed error
//! rather than re-raised. (Indexes, not unwraps: L5's textual scan is a
//! separate promise that no supervisor can waive.)

pub fn estimate_resilient(xs: &[f64], k: usize) -> Result<f64, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| xs[k] + risky(xs, k)))
        .map_err(|_| "worker panicked while executing this request; worker respawned".to_owned())
}

fn risky(xs: &[f64], k: usize) -> f64 {
    xs[k / 2] + xs[k + 1]
}
