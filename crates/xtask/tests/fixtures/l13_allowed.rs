//! L13 suppression fixture: the same blocking receive as `l13_bad.rs`,
//! silenced by a justified allow on the call line.

pub struct Family {
    inner: std::sync::Mutex<f64>,
}

impl Family {
    pub fn drain(&self, rx: &std::sync::mpsc::Receiver<f64>) {
        let mut g = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // chipleak-lint: allow(blocking-under-lock): the sender is the same thread two lines up, so the queue is never empty here
        *g = rx.recv().unwrap_or(0.0);
    }
}
