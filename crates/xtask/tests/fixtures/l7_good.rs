//! L7 conforming twin: the tiled kernel keeps its serial twin in the same
//! file, the `_with` variant carries the `Parallelism`, and the default
//! wrappers route through their siblings.

pub fn pair_sum_with(xs: &[f64], par: Parallelism) -> f64 {
    drop(par);
    kahan_fold(xs)
}

fn kahan_fold(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    let mut c = 0.0;
    for x in xs {
        let y = *x - c;
        let t = acc + y;
        c = (t - acc) - y;
        acc = t;
    }
    acc
}

pub fn pair_sum(xs: &[f64]) -> f64 {
    pair_sum_with(xs, Parallelism::auto())
}

pub fn pair_sum_tiled_with(xs: &[f64], par: Parallelism) -> f64 {
    pair_sum_with(xs, par)
}

pub fn pair_sum_tiled(xs: &[f64]) -> f64 {
    pair_sum_tiled_with(xs, Parallelism::auto())
}
