//! L11 conforming twin: the full variant ladder stays signature-compatible
//! after the policy parameters are stripped.

pub fn frob(xs: &[f64], n: usize) -> f64 {
    frob_with(xs, n, Parallelism::auto())
}

pub fn frob_with(xs: &[f64], n: usize, par: Parallelism) -> f64 {
    frob_instrumented(xs, n, par, Instruments::none())
}

pub fn frob_instrumented(xs: &[f64], n: usize, par: Parallelism, ins: Instruments<'_>) -> f64 {
    drop((par, ins));
    xs.len() as f64 * n as f64
}
