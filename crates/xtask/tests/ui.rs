//! Fixture-based ui tests: every rule demonstrably fires on a minimal
//! non-conforming snippet and stays quiet on the conforming twin, and the
//! suppression machinery round-trips (justified silences, unjustified is
//! an error, unused is a warning).
//!
//! Fixtures live under `tests/fixtures/` and are linted through the
//! library API with an explicit workspace-relative path, so they are
//! never compiled and never linted as part of the real workspace
//! (`collect_workspace` skips `fixtures/` directories).

use std::path::Path;
use xtask::engine::{self, Context, CrateInfo, Diagnostic, Severity};
use xtask::rules;
use xtask::source::{FileKind, SourceFile};

/// Lints one fixture as if it lived at `rel` inside the workspace.
fn lint_fixture(name: &str, rel: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let kind = FileKind::classify(rel);
    assert_eq!(kind, FileKind::Library, "fixtures model library code");
    let file = SourceFile::parse(rel.to_owned(), text, kind);
    let ctx = Context {
        crates: vec![
            CrateInfo {
                rel_root: "crates/core".into(),
                name: "leakage-core".into(),
                has_parallel_feature: true,
            },
            CrateInfo {
                rel_root: "crates/demo".into(),
                name: "leakage-demo".into(),
                has_parallel_feature: true,
            },
        ],
    };
    engine::run(&rules::registry(), &[file], &ctx)
}

const DEMO_REL: &str = "crates/demo/src/fixture.rs";
const ESTIMATOR_REL: &str = "crates/core/src/estimator/fixture.rs";

fn rule_hits(diags: &[Diagnostic], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn l1_fires_on_bad_and_not_on_good() {
    let bad = lint_fixture("l1_bad.rs", DEMO_REL);
    assert!(
        rule_hits(&bad, "no-nondeterministic-iteration") >= 2,
        "{bad:?}"
    );
    let good = lint_fixture("l1_good.rs", DEMO_REL);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn l2_fires_on_bad_and_not_on_good() {
    let bad = lint_fixture("l2_bad.rs", DEMO_REL);
    assert!(rule_hits(&bad, "no-ambient-entropy") >= 2, "{bad:?}");
    let good = lint_fixture("l2_good.rs", DEMO_REL);
    assert!(good.is_empty(), "{good:?}");
}

const OBS_REL: &str = "crates/obs/src/fixture.rs";

#[test]
fn l2_clock_impl_carve_out_is_scoped_to_obs() {
    // The injected-clock bridge: an `impl Clock for ...` wall-clock read is
    // exempt inside crates/obs/ only.
    let good = lint_fixture("l2_clock_good.rs", OBS_REL);
    assert!(good.is_empty(), "{good:?}");
    // The identical impl in any other library crate still fires.
    let elsewhere = lint_fixture("l2_clock_good.rs", DEMO_REL);
    assert_eq!(
        rule_hits(&elsewhere, "no-ambient-entropy"),
        1,
        "{elsewhere:?}"
    );
    // A raw read in obs outside a Clock impl gets no exemption; the read
    // inside the impl in the same file stays quiet.
    let bad = lint_fixture("l2_clock_bad.rs", OBS_REL);
    assert_eq!(rule_hits(&bad, "no-ambient-entropy"), 1, "{bad:?}");
}

#[test]
fn l3_fires_on_bad_and_not_on_good() {
    let bad = lint_fixture("l3_bad.rs", ESTIMATOR_REL);
    assert!(rule_hits(&bad, "compensated-summation") >= 2, "{bad:?}");
    let good = lint_fixture("l3_good.rs", ESTIMATOR_REL);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn l3_scope_is_estimator_stack_only() {
    // The same naive code outside the estimator scope is not L3's business.
    let elsewhere = lint_fixture("l3_bad.rs", "crates/demo/src/fixture.rs");
    assert_eq!(
        rule_hits(&elsewhere, "compensated-summation"),
        0,
        "{elsewhere:?}"
    );
}

#[test]
fn l4_fires_on_bad_and_not_on_good() {
    let bad = lint_fixture("l4_bad.rs", DEMO_REL);
    assert!(rule_hits(&bad, "parallel-api-parity") >= 2, "{bad:?}");
    let good = lint_fixture("l4_good.rs", DEMO_REL);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn l5_fires_on_bad_and_not_on_good() {
    let bad = lint_fixture("l5_bad.rs", DEMO_REL);
    assert!(rule_hits(&bad, "no-unwrap-in-library") >= 3, "{bad:?}");
    let good = lint_fixture("l5_good.rs", DEMO_REL);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn l6_fires_on_bad_and_not_on_good() {
    let bad = lint_fixture("l6_bad.rs", DEMO_REL);
    assert!(rule_hits(&bad, "no-silent-fallback") >= 2, "{bad:?}");
    let good = lint_fixture("l6_good.rs", DEMO_REL);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn l7_fires_on_bad_and_not_on_good() {
    let bad = lint_fixture("l7_bad.rs", DEMO_REL);
    assert!(rule_hits(&bad, "tiled-kernel-parity") >= 2, "{bad:?}");
    let good = lint_fixture("l7_good.rs", DEMO_REL);
    assert!(good.is_empty(), "{good:?}");
}

const RESILIENT_REL: &str = "crates/core/src/estimator/resilient.rs";

#[test]
fn l8_fires_on_bad_and_not_on_good() {
    // The fixture's entropy read sits two helpers below the estimator
    // root, so only the call-graph walk (not L2's textual scan of the
    // root fn) can tie it to the output.
    let bad = lint_fixture("l8_bad.rs", ESTIMATOR_REL);
    assert!(rule_hits(&bad, "entropy-taint") >= 1, "{bad:?}");
    assert!(
        bad.iter().any(|d| d.rule == "entropy-taint"
            && d.message
                .contains("estimate_total -> perturbation -> noise_source")),
        "{bad:?}"
    );
    let good = lint_fixture("l8_good.rs", ESTIMATOR_REL);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn l8_scope_is_estimator_outputs_only() {
    // The same laundering outside the estimator stack has no L8 root.
    let elsewhere = lint_fixture("l8_bad.rs", DEMO_REL);
    assert_eq!(rule_hits(&elsewhere, "entropy-taint"), 0, "{elsewhere:?}");
}

#[test]
fn l9_fires_on_bad_and_not_on_good() {
    let bad = lint_fixture("l9_bad.rs", RESILIENT_REL);
    // One unwrap, one unprovable index — both with call-chain evidence.
    assert!(rule_hits(&bad, "panic-freedom") >= 2, "{bad:?}");
    let good = lint_fixture("l9_good.rs", RESILIENT_REL);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn l9_catch_unwind_supervisor_is_a_scoped_escape() {
    // A catch_unwind argument list is a panic sink: the wrapped helper's
    // index and unwrap, and the inline guard panic, are all supervised.
    let good = lint_fixture("l9_catch_good.rs", RESILIENT_REL);
    assert!(good.is_empty(), "{good:?}");
    // resume_unwind re-raises the payload, withdrawing the escape for the
    // whole fn; the unwrap after the parens was never supervised at all.
    let bad = lint_fixture("l9_catch_bad.rs", RESILIENT_REL);
    assert!(rule_hits(&bad, "panic-freedom") >= 2, "{bad:?}");
}

#[test]
fn l10_fires_on_bad_and_not_on_good() {
    let bad = lint_fixture("l10_bad.rs", DEMO_REL);
    assert!(rule_hits(&bad, "merge-order") >= 1, "{bad:?}");
    assert!(
        bad.iter()
            .any(|d| d.rule == "merge-order" && d.message.contains("merge_sum_with -> fold_parts")),
        "{bad:?}"
    );
    let good = lint_fixture("l10_good.rs", DEMO_REL);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn l11_fires_on_bad_and_not_on_good() {
    let bad = lint_fixture("l11_bad.rs", DEMO_REL);
    // One signature divergence, one variant with no policy parameter.
    assert!(rule_hits(&bad, "signature-parity") >= 2, "{bad:?}");
    let good = lint_fixture("l11_good.rs", DEMO_REL);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn l12_fires_on_bad_and_not_on_good() {
    let bad = lint_fixture("l12_bad.rs", DEMO_REL);
    // Both directions of the inversion are reported, each with the
    // full identity cycle as evidence.
    assert_eq!(rule_hits(&bad, "lock-order"), 2, "{bad:?}");
    assert!(
        bad.iter()
            .any(|d| d.rule == "lock-order" && d.message.contains("Pair::a -> Pair::b -> Pair::a")),
        "{bad:?}"
    );
    let good = lint_fixture("l12_good.rs", DEMO_REL);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn l13_fires_on_bad_and_not_on_good() {
    // The fixture sits in the estimator tree, so `characterize`'s loop
    // counts as kernel work; the blocking `recv` fires independently.
    let bad = lint_fixture("l13_bad.rs", ESTIMATOR_REL);
    assert_eq!(rule_hits(&bad, "blocking-under-lock"), 2, "{bad:?}");
    assert!(
        bad.iter().any(|d| d.rule == "blocking-under-lock"
            && d.message.contains("characterize")
            && d.message.contains("Family::inner")),
        "{bad:?}"
    );
    assert!(
        bad.iter()
            .any(|d| d.rule == "blocking-under-lock" && d.message.contains("`recv`")),
        "{bad:?}"
    );
    let good = lint_fixture("l13_good.rs", ESTIMATOR_REL);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn l13_kernel_scope_is_the_kernel_tree_only() {
    // Outside the kernel prefixes the loop is not "kernel work"; only
    // the blocking receive remains.
    let elsewhere = lint_fixture("l13_bad.rs", DEMO_REL);
    assert_eq!(
        rule_hits(&elsewhere, "blocking-under-lock"),
        1,
        "{elsewhere:?}"
    );
}

#[test]
fn l13_justified_allow_silences() {
    let diags = lint_fixture("l13_allowed.rs", DEMO_REL);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn l14_fires_on_bad_and_not_on_good() {
    let bad = lint_fixture("l14_bad.rs", DEMO_REL);
    // One direct double-lock, one re-entry through the call chain.
    assert_eq!(rule_hits(&bad, "lock-reentrancy"), 2, "{bad:?}");
    assert!(
        bad.iter().any(|d| d.rule == "lock-reentrancy"
            && d.message
                .contains("Registry::snapshot_and_bump -> Registry::bump")),
        "{bad:?}"
    );
    let good = lint_fixture("l14_good.rs", DEMO_REL);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn l15_fires_on_bad_and_not_on_good() {
    let bad = lint_fixture("l15_bad.rs", DEMO_REL);
    // One bare `wait`, one non-looped `wait_timeout`.
    assert_eq!(rule_hits(&bad, "condvar-wait-loop"), 2, "{bad:?}");
    let good = lint_fixture("l15_good.rs", DEMO_REL);
    assert!(good.is_empty(), "{good:?}");
}

#[test]
fn explain_output_is_pinned_for_old_and_new_rules() {
    // `cargo xtask lint --explain <rule>` prints exactly this text (the
    // binary adds nothing around `render`). One pre-existing rule and one
    // concurrency rule keep the format honest.
    let l9 = xtask::rules::explain::render("L9").expect("L9 is registered");
    assert_eq!(
        l9,
        "L9 `panic-freedom` — no unwrap/expect/panic-macro or unprovable slice index \
         may be reachable from estimator::resilient or the service-bound public API\n\
         \n\
         why:\n\
         \x20 the resilient ladder and the service-bound API promise typed errors;\n\
         \x20 a panic three calls down unwinds through worker threads and kills the\n\
         \x20 whole estimate, so no unwrap/expect/panic-macro or unprovable index\n\
         \x20 may be reachable from those roots.\n\
         escape hatches:\n\
         \x20 `.get(i).ok_or(...)?`, an `assert!`-stated bound, bounds-tied loop\n\
         \x20 binders, a `catch_unwind(...)` supervisor (panics inside its parens\n\
         \x20 are contained — unless the same fn calls `resume_unwind`, which\n\
         \x20 re-raises the payload and re-arms the rule), or a justified\n\
         \x20 `allow(panic-freedom)` / `allow(no-unwrap-in-library)`.\n\
         example:\n\
         \x20 crates/core/src/estimator/table.rs:77:21: error[L9/panic-freedom]:\n\
         \x20 `unwrap` is reachable from estimate_resilient -> stage -> kernel\n"
    );

    let l15 = xtask::rules::explain::render("L15").expect("L15 is registered");
    assert_eq!(
        l15,
        "L15 `condvar-wait-loop` — every Condvar::wait/wait_timeout must sit in a \
         predicate loop (wait_while is exempt)\n\
         \n\
         why:\n\
         \x20 `Condvar::wait` may wake spuriously and may lose the race against the\n\
         \x20 notifier, so a bare `if`-guarded wait resumes with the predicate\n\
         \x20 still false; every wait/wait_timeout must sit in a predicate loop.\n\
         escape hatches:\n\
         \x20 `while !predicate { guard = cv.wait(guard)...; }` or `wait_while`;\n\
         \x20 timeout waits whose caller re-checks may be justified with\n\
         \x20 `// chipleak-lint: allow(condvar-wait-loop): <why>`.\n\
         example:\n\
         \x20 crates/service/src/store.rs:118:17: error[L15/condvar-wait-loop]:\n\
         \x20 `self.built.wait(...)` is not inside a predicate loop\n"
    );
}

#[test]
fn justified_suppression_round_trips_clean() {
    let diags = lint_fixture("suppressed_ok.rs", DEMO_REL);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unjustified_suppression_silences_nothing_and_errors() {
    let diags = lint_fixture("suppressed_unjustified.rs", DEMO_REL);
    assert_eq!(rule_hits(&diags, "no-unwrap-in-library"), 1, "{diags:?}");
    assert_eq!(rule_hits(&diags, "lint-suppression"), 1, "{diags:?}");
    assert!(diags
        .iter()
        .any(|d| d.rule == "lint-suppression" && d.severity == Severity::Error));
}

#[test]
fn unused_suppression_warns() {
    let diags = lint_fixture("suppressed_unused.rs", DEMO_REL);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "lint-suppression");
    assert_eq!(diags[0].severity, Severity::Warning);
}

#[test]
fn real_workspace_lints_clean() {
    // The acceptance bar for the whole PR: zero unsuppressed errors on the
    // actual workspace. Warnings (e.g. stale suppressions) also fail here
    // so they cannot accumulate silently.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = xtask::collect_workspace(&root).expect("workspace readable");
    assert!(files.len() > 20, "workspace walk found too few files");
    let crates = xtask::collect_crates(&root).expect("manifests readable");
    let diags = xtask::run_lint(&files, crates);
    assert!(diags.is_empty(), "{}", engine::render_human(&diags));
}
