//! Property tests pinning the lossless-parse contract advertised by
//! `xtask::parse`: for any source, `lex` → `parse` → `reconstruct` yields
//! exactly `0..tokens.len()` (the item tree tiles the token stream with
//! no gaps and no overlaps), and every token's recorded `(line, col)`
//! points at its own text in the original source.
//!
//! Generators are integer-seeded (choice index + name seed) rather than
//! regex-based so they run against both real proptest and the offline
//! stub the vendored build ships.

use proptest::prelude::*;
use xtask::lexer;
use xtask::parse;

/// Keyword-proof identifier from a numeric seed.
fn ident_from(seed: u64) -> String {
    let mut s = String::from("x");
    let mut n = seed;
    for _ in 0..4 {
        s.push((b'a' + (n % 26) as u8) as char);
        n /= 26;
    }
    s
}

/// `(choice, seed)` pair describing one leaf item.
type LeafSpec = (u8, u64);

/// One leaf item: fns (plain, generic, attributed), type items, uses,
/// consts, and lint-directive comments.
fn leaf(spec: LeafSpec) -> String {
    let (choice, seed) = spec;
    let a = ident_from(seed);
    let b = ident_from(seed / 7 + 1);
    match choice % 8 {
        0 => {
            format!("pub fn {a}({b}: &[f64], n: usize) -> f64 {{ {b}.len() as f64 + n as f64 }}\n")
        }
        1 => format!("fn {a}<T{b}: Copy>(v: T{b}) -> T{b} {{ v }}\n"),
        2 => format!("#[inline]\nfn {a}({b}: f64) -> [f64; 2] {{ [{b}, -{b}] }}\n"),
        3 => format!("pub struct S{a} {{ x: f64 }}\n"),
        4 => format!("use crate::{a};\n"),
        5 => format!("const C{a}: usize = 3;\n"),
        6 => format!("// chipleak-lint: allow(l5): {a} is sound\n"),
        _ => "#[derive(Debug)]\npub enum E { A, B }\n".to_owned(),
    }
}

/// `(choice, seed, children)` triple describing one top-level item: a
/// leaf, or a `mod`/`impl`/`trait` container with leaf children (one
/// nesting level is enough to exercise the tree walk).
fn item(spec: (u8, u64, Vec<LeafSpec>)) -> String {
    let (choice, seed, kids) = spec;
    let name = ident_from(seed);
    let body: String = kids.iter().map(|k| leaf(*k)).collect();
    match choice % 7 {
        0..=3 => leaf((choice, seed)),
        4 => format!("mod {name} {{\n{body}}}\n"),
        5 => format!("impl T{name} {{\n{body}}}\n"),
        _ => format!(
            "trait Tr{name} {{ fn {}(&self) -> f64; }}\n",
            ident_from(seed + 11)
        ),
    }
}

/// The round-trip invariant; span fidelity is only checked when the
/// generator guarantees single-line tokens.
fn check_roundtrip(src: &str, check_spans: bool) {
    let lexed = lexer::lex(src);
    let items = parse::parse(&lexed.tokens);
    let got = parse::reconstruct(&items);
    let want: Vec<usize> = (0..lexed.tokens.len()).collect();
    assert_eq!(got, want, "token tiling broke for source {src:?}");
    if check_spans {
        let lines: Vec<&str> = src.lines().collect();
        for t in &lexed.tokens {
            let line = lines
                .get((t.line - 1) as usize)
                .unwrap_or_else(|| panic!("token line {} past EOF in {src:?}", t.line));
            let at: String = line
                .chars()
                .skip((t.col - 1) as usize)
                .take(t.text.chars().count())
                .collect();
            assert_eq!(
                at, t.text,
                "span ({}, {}) mismatch in {src:?}",
                t.line, t.col
            );
        }
    }
}

proptest! {
    #[test]
    fn structured_source_roundtrips(
        specs in collection::vec(
            (0u8..7, 0u64..1_000_000, collection::vec((0u8..8, 0u64..1_000_000), 0..3)),
            0..8,
        )
    ) {
        let src: String = specs.into_iter().map(item).collect();
        check_roundtrip(&src, true);
    }

    // Arbitrary printable soup (unbalanced delimiters, stray quotes,
    // half-open comments) must still tile: the parser files whatever it
    // cannot classify under `Other` items without dropping tokens.
    #[test]
    fn arbitrary_soup_roundtrips(bytes in collection::vec(0u8..96, 0..200)) {
        let src: String = bytes
            .into_iter()
            .map(|b| if b == 95 { '\n' } else { (b + 32) as char })
            .collect();
        check_roundtrip(&src, false);
    }
}
