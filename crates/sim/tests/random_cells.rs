//! Property-based robustness tests: the DC solver must converge with a
//! balanced KCL on randomly composed multi-stage cells (random gate types
//! wired into random acyclic stage graphs), across input states and
//! process corners.

use leakage_process::Technology;
use leakage_sim::netlist::{input_node, InitHint, NetlistBuilder, NodeId, GND, VDD};
use leakage_sim::{CellNetlist, LeakageSolver};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum StageKind {
    Inv,
    Nand2,
    Nor2,
}

/// Builds a random multi-stage cell: `n_inputs` primary inputs, then
/// `stages` gates whose inputs are drawn from primary inputs and earlier
/// stage outputs.
fn build_cell(n_inputs: usize, stages: &[(StageKind, usize, usize)]) -> CellNetlist {
    let mut b = NetlistBuilder::new("fuzz", n_inputs);
    let mut signals: Vec<NodeId> = (0..n_inputs).map(input_node).collect();
    for (kind, sel_a, sel_b) in stages {
        let a = signals[sel_a % signals.len()];
        let bb = signals[sel_b % signals.len()];
        let out = b.node();
        match kind {
            StageKind::Inv => {
                b.nmos(out, a, GND, 0.6);
                b.pmos(out, a, VDD, 1.2);
            }
            StageKind::Nand2 => {
                let x = b.node();
                b.pmos(out, a, VDD, 1.2);
                b.pmos(out, bb, VDD, 1.2);
                b.nmos(out, a, x, 0.9);
                b.nmos(x, bb, GND, 0.9);
                b.hint(x, InitHint::Fraction(0.05));
            }
            StageKind::Nor2 => {
                let y = b.node();
                b.nmos(out, a, GND, 0.6);
                b.nmos(out, bb, GND, 0.6);
                b.pmos(y, a, VDD, 1.8);
                b.pmos(out, bb, y, 1.8);
                b.hint(y, InitHint::Fraction(0.95));
            }
        }
        b.hint(out, InitHint::Fraction(0.5));
        signals.push(out);
    }
    b.build().expect("generated netlist is structurally valid")
}

fn stage_strategy() -> impl Strategy<Value = (StageKind, usize, usize)> {
    (0usize..3, any::<usize>(), any::<usize>()).prop_map(|(k, a, b)| {
        let kind = match k {
            0 => StageKind::Inv,
            1 => StageKind::Nand2,
            _ => StageKind::Nor2,
        };
        (kind, a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_cells_converge_with_balanced_kcl(
        n_inputs in 1usize..4,
        stages in proptest::collection::vec(stage_strategy(), 1..5),
        state_seed in any::<u32>(),
        dl in -9.0_f64..9.0,
    ) {
        let cell = build_cell(n_inputs, &stages);
        let solver = LeakageSolver::new(&Technology::cmos90());
        let state = state_seed % cell.n_states();
        let sol = solver.solve(&cell, state, dl, &[]).expect("solver converges");
        prop_assert!(sol.leakage > 0.0, "positive leakage");
        prop_assert!(sol.leakage < 1e-4, "sane magnitude, got {}", sol.leakage);
        // KCL: supply current equals ground current.
        let rel = (sol.leakage - sol.leakage_gnd_side).abs() / sol.leakage;
        prop_assert!(rel < 1e-2, "kcl balance: {rel}");
        // All node voltages inside (slightly padded) rails.
        for v in &sol.voltages {
            prop_assert!((-0.21..=1.41).contains(v), "voltage {v} out of range");
        }
    }

    #[test]
    fn random_cells_converge_with_gate_leakage(
        n_inputs in 1usize..3,
        stages in proptest::collection::vec(stage_strategy(), 1..4),
        state_seed in any::<u32>(),
    ) {
        let cell = build_cell(n_inputs, &stages);
        let solver = LeakageSolver::new(&Technology::cmos90_with_gate_leakage());
        let state = state_seed % cell.n_states();
        let sol = solver.solve(&cell, state, 0.0, &[]).expect("solver converges");
        prop_assert!(sol.leakage > 0.0);
        let rel = (sol.leakage - sol.leakage_gnd_side).abs() / sol.leakage;
        prop_assert!(rel < 1e-2, "kcl balance with gate leakage: {rel}");
    }

    #[test]
    fn leakage_monotone_decreasing_in_length(
        n_inputs in 1usize..3,
        stages in proptest::collection::vec(stage_strategy(), 1..4),
        state_seed in any::<u32>(),
    ) {
        let cell = build_cell(n_inputs, &stages);
        let solver = LeakageSolver::new(&Technology::cmos90());
        let state = state_seed % cell.n_states();
        let mut prev = f64::INFINITY;
        for dl in [-6.0, -2.0, 0.0, 2.0, 6.0] {
            let leak = solver.cell_leakage(&cell, state, dl, 0.0).expect("converges");
            prop_assert!(leak < prev, "dl {dl}: {leak} !< {prev}");
            prev = leak;
        }
    }
}
