//! Text format for cell netlists — lets users characterize custom cells
//! without writing Rust.
//!
//! ```text
//! # a 2-input NAND
//! cell nand2_custom 2
//! node out
//! node x
//! pmos out in0 vdd 1.2
//! pmos out in1 vdd 1.2
//! nmos out in0 x   0.9
//! nmos x   in1 gnd 0.9
//! hint out frac 0.95
//! hint x   frac 0.05
//! ```
//!
//! Grammar (one statement per line, `#` comments):
//!
//! * `cell <name> <n_inputs>` — header, must come first;
//! * `node <name>` — declares an internal node;
//! * `nmos|pmos <drain> <gate> <source> <width_um>` — a device; terminals
//!   are `gnd`, `vdd`, `in0..inN-1`, or declared node names;
//! * `hint <node> frac <f>` — initialize at `f·VDD`;
//! * `hint <node> follow <inK> [inverted]` — initialize from an input.

use crate::error::SimError;
use crate::netlist::{input_node, CellNetlist, InitHint, NetlistBuilder, NodeId, GND, VDD};
use std::collections::HashMap;

/// Parses a cell netlist from its text form.
///
/// # Errors
///
/// Returns [`SimError::InvalidNetlist`] with a line number for any syntax
/// error, undeclared node, or structural problem found by the builder.
///
/// # Example
///
/// ```
/// let text = "cell inv_custom 1\nnode out\nnmos out in0 gnd 0.6\npmos out in0 vdd 1.2\n";
/// let cell = leakage_sim::parse::parse_cell(text)?;
/// assert_eq!(cell.name(), "inv_custom");
/// assert_eq!(cell.n_internal(), 1);
/// # Ok::<(), leakage_sim::SimError>(())
/// ```
pub fn parse_cell(text: &str) -> Result<CellNetlist, SimError> {
    let mut builder: Option<NetlistBuilder> = None;
    let mut nodes: HashMap<String, NodeId> = HashMap::new();
    let mut n_inputs = 0usize;

    let err = |line_no: usize, reason: String| SimError::InvalidNetlist {
        reason: format!("line {line_no}: {reason}"),
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match (fields[0], builder.as_mut()) {
            ("cell", None) => {
                if fields.len() != 3 {
                    return Err(err(line_no, "expected 'cell <name> <n_inputs>'".into()));
                }
                n_inputs = fields[2]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad input count '{}'", fields[2])))?;
                if n_inputs >= 32 {
                    return Err(err(line_no, "too many inputs".into()));
                }
                builder = Some(NetlistBuilder::new(fields[1], n_inputs));
            }
            ("cell", Some(_)) => {
                return Err(err(line_no, "duplicate 'cell' header".into()));
            }
            (_, None) => {
                return Err(err(line_no, "first statement must be 'cell'".into()));
            }
            ("node", Some(b)) => {
                if fields.len() != 2 {
                    return Err(err(line_no, "expected 'node <name>'".into()));
                }
                let name = fields[1].to_owned();
                if nodes.contains_key(&name) || is_reserved(&name, n_inputs) {
                    return Err(err(line_no, format!("node '{name}' already defined")));
                }
                let id = b.node();
                nodes.insert(name, id);
            }
            (kind @ ("nmos" | "pmos"), Some(b)) => {
                if fields.len() != 5 {
                    return Err(err(
                        line_no,
                        format!("expected '{kind} <drain> <gate> <source> <width>'"),
                    ));
                }
                let d = resolve(fields[1], &nodes, n_inputs)
                    .ok_or_else(|| err(line_no, format!("unknown node '{}'", fields[1])))?;
                let g = resolve(fields[2], &nodes, n_inputs)
                    .ok_or_else(|| err(line_no, format!("unknown node '{}'", fields[2])))?;
                let s = resolve(fields[3], &nodes, n_inputs)
                    .ok_or_else(|| err(line_no, format!("unknown node '{}'", fields[3])))?;
                let w: f64 = fields[4]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad width '{}'", fields[4])))?;
                if kind == "nmos" {
                    b.nmos(d, g, s, w);
                } else {
                    b.pmos(d, g, s, w);
                }
            }
            ("hint", Some(b)) => {
                if fields.len() < 3 {
                    return Err(err(
                        line_no,
                        "expected 'hint <node> frac|follow ...'".into(),
                    ));
                }
                let node = resolve(fields[1], &nodes, n_inputs)
                    .ok_or_else(|| err(line_no, format!("unknown node '{}'", fields[1])))?;
                let hint = match fields[2] {
                    "frac" => {
                        let f: f64 = fields
                            .get(3)
                            .ok_or_else(|| err(line_no, "frac needs a value".into()))?
                            .parse()
                            .map_err(|_| err(line_no, "bad fraction".into()))?;
                        InitHint::Fraction(f)
                    }
                    "follow" => {
                        let pin = fields
                            .get(3)
                            .ok_or_else(|| err(line_no, "follow needs an input pin".into()))?;
                        let input = parse_input_index(pin, n_inputs)
                            .ok_or_else(|| err(line_no, format!("'{pin}' is not an input pin")))?;
                        let inverted = fields.get(4) == Some(&"inverted");
                        InitHint::FollowInput { input, inverted }
                    }
                    other => {
                        return Err(err(line_no, format!("unknown hint kind '{other}'")));
                    }
                };
                b.hint(node, hint);
            }
            (other, Some(_)) => {
                return Err(err(line_no, format!("unknown statement '{other}'")));
            }
        }
    }
    builder
        .ok_or_else(|| SimError::InvalidNetlist {
            reason: "empty netlist: missing 'cell' header".into(),
        })?
        .build()
}

fn is_reserved(name: &str, n_inputs: usize) -> bool {
    name == "gnd" || name == "vdd" || parse_input_index(name, n_inputs).is_some()
}

fn parse_input_index(name: &str, n_inputs: usize) -> Option<usize> {
    let idx: usize = name.strip_prefix("in")?.parse().ok()?;
    (idx < n_inputs).then_some(idx)
}

fn resolve(name: &str, nodes: &HashMap<String, NodeId>, n_inputs: usize) -> Option<NodeId> {
    match name {
        "gnd" => Some(GND),
        "vdd" => Some(VDD),
        _ => parse_input_index(name, n_inputs)
            .map(input_node)
            .or_else(|| nodes.get(name).copied()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::LeakageSolver;
    use leakage_process::Technology;

    const NAND2: &str = "\
# a 2-input NAND
cell nand2_custom 2
node out
node x
pmos out in0 vdd 1.2
pmos out in1 vdd 1.2
nmos out in0 x   0.9
nmos x   in1 gnd 0.9
hint out frac 0.95
hint x   frac 0.05
";

    #[test]
    fn parses_and_matches_builtin_nand() {
        let custom = parse_cell(NAND2).unwrap();
        assert_eq!(custom.name(), "nand2_custom");
        assert_eq!(custom.n_inputs(), 2);
        assert_eq!(custom.devices().len(), 4);
        // Leakage agrees with the programmatic NAND2 of the same widths.
        let builtin = CellNetlist::nand(2, 0.9, 1.2);
        let solver = LeakageSolver::new(&Technology::cmos90());
        for state in 0..4 {
            let a = solver.cell_leakage(&custom, state, 0.0, 0.0).unwrap();
            let b = solver.cell_leakage(&builtin, state, 0.0, 0.0).unwrap();
            assert!((a - b).abs() / b < 1e-9, "state {state}: {a} vs {b}");
        }
    }

    #[test]
    fn parses_hints() {
        let text = "cell inv 1\nnode out\nnmos out in0 gnd 0.6\npmos out in0 vdd 1.2\nhint out follow in0 inverted\n";
        let cell = parse_cell(text).unwrap();
        assert_eq!(cell.init_hints().len(), 1);
        assert!(matches!(
            cell.init_hints()[0].1,
            InitHint::FollowInput {
                input: 0,
                inverted: true
            }
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# top comment\n\ncell c 1\nnode out # trailing comment\nnmos out in0 gnd 0.6\npmos out in0 vdd 1.2\n";
        assert!(parse_cell(text).is_ok());
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (bad, needle) in [
            ("node out\n", "line 1: first statement"),
            ("cell c 1\ncell c 1\n", "line 2: duplicate"),
            ("cell c 1\nnmos out in0 gnd 0.6\n", "unknown node 'out'"),
            ("cell c 1\nnode out\nnmos out in9 gnd 0.6\n", "in9"),
            ("cell c 1\nnode out\nnmos out in0 gnd wide\n", "bad width"),
            ("cell c 1\nnode gnd\n", "already defined"),
            (
                "cell c 1\nnode out\nzmos out in0 gnd 1.0\n",
                "unknown statement",
            ),
            ("cell c 1\nnode out\nhint out maybe 1\n", "unknown hint"),
            ("", "empty netlist"),
        ] {
            let e = parse_cell(bad).unwrap_err().to_string();
            assert!(e.contains(needle), "{bad:?} → {e}");
        }
    }

    #[test]
    fn truncated_netlists_error_without_panicking() {
        // A netlist cut off mid-stream (lost tail of a file, interrupted
        // pipe) must surface a typed SimError, never a panic.
        let lines: Vec<&str> = NAND2.lines().collect();
        for n in 0..lines.len() {
            let prefix = lines[..n].join("\n");
            let res = parse_cell(&prefix);
            if n <= 4 {
                // Comment, header, and node declarations alone carry no
                // devices yet — structurally incomplete.
                assert!(res.is_err(), "{n}-line prefix should be rejected: {res:?}");
            }
        }
        // Byte-level truncation (mid-token cuts) must also never panic.
        for cut in 0..NAND2.len() {
            if NAND2.is_char_boundary(cut) {
                let _ = parse_cell(&NAND2[..cut]);
            }
        }
    }

    #[test]
    fn structural_validation_still_applies() {
        // Builder rejects a deviceless cell even if the syntax is fine.
        let text = "cell empty 1\nnode out\n";
        assert!(parse_cell(text).is_err());
    }
}
