//! Transistor netlists of standard cells.
//!
//! Nodes use a fixed convention so the solver can set boundary conditions
//! without per-cell code: node 0 is GND, node 1 is VDD, nodes
//! `2..2+n_inputs` are the cell inputs, and everything after that
//! (outputs included) is an internal unknown solved by Newton iteration.

use crate::device::MosType;
use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// Node identifier within a cell netlist.
pub type NodeId = usize;

/// Ground node (always 0 V).
pub const GND: NodeId = 0;
/// Supply node (always VDD).
pub const VDD: NodeId = 1;

/// Returns the node id of input pin `idx`.
pub const fn input_node(idx: usize) -> NodeId {
    2 + idx
}

/// One transistor instance inside a cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Polarity.
    pub mos_type: MosType,
    /// Drain node.
    pub drain: NodeId,
    /// Gate node.
    pub gate: NodeId,
    /// Source node.
    pub source: NodeId,
    /// Width in µm.
    pub width_um: f64,
}

/// Initialization hint for an internal node, used to pick the Newton
/// starting point (and, for bistable cells, the intended stable state).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InitHint {
    /// Start the node at `fraction·VDD`.
    Fraction(f64),
    /// Start the node at the rail selected by input bit `input` (optionally
    /// inverted) — e.g. an inverter output follows its input inverted, an
    /// SRAM storage node follows the "stored bit" pseudo-input directly.
    FollowInput {
        /// Input pin index controlling the node.
        input: usize,
        /// Whether the node is the logical inverse of that input.
        inverted: bool,
    },
}

/// A cell's transistor-level netlist.
///
/// Build cells with [`NetlistBuilder`]; a few canonical constructors
/// ([`CellNetlist::inverter`], [`CellNetlist::nand`], [`CellNetlist::nor`])
/// are provided for direct use and as building blocks for tests. The full
/// 62-cell library lives in the `leakage-cells` crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellNetlist {
    name: String,
    n_inputs: usize,
    n_nodes: usize,
    devices: Vec<Device>,
    init_hints: Vec<(NodeId, InitHint)>,
}

impl CellNetlist {
    /// Cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input pins.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Total node count (rails + inputs + internal).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of internal (solved) nodes.
    pub fn n_internal(&self) -> usize {
        self.n_nodes - 2 - self.n_inputs
    }

    /// The transistor instances.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Initialization hints for internal nodes.
    pub fn init_hints(&self) -> &[(NodeId, InitHint)] {
        &self.init_hints
    }

    /// Number of distinct input states (`2^n_inputs`).
    ///
    /// # Panics
    ///
    /// Panics if the cell has more than 31 inputs (never true for a
    /// standard-cell library).
    pub fn n_states(&self) -> u32 {
        assert!(self.n_inputs < 32, "unreasonable input count");
        1u32 << self.n_inputs
    }

    /// A CMOS inverter: NMOS width `wn` µm, PMOS width `wp` µm.
    pub fn inverter(wn: f64, wp: f64) -> CellNetlist {
        let mut b = NetlistBuilder::new("inv", 1);
        let out = b.node();
        b.nmos(out, input_node(0), GND, wn);
        b.pmos(out, input_node(0), VDD, wp);
        b.hint(
            out,
            InitHint::FollowInput {
                input: 0,
                inverted: true,
            },
        );
        // chipleak-lint: allow(l5): fixed topology, exercised by every sim test
        b.build().expect("static inverter netlist is valid")
    }

    /// An n-input NAND: series NMOS stack, parallel PMOS.
    ///
    /// # Panics
    ///
    /// Panics if `n_inputs == 0`.
    pub fn nand(n_inputs: usize, wn: f64, wp: f64) -> CellNetlist {
        assert!(n_inputs >= 1, "nand needs at least one input");
        let mut b = NetlistBuilder::new(format!("nand{n_inputs}"), n_inputs);
        let out = b.node();
        // PMOS pull-up network in parallel.
        for i in 0..n_inputs {
            b.pmos(out, input_node(i), VDD, wp);
        }
        // NMOS pull-down series stack from out to GND.
        let mut upper = out;
        for i in 0..n_inputs {
            let lower = if i + 1 == n_inputs { GND } else { b.node() };
            b.nmos(upper, input_node(i), lower, wn);
            if lower != GND {
                b.hint(lower, InitHint::Fraction(0.05));
            }
            upper = lower;
        }
        b.hint(out, InitHint::Fraction(0.95));
        // chipleak-lint: allow(l5): fixed topology, exercised by every sim test
        b.build().expect("static nand netlist is valid")
    }

    /// An n-input NOR: parallel NMOS, series PMOS stack.
    ///
    /// # Panics
    ///
    /// Panics if `n_inputs == 0`.
    pub fn nor(n_inputs: usize, wn: f64, wp: f64) -> CellNetlist {
        assert!(n_inputs >= 1, "nor needs at least one input");
        let mut b = NetlistBuilder::new(format!("nor{n_inputs}"), n_inputs);
        let out = b.node();
        for i in 0..n_inputs {
            b.nmos(out, input_node(i), GND, wn);
        }
        let mut upper = VDD;
        for i in 0..n_inputs {
            let lower = if i + 1 == n_inputs { out } else { b.node() };
            b.pmos(lower, input_node(i), upper, wp);
            if lower != out {
                b.hint(lower, InitHint::Fraction(0.95));
            }
            upper = lower;
        }
        b.hint(out, InitHint::Fraction(0.05));
        // chipleak-lint: allow(l5): fixed topology, exercised by every sim test
        b.build().expect("static nor netlist is valid")
    }
}

/// Incremental builder for [`CellNetlist`].
///
/// # Example
///
/// ```
/// use leakage_sim::netlist::{NetlistBuilder, input_node, GND, VDD};
///
/// let mut b = NetlistBuilder::new("inv_x1", 1);
/// let out = b.node();
/// b.nmos(out, input_node(0), GND, 1.0);
/// b.pmos(out, input_node(0), VDD, 2.0);
/// let cell = b.build()?;
/// assert_eq!(cell.n_internal(), 1);
/// # Ok::<(), leakage_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    n_inputs: usize,
    n_nodes: usize,
    devices: Vec<Device>,
    init_hints: Vec<(NodeId, InitHint)>,
}

impl NetlistBuilder {
    /// Starts a netlist with the given name and input-pin count.
    pub fn new(name: impl Into<String>, n_inputs: usize) -> NetlistBuilder {
        NetlistBuilder {
            name: name.into(),
            n_inputs,
            n_nodes: 2 + n_inputs,
            devices: Vec::new(),
            init_hints: Vec::new(),
        }
    }

    /// Allocates a fresh internal node and returns its id.
    pub fn node(&mut self) -> NodeId {
        let id = self.n_nodes;
        self.n_nodes += 1;
        id
    }

    /// Adds an NMOS transistor.
    pub fn nmos(&mut self, drain: NodeId, gate: NodeId, source: NodeId, width_um: f64) {
        self.devices.push(Device {
            mos_type: MosType::Nmos,
            drain,
            gate,
            source,
            width_um,
        });
    }

    /// Adds a PMOS transistor.
    pub fn pmos(&mut self, drain: NodeId, gate: NodeId, source: NodeId, width_um: f64) {
        self.devices.push(Device {
            mos_type: MosType::Pmos,
            drain,
            gate,
            source,
            width_um,
        });
    }

    /// Records an initialization hint for an internal node.
    pub fn hint(&mut self, node: NodeId, hint: InitHint) {
        self.init_hints.push((node, hint));
    }

    /// Finalizes the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNetlist`] if the netlist has no devices,
    /// a device references an unknown node, a width is non-positive, or an
    /// init hint targets a non-internal node or missing input.
    pub fn build(self) -> Result<CellNetlist, SimError> {
        if self.devices.is_empty() {
            return Err(SimError::InvalidNetlist {
                reason: format!("cell {} has no devices", self.name),
            });
        }
        for d in &self.devices {
            for node in [d.drain, d.gate, d.source] {
                if node >= self.n_nodes {
                    return Err(SimError::InvalidNetlist {
                        reason: format!(
                            "cell {}: device references node {node} >= {}",
                            self.name, self.n_nodes
                        ),
                    });
                }
            }
            if !(d.width_um > 0.0) || !d.width_um.is_finite() {
                return Err(SimError::InvalidNetlist {
                    reason: format!("cell {}: non-positive device width", self.name),
                });
            }
        }
        let first_internal = 2 + self.n_inputs;
        for (node, hint) in &self.init_hints {
            if *node < first_internal || *node >= self.n_nodes {
                return Err(SimError::InvalidNetlist {
                    reason: format!(
                        "cell {}: init hint targets non-internal node {node}",
                        self.name
                    ),
                });
            }
            if let InitHint::FollowInput { input, .. } = hint {
                if *input >= self.n_inputs {
                    return Err(SimError::InvalidNetlist {
                        reason: format!(
                            "cell {}: init hint references missing input {input}",
                            self.name
                        ),
                    });
                }
            }
        }
        Ok(CellNetlist {
            name: self.name,
            n_inputs: self.n_inputs,
            n_nodes: self.n_nodes,
            devices: self.devices,
            init_hints: self.init_hints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverter_structure() {
        let inv = CellNetlist::inverter(1.0, 2.0);
        assert_eq!(inv.n_inputs(), 1);
        assert_eq!(inv.n_internal(), 1);
        assert_eq!(inv.devices().len(), 2);
        assert_eq!(inv.n_states(), 2);
    }

    #[test]
    fn nand_structure() {
        for n in 1..=4 {
            let g = CellNetlist::nand(n, 1.0, 2.0);
            assert_eq!(g.n_inputs(), n);
            assert_eq!(g.devices().len(), 2 * n);
            // out + (n-1) stack nodes
            assert_eq!(g.n_internal(), n);
            assert_eq!(g.n_states(), 1 << n);
        }
    }

    #[test]
    fn nor_structure() {
        for n in 1..=4 {
            let g = CellNetlist::nor(n, 1.0, 2.0);
            assert_eq!(g.n_inputs(), n);
            assert_eq!(g.devices().len(), 2 * n);
            assert_eq!(g.n_internal(), n);
        }
    }

    #[test]
    fn builder_rejects_empty() {
        let b = NetlistBuilder::new("empty", 1);
        assert!(matches!(b.build(), Err(SimError::InvalidNetlist { .. })));
    }

    #[test]
    fn builder_rejects_bad_node() {
        let mut b = NetlistBuilder::new("bad", 1);
        b.nmos(99, input_node(0), GND, 1.0);
        assert!(b.build().is_err());
    }

    #[test]
    fn builder_rejects_bad_width() {
        let mut b = NetlistBuilder::new("bad", 1);
        let out = b.node();
        b.nmos(out, input_node(0), GND, 0.0);
        assert!(b.build().is_err());
    }

    #[test]
    fn builder_rejects_bad_hint() {
        let mut b = NetlistBuilder::new("bad", 1);
        let out = b.node();
        b.nmos(out, input_node(0), GND, 1.0);
        b.hint(GND, InitHint::Fraction(0.5));
        assert!(b.build().is_err());

        let mut b = NetlistBuilder::new("bad2", 1);
        let out = b.node();
        b.nmos(out, input_node(0), GND, 1.0);
        b.hint(
            out,
            InitHint::FollowInput {
                input: 3,
                inverted: false,
            },
        );
        assert!(b.build().is_err());
    }

    #[test]
    fn input_node_convention() {
        assert_eq!(input_node(0), 2);
        assert_eq!(input_node(3), 5);
        assert_eq!(GND, 0);
        assert_eq!(VDD, 1);
    }
}
