//! BSIM-lite subthreshold MOSFET model.
//!
//! Only the subthreshold region matters for leakage: every device in a
//! quiescent CMOS cell is either fully on (a near-short) or off (in
//! subthreshold). The model is the textbook exponential,
//!
//! ```text
//! I_ds = I₀ · W · (L_nom/L) · exp((V_gs − V_th)/(n·V_T)) · (1 − exp(−V_ds/V_T))
//! V_th = V_th0 + k_rolloff·ΔL + γ_b·V_sb − η·V_ds + ΔV_t(RDF)
//! ```
//!
//! which reproduces DIBL-driven stack savings and the exponential
//! channel-length sensitivity the statistical model relies on. On-state
//! conduction is approximated by a large linear conductance, adequate for
//! DC leakage analysis where on-devices only pin node voltages to rails.

use leakage_process::technology::DeviceParams;
use serde::{Deserialize, Serialize};

/// MOSFET polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosType {
    /// N-channel (bulk at ground).
    Nmos,
    /// P-channel (bulk at VDD).
    Pmos,
}

/// On-state equivalent conductance (S per µm of width). Leakage currents
/// are ~nA; 1 mS/µm keeps on-devices within nV of their rail.
const G_ON_PER_UM: f64 = 1.0e-3;

/// Evaluation context for a device: process corner plus rails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceEnv {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Thermal voltage kT/q (V).
    pub v_thermal: f64,
    /// Nominal channel length (nm).
    pub l_nominal: f64,
}

/// Computes the channel current of a MOSFET given absolute node voltages.
///
/// `l_delta_nm` is the deviation of this device's channel length from
/// nominal (shared within a cell under the fully-correlated-within-cell
/// assumption of §2.1.1); `vt_delta` is the RDF threshold shift (V).
///
/// The function is antisymmetric under drain/source exchange, so the
/// solver can wire devices in any orientation.
#[allow(clippy::too_many_arguments)]
pub fn mos_current(
    mos_type: MosType,
    params: &DeviceParams,
    env: &DeviceEnv,
    width_um: f64,
    l_delta_nm: f64,
    vt_delta: f64,
    v_d: f64,
    v_g: f64,
    v_s: f64,
) -> f64 {
    match mos_type {
        MosType::Nmos => nmos_current(params, env, width_um, l_delta_nm, vt_delta, v_d, v_g, v_s),
        MosType::Pmos => {
            // PMOS is the mirror image: reflect voltages about the rails.
            -nmos_current(
                params,
                env,
                width_um,
                l_delta_nm,
                vt_delta,
                env.vdd - v_d,
                env.vdd - v_g,
                env.vdd - v_s,
            )
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn nmos_current(
    params: &DeviceParams,
    env: &DeviceEnv,
    width_um: f64,
    l_delta_nm: f64,
    vt_delta: f64,
    v_d: f64,
    v_g: f64,
    v_s: f64,
) -> f64 {
    // Antisymmetry: ensure v_d >= v_s, flip sign if swapped.
    if v_d < v_s {
        return -nmos_current(params, env, width_um, l_delta_nm, vt_delta, v_s, v_g, v_d);
    }
    let vgs = v_g - v_s;
    let vds = v_d - v_s;
    let vsb = v_s.max(0.0); // bulk at ground; clamp forward bias
    let vth = params.vth0 + params.vth_rolloff_per_nm * l_delta_nm + params.body_effect * vsb
        - params.dibl * vds
        + vt_delta;
    let n_vt = params.n_factor * env.v_thermal;
    let overdrive = vgs - vth;
    if overdrive > 0.0 {
        // On: linear conductance toward the drain-source voltage, plus the
        // subthreshold floor evaluated at the threshold for continuity.
        let g_on = G_ON_PER_UM * width_um;
        let i_floor = subthreshold(params, env, width_um, l_delta_nm, 0.0, vds);
        return g_on * vds * soft_min(overdrive / n_vt) + i_floor;
    }
    // Guard against unphysical samples (deep-negative ΔL) without a cliff.
    let l_ratio = env.l_nominal / (env.l_nominal + l_delta_nm).max(1.0);
    params.i0_per_um
        * width_um
        * l_ratio
        * (overdrive / n_vt).exp()
        * (1.0 - (-vds / env.v_thermal).exp())
}

/// Subthreshold current at zero overdrive (used as the continuity floor of
/// the on-region expression).
fn subthreshold(
    params: &DeviceParams,
    env: &DeviceEnv,
    width_um: f64,
    l_delta_nm: f64,
    overdrive: f64,
    vds: f64,
) -> f64 {
    // Guard against unphysical samples (deep-negative ΔL) without a cliff.
    let l_ratio = env.l_nominal / (env.l_nominal + l_delta_nm).max(1.0);
    params.i0_per_um
        * width_um
        * l_ratio
        * (overdrive / (params.n_factor * env.v_thermal)).exp()
        * (1.0 - (-vds / env.v_thermal).exp())
}

/// Smooth saturating ramp: ~x for small x, →1 for large x. Keeps the
/// on-region conductance continuous at the threshold crossing.
fn soft_min(x: f64) -> f64 {
    1.0 - (-x).exp()
}

/// Gate-tunneling current *leaving the gate terminal* (A): positive when
/// conventional current flows from the gate into the channel (gate above
/// the channel average), negative in the reverse direction. Zero when the
/// technology card disables the mechanism (`gate_j0 == 0`).
///
/// The magnitude follows the usual exponential oxide-field dependence,
/// `j₀·W·L·exp(β(|V_gc| − VDD))`, with a `tanh` polarity smoothing so the
/// finite-difference Jacobian stays well-behaved through zero bias.
#[allow(clippy::too_many_arguments)]
pub fn gate_current(
    params: &DeviceParams,
    env: &DeviceEnv,
    width_um: f64,
    l_delta_nm: f64,
    v_d: f64,
    v_g: f64,
    v_s: f64,
) -> f64 {
    if params.gate_j0 == 0.0 {
        return 0.0;
    }
    let l_nm = (env.l_nominal + l_delta_nm).max(1.0);
    let v_ch = 0.5 * (v_d + v_s);
    let vgc = v_g - v_ch;
    let mag = params.gate_j0 * width_um * l_nm * (params.gate_beta * (vgc.abs() - env.vdd)).exp();
    mag * (vgc / (2.0 * env.v_thermal)).tanh()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_process::Technology;

    fn env() -> DeviceEnv {
        let t = Technology::cmos90();
        DeviceEnv {
            vdd: t.vdd(),
            v_thermal: t.thermal_voltage(),
            l_nominal: t.l_variation().nominal(),
        }
    }

    #[test]
    fn off_nmos_leaks_forward() {
        let t = Technology::cmos90();
        let e = env();
        // Gate at 0, source at 0, drain at VDD: classic off-state leakage.
        let i = mos_current(MosType::Nmos, &t.nmos(), &e, 1.0, 0.0, 0.0, e.vdd, 0.0, 0.0);
        assert!(i > 0.0, "off leakage flows drain→source, got {i}");
        assert!(i < 1e-6, "leakage should be small, got {i}");
    }

    #[test]
    fn off_pmos_leaks_forward() {
        let t = Technology::cmos90();
        let e = env();
        // PMOS gate at VDD (off), source at VDD, drain at 0: current flows
        // source→drain, i.e. i_ds < 0 in the drain→source convention.
        let i = mos_current(
            MosType::Pmos,
            &t.pmos(),
            &e,
            1.0,
            0.0,
            0.0,
            0.0,
            e.vdd,
            e.vdd,
        );
        assert!(i < 0.0, "pmos leakage flows source→drain, got {i}");
    }

    #[test]
    fn antisymmetric_in_drain_source() {
        let t = Technology::cmos90();
        let e = env();
        let a = mos_current(MosType::Nmos, &t.nmos(), &e, 1.0, 0.0, 0.0, 0.7, 0.0, 0.1);
        let b = mos_current(MosType::Nmos, &t.nmos(), &e, 1.0, 0.0, 0.0, 0.1, 0.0, 0.7);
        assert!((a + b).abs() < 1e-18 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn shorter_channel_leaks_exponentially_more() {
        let t = Technology::cmos90();
        let e = env();
        let nominal = mos_current(MosType::Nmos, &t.nmos(), &e, 1.0, 0.0, 0.0, e.vdd, 0.0, 0.0);
        let short = mos_current(
            MosType::Nmos,
            &t.nmos(),
            &e,
            1.0,
            -9.0,
            0.0,
            e.vdd,
            0.0,
            0.0,
        );
        let long = mos_current(MosType::Nmos, &t.nmos(), &e, 1.0, 9.0, 0.0, e.vdd, 0.0, 0.0);
        assert!(short > nominal * 1.3, "short {short} vs nominal {nominal}");
        assert!(long < nominal / 1.3, "long {long} vs nominal {nominal}");
        // check exponential-ish: ratio short/nominal ≈ nominal/long
        let r1 = short / nominal;
        let r2 = nominal / long;
        assert!((r1 / r2 - 1.0).abs() < 0.25, "r1 {r1} r2 {r2}");
    }

    #[test]
    fn dibl_increases_leakage_with_vds() {
        let t = Technology::cmos90();
        let e = env();
        let i_full = mos_current(MosType::Nmos, &t.nmos(), &e, 1.0, 0.0, 0.0, e.vdd, 0.0, 0.0);
        let i_half = mos_current(
            MosType::Nmos,
            &t.nmos(),
            &e,
            1.0,
            0.0,
            0.0,
            e.vdd / 2.0,
            0.0,
            0.0,
        );
        assert!(
            i_full > i_half * 1.5,
            "dibl: full {i_full} vs half {i_half}"
        );
    }

    #[test]
    fn body_effect_reduces_leakage_with_source_bias() {
        let t = Technology::cmos90();
        let e = env();
        let i_grounded = mos_current(MosType::Nmos, &t.nmos(), &e, 1.0, 0.0, 0.0, e.vdd, 0.0, 0.0);
        let i_raised = mos_current(MosType::Nmos, &t.nmos(), &e, 1.0, 0.0, 0.0, e.vdd, 0.1, 0.1);
        // raising source by 0.1 V (with gate following) still reduces
        // leakage via body effect and reduced vds
        assert!(i_raised < i_grounded, "{i_raised} vs {i_grounded}");
    }

    #[test]
    fn rdf_vt_shift_scales_leakage() {
        let t = Technology::cmos90();
        let e = env();
        let nom = mos_current(MosType::Nmos, &t.nmos(), &e, 1.0, 0.0, 0.0, e.vdd, 0.0, 0.0);
        let lowvt = mos_current(
            MosType::Nmos,
            &t.nmos(),
            &e,
            1.0,
            0.0,
            -0.05,
            e.vdd,
            0.0,
            0.0,
        );
        let n_vt = t.nmos().n_factor * e.v_thermal;
        let expect = (0.05 / n_vt).exp();
        assert!(
            ((lowvt / nom) / expect - 1.0).abs() < 1e-9,
            "ratio {} vs {expect}",
            lowvt / nom
        );
    }

    #[test]
    fn on_device_conducts_strongly() {
        let t = Technology::cmos90();
        let e = env();
        // Gate high, small vds: strong conduction.
        let i = mos_current(
            MosType::Nmos,
            &t.nmos(),
            &e,
            1.0,
            0.0,
            0.0,
            0.01,
            e.vdd,
            0.0,
        );
        assert!(i > 1e-6, "on current should be large, got {i}");
    }

    #[test]
    fn width_scales_current_linearly() {
        let t = Technology::cmos90();
        let e = env();
        let i1 = mos_current(MosType::Nmos, &t.nmos(), &e, 1.0, 0.0, 0.0, e.vdd, 0.0, 0.0);
        let i2 = mos_current(MosType::Nmos, &t.nmos(), &e, 2.0, 0.0, 0.0, e.vdd, 0.0, 0.0);
        assert!((i2 / i1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vds_zero_current() {
        let t = Technology::cmos90();
        let e = env();
        let i = mos_current(MosType::Nmos, &t.nmos(), &e, 1.0, 0.0, 0.0, 0.4, 0.0, 0.4);
        assert_eq!(i, 0.0);
    }
}
