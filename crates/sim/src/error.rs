//! Error type for the transistor-level solver.

use std::fmt;

/// Errors from netlist construction or DC solving.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The netlist is malformed (bad node references, no devices, …).
    InvalidNetlist {
        /// Description of the problem.
        reason: String,
    },
    /// The Newton iteration failed to converge even after every
    /// deterministic recovery stage (gmin continuation, source stepping)
    /// was exhausted.
    Unconverged {
        /// Cell name for diagnosis.
        cell: String,
        /// Input state that failed.
        state: u32,
        /// Final residual norm (A).
        residual: f64,
        /// The cell's own current scale (A) the residual was judged
        /// against: the largest device terminal current magnitude at the
        /// final iterate. A residual far below this scale would have been
        /// accepted.
        residual_scale: f64,
        /// Total Newton iterations spent across all attempts.
        iterations: usize,
        /// Whether the gmin-continuation / source-stepping recovery
        /// ladder ran (false when the caller disabled recovery).
        recovery_attempted: bool,
    },
    /// An input state index exceeds the cell's input count.
    InvalidState {
        /// The offending state.
        state: u32,
        /// Number of inputs of the cell.
        n_inputs: usize,
    },
    /// An underlying numerical routine failed.
    Numeric(leakage_numeric::NumericError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidNetlist { reason } => write!(f, "invalid netlist: {reason}"),
            SimError::Unconverged {
                cell,
                state,
                residual,
                residual_scale,
                iterations,
                recovery_attempted,
            } => write!(
                f,
                "dc solve for cell {cell} state {state:b} did not converge after {iterations} \
                 iterations (residual {residual:.3e} A against scale {residual_scale:.3e} A, \
                 recovery {})",
                if *recovery_attempted {
                    "exhausted"
                } else {
                    "disabled"
                }
            ),
            SimError::InvalidState { state, n_inputs } => write!(
                f,
                "input state {state:#b} out of range for {n_inputs} inputs"
            ),
            SimError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<leakage_numeric::NumericError> for SimError {
    fn from(e: leakage_numeric::NumericError) -> SimError {
        SimError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SimError::InvalidNetlist {
            reason: "no devices".into(),
        };
        assert!(e.to_string().contains("no devices"));
        let e = SimError::Unconverged {
            cell: "nand2".into(),
            state: 2,
            residual: 1e-12,
            residual_scale: 1e-9,
            iterations: 800,
            recovery_attempted: true,
        };
        assert!(e.to_string().contains("nand2"));
        assert!(e.to_string().contains("800"));
        assert!(e.to_string().contains("recovery exhausted"));
        let e = SimError::Unconverged {
            cell: "nand2".into(),
            state: 2,
            residual: 1e-12,
            residual_scale: 1e-9,
            iterations: 1,
            recovery_attempted: false,
        };
        assert!(e.to_string().contains("recovery disabled"));
        let e = SimError::InvalidState {
            state: 8,
            n_inputs: 2,
        };
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
