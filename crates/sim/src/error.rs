//! Error type for the transistor-level solver.

use std::fmt;

/// Errors from netlist construction or DC solving.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The netlist is malformed (bad node references, no devices, …).
    InvalidNetlist {
        /// Description of the problem.
        reason: String,
    },
    /// The Newton iteration failed to converge.
    NoConvergence {
        /// Cell name for diagnosis.
        cell: String,
        /// Input state that failed.
        state: u32,
        /// Final residual norm (A).
        residual: f64,
    },
    /// An input state index exceeds the cell's input count.
    InvalidState {
        /// The offending state.
        state: u32,
        /// Number of inputs of the cell.
        n_inputs: usize,
    },
    /// An underlying numerical routine failed.
    Numeric(leakage_numeric::NumericError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidNetlist { reason } => write!(f, "invalid netlist: {reason}"),
            SimError::NoConvergence {
                cell,
                state,
                residual,
            } => write!(
                f,
                "dc solve for cell {cell} state {state:b} did not converge (residual {residual:.3e} A)"
            ),
            SimError::InvalidState { state, n_inputs } => write!(
                f,
                "input state {state:#b} out of range for {n_inputs} inputs"
            ),
            SimError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<leakage_numeric::NumericError> for SimError {
    fn from(e: leakage_numeric::NumericError) -> SimError {
        SimError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SimError::InvalidNetlist {
            reason: "no devices".into(),
        };
        assert!(e.to_string().contains("no devices"));
        let e = SimError::NoConvergence {
            cell: "nand2".into(),
            state: 2,
            residual: 1e-12,
        };
        assert!(e.to_string().contains("nand2"));
        let e = SimError::InvalidState {
            state: 8,
            n_inputs: 2,
        };
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
