//! Damped-Newton DC operating-point solver for cell leakage.
//!
//! For a given input state the rails and input pins are ideal voltage
//! sources; the remaining (internal) node voltages are found by Newton
//! iteration on Kirchhoff's current law with a finite-difference Jacobian.
//! Cells are tiny (≤ ~12 internal nodes) so the dense `O(n³)` solve per
//! iteration is negligible; robustness comes from step limiting, voltage
//! clamping, and per-cell initialization hints (which also select the
//! intended stable state of bistable cells such as SRAM and latches).

use crate::device::{gate_current, mos_current, DeviceEnv};
use crate::error::SimError;
use crate::netlist::Device;
use crate::netlist::{CellNetlist, InitHint, GND, VDD};
use leakage_numeric::matrix::Matrix;
use leakage_numeric::Instruments;
use leakage_process::Technology;

/// Leakage-stabilizing conductance from every internal node to each rail
/// (S). Far below leakage-equivalent conductances (~1e-9 S) so it does not
/// perturb results, but keeps truly floating nodes well-posed.
const G_MIN: f64 = 1e-15;

/// Maximum Newton step per node voltage (V).
const MAX_STEP: f64 = 0.3;

/// Iteration cap per Newton attempt.
const MAX_ITERS: usize = 200;

/// Gmin-continuation schedule (S): start with a heavily stabilized,
/// near-linear system and relax towards the target gmin. Each stage warm
/// starts from the previous stage's solution.
const GMIN_LADDER: [f64; 3] = [1e-6, 1e-9, 1e-12];

/// Source-stepping schedule: supply and input rails are ramped from a
/// fraction of VDD (where every device is nearly off and the system is
/// mild) up to the full operating point, warm-starting each step.
const SOURCE_STEPS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Knobs for the Newton solve and its recovery ladder.
///
/// The defaults reproduce the production configuration; tests and fault
/// injection shrink `max_iters` or disable `recovery` to exercise the
/// typed [`SimError::Unconverged`] path deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Iteration cap per Newton attempt.
    pub max_iters: usize,
    /// Whether the gmin-continuation / source-stepping recovery ladder
    /// runs after a failed plain attempt.
    pub recovery: bool,
    /// Stabilizing conductance tying internal nodes to the rails (S).
    pub gmin: f64,
}

impl Default for SolverOptions {
    fn default() -> SolverOptions {
        SolverOptions {
            max_iters: MAX_ITERS,
            recovery: true,
            gmin: G_MIN,
        }
    }
}

/// Which recovery stage (if any) produced the accepted solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStage {
    /// The plain damped-Newton attempt converged; no recovery needed.
    None,
    /// Accepted after the gmin-continuation schedule.
    GminContinuation,
    /// Accepted after the source-stepping schedule.
    SourceStepping,
}

/// Outcome of one damped-Newton attempt (one rung of the recovery ladder).
struct NewtonAttempt {
    /// Whether the attempt met the acceptance test.
    accepted: bool,
    /// Final residual norm (A).
    res_norm: f64,
    /// Largest device terminal-current magnitude at the final iterate (A).
    current_scale: f64,
    /// Newton iterations spent in this attempt.
    iterations: usize,
}

/// DC solution for one cell and input state.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    /// All node voltages, indexed by `NodeId`.
    pub voltages: Vec<f64>,
    /// Total current drawn from the VDD rail and logic-high inputs (A).
    pub leakage: f64,
    /// Current sunk into GND and logic-low inputs (A) — equals `leakage`
    /// up to solver tolerance (KCL).
    pub leakage_gnd_side: f64,
    /// Newton iterations used (summed across recovery attempts).
    pub iterations: usize,
    /// Which recovery stage, if any, rescued the solve.
    pub recovery: RecoveryStage,
}

/// Cell-level DC leakage solver bound to a technology card.
///
/// # Example
///
/// ```
/// use leakage_process::Technology;
/// use leakage_sim::{CellNetlist, LeakageSolver};
///
/// let solver = LeakageSolver::new(&Technology::cmos90());
/// let nand2 = CellNetlist::nand(2, 1.0, 2.0);
/// // Stack effect: both inputs low (state 0) leaks much less than one low.
/// let both_off = solver.cell_leakage(&nand2, 0b00, 0.0, 0.0)?;
/// let one_off = solver.cell_leakage(&nand2, 0b01, 0.0, 0.0)?;
/// assert!(both_off < one_off);
/// # Ok::<(), leakage_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LeakageSolver {
    tech: Technology,
    env: DeviceEnv,
}

impl LeakageSolver {
    /// Creates a solver for the given technology.
    pub fn new(tech: &Technology) -> LeakageSolver {
        LeakageSolver {
            tech: tech.clone(),
            env: DeviceEnv {
                vdd: tech.vdd(),
                v_thermal: tech.thermal_voltage(),
                l_nominal: tech.l_variation().nominal(),
            },
        }
    }

    /// The technology card the solver was built with.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Solves the DC operating point of `cell` in input `state` with a
    /// channel-length deviation `l_delta_nm` (shared by all devices in the
    /// cell — transistors within a cell are fully correlated, §2.1.1) and
    /// per-device RDF threshold shifts `vt_deltas` (empty slice = none).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidState`] for an out-of-range state,
    /// [`SimError::InvalidNetlist`] if `vt_deltas` has the wrong length,
    /// and [`SimError::Unconverged`] if Newton fails even after the
    /// gmin-continuation and source-stepping recovery stages.
    pub fn solve(
        &self,
        cell: &CellNetlist,
        state: u32,
        l_delta_nm: f64,
        vt_deltas: &[f64],
    ) -> Result<DcSolution, SimError> {
        self.solve_with_options(
            cell,
            state,
            l_delta_nm,
            vt_deltas,
            &SolverOptions::default(),
        )
    }

    /// [`LeakageSolver::solve`] with explicit [`SolverOptions`].
    ///
    /// The plain damped-Newton attempt runs first and, when it converges,
    /// yields exactly the same bit pattern as the historical single-stage
    /// solver. Only on failure does the deterministic recovery ladder
    /// engage: gmin continuation (re-solving under a decreasing
    /// stabilizing-conductance schedule, warm-starting each stage), then
    /// source stepping (ramping the rails from a fraction of VDD to the
    /// full operating point). [`SimError::Unconverged`] is returned only
    /// after every enabled stage is exhausted.
    ///
    /// # Errors
    ///
    /// See [`LeakageSolver::solve`].
    pub fn solve_with_options(
        &self,
        cell: &CellNetlist,
        state: u32,
        l_delta_nm: f64,
        vt_deltas: &[f64],
        opts: &SolverOptions,
    ) -> Result<DcSolution, SimError> {
        if state >= cell.n_states() {
            return Err(SimError::InvalidState {
                state,
                n_inputs: cell.n_inputs(),
            });
        }
        if !vt_deltas.is_empty() && vt_deltas.len() != cell.devices().len() {
            return Err(SimError::InvalidNetlist {
                reason: format!(
                    "vt_deltas length {} does not match device count {}",
                    vt_deltas.len(),
                    cell.devices().len()
                ),
            });
        }
        let vdd = self.env.vdd;
        debug_assert!(
            !SOURCE_STEPS.is_empty(),
            "source-stepping schedule is non-empty"
        );
        let mut v = self.initial_voltages(cell, state, vdd);

        if cell.n_internal() == 0 {
            return Ok(self.finish(cell, v, l_delta_nm, vt_deltas, 0, RecoveryStage::None));
        }

        // Plain attempt — bit-identical to the historical one-stage solver
        // for every cell that converges on the first try.
        let first = self.newton_attempt(cell, &mut v, l_delta_nm, vt_deltas, opts.gmin, vdd, opts);
        let mut iterations = first.iterations;
        if first.accepted {
            return Ok(self.finish(
                cell,
                v,
                l_delta_nm,
                vt_deltas,
                iterations,
                RecoveryStage::None,
            ));
        }
        if !opts.recovery {
            return Err(SimError::Unconverged {
                cell: cell.name().to_owned(),
                state,
                residual: first.res_norm,
                residual_scale: first.current_scale,
                iterations,
                recovery_attempted: false,
            });
        }

        // Stage 1 — gmin continuation: restart from the hint basin with a
        // heavily stabilized (near-linear) system, relax the conductance
        // down the fixed schedule, warm-starting every pass, and judge
        // acceptance on a final pass at the target gmin.
        v = self.initial_voltages(cell, state, vdd);
        for g in GMIN_LADDER {
            let stage = self.newton_attempt(
                cell,
                &mut v,
                l_delta_nm,
                vt_deltas,
                g.max(opts.gmin),
                vdd,
                opts,
            );
            iterations += stage.iterations;
        }
        let gmin_final =
            self.newton_attempt(cell, &mut v, l_delta_nm, vt_deltas, opts.gmin, vdd, opts);
        iterations += gmin_final.iterations;
        if gmin_final.accepted {
            return Ok(self.finish(
                cell,
                v,
                l_delta_nm,
                vt_deltas,
                iterations,
                RecoveryStage::GminContinuation,
            ));
        }

        // Stage 2 — source stepping: ramp the rails (and high inputs) up
        // the fixed fraction schedule, warm-starting each step; only the
        // full-VDD step decides acceptance.
        let mut last = gmin_final;
        v = self.initial_voltages(cell, state, SOURCE_STEPS[0] * vdd);
        for frac in SOURCE_STEPS {
            let vdd_eff = frac * vdd;
            self.set_rails(cell, state, &mut v, vdd_eff);
            last = self.newton_attempt(
                cell, &mut v, l_delta_nm, vt_deltas, opts.gmin, vdd_eff, opts,
            );
            iterations += last.iterations;
        }
        if last.accepted {
            return Ok(self.finish(
                cell,
                v,
                l_delta_nm,
                vt_deltas,
                iterations,
                RecoveryStage::SourceStepping,
            ));
        }

        Err(SimError::Unconverged {
            cell: cell.name().to_owned(),
            state,
            residual: last.res_norm,
            residual_scale: last.current_scale,
            iterations,
            recovery_attempted: true,
        })
    }

    /// Boundary conditions and hinted initialization at an effective
    /// supply voltage `vdd_eff` (equal to VDD except during source
    /// stepping).
    fn initial_voltages(&self, cell: &CellNetlist, state: u32, vdd_eff: f64) -> Vec<f64> {
        let n_nodes = cell.n_nodes();
        let first_internal = 2 + cell.n_inputs();
        debug_assert!(
            n_nodes >= first_internal,
            "netlist numbers rails and inputs first"
        );
        let mut v = vec![0.0; n_nodes];
        v[VDD] = vdd_eff;
        for i in 0..cell.n_inputs() {
            v[2 + i] = if (state >> i) & 1 == 1 { vdd_eff } else { 0.0 };
        }
        // Initialization: mid-rail unless hinted.
        for node in first_internal..n_nodes {
            v[node] = 0.5 * vdd_eff;
        }
        for (node, hint) in cell.init_hints() {
            v[*node] = match hint {
                InitHint::Fraction(f) => f * vdd_eff,
                InitHint::FollowInput { input, inverted } => {
                    let bit = (state >> input) & 1 == 1;
                    if bit != *inverted {
                        vdd_eff
                    } else {
                        0.0
                    }
                }
            };
        }
        v
    }

    /// Re-pins only the boundary nodes (rails and inputs) to `vdd_eff`,
    /// leaving internal nodes at their warm-start values.
    fn set_rails(&self, cell: &CellNetlist, state: u32, v: &mut [f64], vdd_eff: f64) {
        debug_assert!(v.len() >= 2 + cell.n_inputs(), "v spans rails and inputs");
        v[VDD] = vdd_eff;
        v[GND] = 0.0;
        for i in 0..cell.n_inputs() {
            v[2 + i] = if (state >> i) & 1 == 1 { vdd_eff } else { 0.0 };
        }
    }

    /// Builds the accepted solution (terminal currents at full rails).
    fn finish(
        &self,
        cell: &CellNetlist,
        v: Vec<f64>,
        l_delta_nm: f64,
        vt_deltas: &[f64],
        iterations: usize,
        recovery: RecoveryStage,
    ) -> DcSolution {
        let leakage = self.supply_current(cell, &v, l_delta_nm, vt_deltas);
        let gnd = self.ground_current(cell, &v, l_delta_nm, vt_deltas);
        DcSolution {
            voltages: v,
            leakage,
            leakage_gnd_side: gnd,
            iterations,
            recovery,
        }
    }

    /// One damped-Newton attempt from the current iterate in `v`.
    ///
    /// Runs up to `opts.max_iters` iterations with step-halving line
    /// search, then judges the result: accepted when the last step was
    /// tiny or the residual is far below the cell's own current scale —
    /// exponential nodes can dither at machine precision while the
    /// solution is long since found. A singular Jacobian ends the attempt
    /// unconverged instead of aborting the ladder, so later recovery
    /// stages still get their chance.
    #[allow(clippy::too_many_arguments)]
    fn newton_attempt(
        &self,
        cell: &CellNetlist,
        v: &mut [f64],
        l_delta_nm: f64,
        vt_deltas: &[f64],
        gmin: f64,
        vdd_eff: f64,
        opts: &SolverOptions,
    ) -> NewtonAttempt {
        let first_internal = 2 + cell.n_inputs();
        let n_int = cell.n_internal();
        debug_assert!(
            v.len() == first_internal + n_int,
            "v spans every netlist node"
        );
        let norm = |r: &[f64]| r.iter().fold(0.0_f64, |m, x| m.max(x.abs()));
        let mut residual = vec![0.0; n_int];
        let mut iterations = 0;
        let mut converged = false;
        for iter in 0..opts.max_iters {
            iterations = iter + 1;
            self.kcl_residual(cell, v, l_delta_nm, vt_deltas, gmin, vdd_eff, &mut residual);
            let res0 = norm(&residual);

            // Finite-difference Jacobian (columns = internal nodes).
            let mut jac = Matrix::zeros(n_int, n_int);
            let mut pert = vec![0.0; n_int];
            for j in 0..n_int {
                let node = first_internal + j;
                let old = v[node];
                let h = 1e-7;
                v[node] = old + h;
                self.kcl_residual(cell, v, l_delta_nm, vt_deltas, gmin, vdd_eff, &mut pert);
                v[node] = old;
                for i in 0..n_int {
                    jac[(i, j)] = (pert[i] - residual[i]) / h;
                }
            }

            let neg_res: Vec<f64> = residual.iter().map(|r| -r).collect();
            let delta = match jac.solve(&neg_res) {
                Ok(delta) => delta,
                Err(_) => break,
            };

            // Damped Newton with backtracking: shrink the step until the
            // residual norm decreases (exponential device curves make the
            // full step overshoot near on/off transitions).
            let base: Vec<f64> = v[first_internal..].to_vec();
            let mut max_dv = 0.0_f64;
            let mut scale = 1.0;
            for _ in 0..8 {
                max_dv = 0.0;
                for (j, d) in delta.iter().enumerate() {
                    let step = (scale * d).clamp(-MAX_STEP, MAX_STEP);
                    let node = first_internal + j;
                    v[node] = (base[j] + step).clamp(-0.2, vdd_eff + 0.2);
                    max_dv = max_dv.max(step.abs());
                }
                self.kcl_residual(cell, v, l_delta_nm, vt_deltas, gmin, vdd_eff, &mut residual);
                if norm(&residual) <= res0 * (1.0 - 1e-4 * scale) || norm(&residual) < 1e-18 {
                    break;
                }
                scale *= 0.5;
            }

            if max_dv < 1e-11 {
                converged = true;
                break;
            }
        }
        self.kcl_residual(cell, v, l_delta_nm, vt_deltas, gmin, vdd_eff, &mut residual);
        let res_norm = norm(&residual);
        let current_scale = cell
            .devices()
            .iter()
            .enumerate()
            .map(|(di, d)| {
                let vt_delta = vt_deltas.get(di).copied().unwrap_or(0.0);
                let (ld, _, _) = self.terminal_currents(d, l_delta_nm, vt_delta, v);
                ld.abs()
            })
            .fold(0.0_f64, f64::max);
        let accepted = converged || res_norm <= (1e-9 * current_scale).max(1e-15);
        NewtonAttempt {
            accepted,
            res_norm,
            current_scale,
            iterations,
        }
    }

    /// Convenience wrapper returning just the leakage current with a
    /// uniform RDF shift applied to all devices.
    ///
    /// # Errors
    ///
    /// See [`LeakageSolver::solve`].
    pub fn cell_leakage(
        &self,
        cell: &CellNetlist,
        state: u32,
        l_delta_nm: f64,
        vt_delta: f64,
    ) -> Result<f64, SimError> {
        self.cell_leakage_instrumented(cell, state, l_delta_nm, vt_delta, Instruments::none())
    }

    /// [`LeakageSolver::cell_leakage`] reporting to an injected
    /// [`Instruments`]: one `sim.solves` tick per call plus the Newton
    /// iteration count. Counter-only on purpose — callers run this from
    /// parallel characterization workers, and plain counter increments
    /// aggregate to the same totals for every thread count.
    ///
    /// # Errors
    ///
    /// See [`LeakageSolver::solve`].
    pub fn cell_leakage_instrumented(
        &self,
        cell: &CellNetlist,
        state: u32,
        l_delta_nm: f64,
        vt_delta: f64,
        ins: Instruments<'_>,
    ) -> Result<f64, SimError> {
        let deltas: Vec<f64>;
        let slice: &[f64] = if vt_delta == 0.0 {
            &[]
        } else {
            deltas = vec![vt_delta; cell.devices().len()];
            &deltas
        };
        let sol = self.solve(cell, state, l_delta_nm, slice)?;
        ins.add("sim.solves", 1);
        ins.add("sim.newton_iterations", sol.iterations as u64);
        match sol.recovery {
            RecoveryStage::None => {}
            RecoveryStage::GminContinuation => ins.add("sim.recoveries.gmin", 1),
            RecoveryStage::SourceStepping => ins.add("sim.recoveries.source_step", 1),
        }
        Ok(sol.leakage)
    }

    /// Per-device currents *leaving* (drain, gate, source) terminal nodes.
    ///
    /// The channel current `i_ds` leaves the drain and enters the source;
    /// gate-tunneling current leaves the gate and splits evenly into the
    /// two channel terminals.
    fn terminal_currents(
        &self,
        d: &Device,
        l_delta_nm: f64,
        vt_delta: f64,
        v: &[f64],
    ) -> (f64, f64, f64) {
        debug_assert!(
            d.drain < v.len() && d.gate < v.len() && d.source < v.len(),
            "device terminals index validated netlist nodes"
        );
        let params = match d.mos_type {
            crate::device::MosType::Nmos => self.tech.nmos(),
            crate::device::MosType::Pmos => self.tech.pmos(),
        };
        let i_ds = mos_current(
            d.mos_type,
            &params,
            &self.env,
            d.width_um,
            l_delta_nm,
            vt_delta,
            v[d.drain],
            v[d.gate],
            v[d.source],
        );
        let i_g = gate_current(
            &params,
            &self.env,
            d.width_um,
            l_delta_nm,
            v[d.drain],
            v[d.gate],
            v[d.source],
        );
        (i_ds - 0.5 * i_g, i_g, -i_ds - 0.5 * i_g)
    }

    /// KCL residual (sum of currents leaving each internal node) under a
    /// given stabilizing conductance and effective supply.
    #[allow(clippy::too_many_arguments)]
    fn kcl_residual(
        &self,
        cell: &CellNetlist,
        v: &[f64],
        l_delta_nm: f64,
        vt_deltas: &[f64],
        gmin: f64,
        vdd_eff: f64,
        out: &mut [f64],
    ) {
        let first_internal = 2 + cell.n_inputs();
        debug_assert!(
            out.len() == cell.n_internal() && v.len() == first_internal + out.len(),
            "residual spans the internal nodes of v"
        );
        out.iter_mut().for_each(|r| *r = 0.0);
        for (di, d) in cell.devices().iter().enumerate() {
            let vt_delta = vt_deltas.get(di).copied().unwrap_or(0.0);
            let (leave_d, leave_g, leave_s) = self.terminal_currents(d, l_delta_nm, vt_delta, v);
            if d.drain >= first_internal {
                out[d.drain - first_internal] += leave_d;
            }
            if d.gate >= first_internal {
                out[d.gate - first_internal] += leave_g;
            }
            if d.source >= first_internal {
                out[d.source - first_internal] += leave_s;
            }
        }
        // Stabilizing ties to both rails.
        for j in 0..out.len() {
            let node = first_internal + j;
            out[j] += gmin * (v[node] - 0.0) + gmin * (v[node] - vdd_eff);
        }
    }

    /// Current drawn out of VDD and logic-high inputs.
    fn supply_current(
        &self,
        cell: &CellNetlist,
        v: &[f64],
        l_delta_nm: f64,
        vt_deltas: &[f64],
    ) -> f64 {
        self.source_current(cell, v, l_delta_nm, vt_deltas, true)
    }

    /// Current sunk into GND and logic-low inputs.
    fn ground_current(
        &self,
        cell: &CellNetlist,
        v: &[f64],
        l_delta_nm: f64,
        vt_deltas: &[f64],
    ) -> f64 {
        self.source_current(cell, v, l_delta_nm, vt_deltas, false)
    }

    fn source_current(
        &self,
        cell: &CellNetlist,
        v: &[f64],
        l_delta_nm: f64,
        vt_deltas: &[f64],
        high_side: bool,
    ) -> f64 {
        let vdd = self.env.vdd;
        debug_assert!(v.len() >= 2 + cell.n_inputs(), "v spans rails and inputs");
        let is_source_node = |n: usize| -> bool {
            if n >= 2 + cell.n_inputs() {
                return false;
            }
            let high = (v[n] - vdd).abs() < 1e-6;
            let low = v[n].abs() < 1e-6;
            if high_side {
                high
            } else {
                low || n == GND
            }
        };
        let mut total = 0.0;
        for (di, d) in cell.devices().iter().enumerate() {
            let vt_delta = vt_deltas.get(di).copied().unwrap_or(0.0);
            let (leave_d, leave_g, leave_s) = self.terminal_currents(d, l_delta_nm, vt_delta, v);
            // High side accumulates current *leaving* high nodes; the GND
            // side accumulates current *entering* low nodes.
            let sign = if high_side { 1.0 } else { -1.0 };
            if is_source_node(d.drain) {
                total += sign * leave_d; // chipleak-lint: allow(l10): fixed device order; Kahan would change golden-pinned bits
            }
            if is_source_node(d.gate) {
                total += sign * leave_g; // chipleak-lint: allow(l10): fixed device order; Kahan would change golden-pinned bits
            }
            if is_source_node(d.source) {
                total += sign * leave_s; // chipleak-lint: allow(l10): fixed device order; Kahan would change golden-pinned bits
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{input_node, NetlistBuilder};

    fn solver() -> LeakageSolver {
        LeakageSolver::new(&Technology::cmos90())
    }

    #[test]
    fn inverter_output_levels() {
        let s = solver();
        let inv = CellNetlist::inverter(1.0, 2.0);
        let vdd = s.technology().vdd();
        let low_in = s.solve(&inv, 0, 0.0, &[]).unwrap();
        let out = 2 + inv.n_inputs();
        assert!(
            low_in.voltages[out] > vdd - 0.05,
            "out should be high, got {}",
            low_in.voltages[out]
        );
        let high_in = s.solve(&inv, 1, 0.0, &[]).unwrap();
        assert!(
            high_in.voltages[out] < 0.05,
            "out should be low, got {}",
            high_in.voltages[out]
        );
    }

    #[test]
    fn inverter_leakage_positive_and_balanced() {
        let s = solver();
        let inv = CellNetlist::inverter(1.0, 2.0);
        for state in 0..2 {
            let sol = s.solve(&inv, state, 0.0, &[]).unwrap();
            assert!(sol.leakage > 1e-12, "leakage {}", sol.leakage);
            assert!(sol.leakage < 1e-6);
            // KCL: vdd-side equals gnd-side
            assert!(
                (sol.leakage - sol.leakage_gnd_side).abs() / sol.leakage < 1e-3,
                "vdd {} vs gnd {}",
                sol.leakage,
                sol.leakage_gnd_side
            );
        }
    }

    #[test]
    fn nand2_stack_effect() {
        let s = solver();
        let nand2 = CellNetlist::nand(2, 1.0, 2.0);
        let both_low = s.cell_leakage(&nand2, 0b00, 0.0, 0.0).unwrap();
        let a_low = s.cell_leakage(&nand2, 0b10, 0.0, 0.0).unwrap();
        let b_low = s.cell_leakage(&nand2, 0b01, 0.0, 0.0).unwrap();
        let both_high = s.cell_leakage(&nand2, 0b11, 0.0, 0.0).unwrap();
        // Stack effect: two series off devices leak several times less
        // than a single off device.
        assert!(
            a_low / both_low > 3.0,
            "stack ratio {} (both_low {both_low}, a_low {a_low})",
            a_low / both_low
        );
        assert!(b_low > both_low);
        // All-high: PMOS all off in parallel -> roughly 2x single pmos leak.
        assert!(both_high > 0.0);
    }

    #[test]
    fn nor2_stack_effect_on_pmos() {
        let s = solver();
        let nor2 = CellNetlist::nor(2, 1.0, 2.0);
        let both_high = s.cell_leakage(&nor2, 0b11, 0.0, 0.0).unwrap();
        let one_high = s.cell_leakage(&nor2, 0b01, 0.0, 0.0).unwrap();
        assert!(
            one_high / both_high > 2.0,
            "pmos stack ratio {}",
            one_high / both_high
        );
    }

    #[test]
    fn leakage_increases_for_short_channel() {
        let s = solver();
        let inv = CellNetlist::inverter(1.0, 2.0);
        let nominal = s.cell_leakage(&inv, 0, 0.0, 0.0).unwrap();
        let short = s.cell_leakage(&inv, 0, -6.4, 0.0).unwrap(); // -2σ
        let long = s.cell_leakage(&inv, 0, 6.4, 0.0).unwrap(); // +2σ
        assert!(short > nominal && nominal > long);
        assert!(short / long > 2.0, "spread {}", short / long);
    }

    #[test]
    fn log_leakage_vs_length_is_smooth_monotone() {
        let s = solver();
        let nand3 = CellNetlist::nand(3, 1.0, 2.0);
        let mut prev = f64::INFINITY;
        for i in -8..=8 {
            let dl = i as f64;
            let leak = s.cell_leakage(&nand3, 0, dl, 0.0).unwrap();
            assert!(leak > 0.0 && leak < prev, "monotone decreasing in L");
            prev = leak;
        }
    }

    #[test]
    fn invalid_state_rejected() {
        let s = solver();
        let inv = CellNetlist::inverter(1.0, 2.0);
        assert!(matches!(
            s.solve(&inv, 2, 0.0, &[]),
            Err(SimError::InvalidState { .. })
        ));
    }

    #[test]
    fn wrong_vt_delta_length_rejected() {
        let s = solver();
        let inv = CellNetlist::inverter(1.0, 2.0);
        assert!(s.solve(&inv, 0, 0.0, &[0.01]).is_err());
        assert!(s.solve(&inv, 0, 0.0, &[0.01, 0.0]).is_ok());
    }

    #[test]
    fn per_device_vt_deltas_apply() {
        let s = solver();
        let inv = CellNetlist::inverter(1.0, 2.0);
        // input low: NMOS (device 0) is the off/leaking one. Lowering its
        // Vt must increase leakage; lowering the (on) PMOS's must not.
        let base = s.cell_leakage(&inv, 0, 0.0, 0.0).unwrap();
        let low_nmos = s.solve(&inv, 0, 0.0, &[-0.05, 0.0]).unwrap().leakage;
        let low_pmos = s.solve(&inv, 0, 0.0, &[0.0, -0.05]).unwrap().leakage;
        assert!(low_nmos > base * 1.5, "nmos vt shift: {low_nmos} vs {base}");
        assert!(
            (low_pmos - base).abs() / base < 0.05,
            "pmos vt shift should barely matter: {low_pmos} vs {base}"
        );
    }

    #[test]
    fn transmission_gate_cell_converges() {
        // Pass-gate between an input and an inverter — exercises a
        // floating-ish node topology.
        let mut b = NetlistBuilder::new("tgate_inv", 2);
        let mid = b.node();
        let out = b.node();
        // tgate: input 0 is data, input 1 is enable (active high nmos,
        // active low pmos would need an inverted enable; use input 1 and
        // its complement as separate pins for simplicity -> treat enable
        // low = both off).
        b.nmos(mid, input_node(1), input_node(0), 1.0);
        b.pmos(mid, input_node(1), input_node(0), 2.0); // crude: same gate
        b.nmos(out, mid, GND, 1.0);
        b.pmos(out, mid, VDD, 2.0);
        b.hint(mid, InitHint::Fraction(0.5));
        b.hint(out, InitHint::Fraction(0.5));
        let cell = b.build().unwrap();
        let s = solver();
        for state in 0..4 {
            let sol = s.solve(&cell, state, 0.0, &[]).unwrap();
            assert!(sol.leakage.is_finite());
            assert!(sol.voltages.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn gate_leakage_adds_to_total() {
        let base = solver();
        let gl = LeakageSolver::new(&Technology::cmos90_with_gate_leakage());
        let inv = CellNetlist::inverter(1.0, 2.0);
        for state in 0..2 {
            let without = base.cell_leakage(&inv, state, 0.0, 0.0).unwrap();
            let with = gl.cell_leakage(&inv, state, 0.0, 0.0).unwrap();
            assert!(with > without * 1.02, "state {state}: {with} vs {without}");
            if state == 1 {
                // Input high: the wide on-NMOS tunnels hard.
                assert!(with > without * 1.2, "{with} vs {without}");
            }
            // KCL balance must still hold with the second mechanism.
            let sol = gl.solve(&inv, state, 0.0, &[]).unwrap();
            assert!(
                (sol.leakage - sol.leakage_gnd_side).abs() / sol.leakage < 1e-3,
                "state {state}: vdd {} vs gnd {}",
                sol.leakage,
                sol.leakage_gnd_side
            );
        }
    }

    #[test]
    fn gate_leakage_is_weakly_length_dependent() {
        // Subthreshold leakage moves exponentially with ΔL; the gate
        // component only linearly. With the mechanism dominant (input
        // high: on-NMOS tunnels), the total moves much less with ΔL.
        let gl = LeakageSolver::new(&Technology::cmos90_with_gate_leakage());
        let base = solver();
        let inv = CellNetlist::inverter(1.0, 2.0);
        let spread = |s: &LeakageSolver| {
            let short = s.cell_leakage(&inv, 1, -6.0, 0.0).unwrap();
            let long = s.cell_leakage(&inv, 1, 6.0, 0.0).unwrap();
            short / long
        };
        assert!(
            spread(&gl) < spread(&base),
            "gate leakage flattens the L-sensitivity: {} vs {}",
            spread(&gl),
            spread(&base)
        );
    }

    #[test]
    fn gate_leakage_converges_across_library_like_cells() {
        let gl = LeakageSolver::new(&Technology::cmos90_with_gate_leakage());
        for cell in [
            CellNetlist::inverter(1.0, 2.0),
            CellNetlist::nand(3, 1.0, 2.0),
            CellNetlist::nor(4, 1.0, 2.0),
        ] {
            for state in 0..cell.n_states() {
                let leak = gl.cell_leakage(&cell, state, 0.0, 0.0).unwrap();
                assert!(leak > 0.0 && leak < 1e-5, "{} state {state}", cell.name());
            }
        }
    }

    #[test]
    fn starved_iteration_budget_reports_unconverged_with_scale() {
        // One iteration and no recovery cannot converge a nand3 from the
        // mid-rail start: the typed error must carry the residual, the
        // cell's current scale, the iteration spend, and the fact that
        // recovery never ran.
        let s = solver();
        let nand3 = CellNetlist::nand(3, 1.0, 2.0);
        let opts = SolverOptions {
            max_iters: 1,
            recovery: false,
            ..SolverOptions::default()
        };
        match s.solve_with_options(&nand3, 0, 0.0, &[], &opts) {
            Err(SimError::Unconverged {
                cell,
                state,
                residual,
                residual_scale,
                iterations,
                recovery_attempted,
            }) => {
                assert_eq!(cell, nand3.name());
                assert_eq!(state, 0);
                assert!(residual.is_finite() && residual > 0.0);
                assert!(residual_scale.is_finite() && residual_scale > 0.0);
                assert_eq!(iterations, 1);
                assert!(!recovery_attempted);
            }
            other => panic!("expected Unconverged, got {other:?}"),
        }
    }

    #[test]
    fn recovery_ladder_rescues_starved_budget() {
        // The same starved per-attempt budget *with* recovery enabled
        // succeeds: the warm-started continuation stages accumulate enough
        // progress even though each attempt gets only a few iterations.
        let s = solver();
        let nand3 = CellNetlist::nand(3, 1.0, 2.0);
        let reference = s.solve(&nand3, 0, 0.0, &[]).expect("reference");
        assert_eq!(reference.recovery, RecoveryStage::None);
        let mut rescued = false;
        for budget in 2..=5 {
            let plain = SolverOptions {
                max_iters: budget,
                recovery: false,
                ..SolverOptions::default()
            };
            if s.solve_with_options(&nand3, 0, 0.0, &[], &plain).is_ok() {
                continue; // budget already large enough without recovery
            }
            let with_recovery = SolverOptions {
                max_iters: budget,
                recovery: true,
                ..SolverOptions::default()
            };
            if let Ok(sol) = s.solve_with_options(&nand3, 0, 0.0, &[], &with_recovery) {
                assert_ne!(sol.recovery, RecoveryStage::None);
                assert!(
                    (sol.leakage - reference.leakage).abs() / reference.leakage < 1e-4,
                    "recovered {} vs reference {}",
                    sol.leakage,
                    reference.leakage
                );
                rescued = true;
                break;
            }
        }
        assert!(
            rescued,
            "no per-attempt budget in 2..=5 where the ladder rescued a failing plain solve"
        );
    }

    #[test]
    fn recovery_exhaustion_is_typed_and_counts_all_iterations() {
        let s = solver();
        let nand3 = CellNetlist::nand(3, 1.0, 2.0);
        let opts = SolverOptions {
            max_iters: 1,
            recovery: true,
            ..SolverOptions::default()
        };
        match s.solve_with_options(&nand3, 0, 0.0, &[], &opts) {
            Err(SimError::Unconverged {
                iterations,
                recovery_attempted,
                ..
            }) => {
                // 1 plain + 4 gmin stages + 4 source steps, 1 iter each.
                assert_eq!(iterations, 9);
                assert!(recovery_attempted);
            }
            Ok(sol) => panic!("expected exhaustion, got recovery {:?}", sol.recovery),
            Err(other) => panic!("expected Unconverged, got {other:?}"),
        }
    }

    #[test]
    fn default_options_match_plain_solve_bit_for_bit() {
        let s = solver();
        let nand2 = CellNetlist::nand(2, 1.0, 2.0);
        for state in 0..4 {
            let a = s.solve(&nand2, state, 0.0, &[]).unwrap();
            let b = s
                .solve_with_options(&nand2, state, 0.0, &[], &SolverOptions::default())
                .unwrap();
            assert_eq!(a.leakage.to_bits(), b.leakage.to_bits());
            assert_eq!(a.recovery, RecoveryStage::None);
        }
    }

    #[test]
    fn solution_independent_of_init_basin_for_combinational() {
        // For a combinational cell the DC solution must be unique: perturb
        // hints and verify identical leakage.
        let s = solver();
        let mut b = NetlistBuilder::new("inv_nohint", 1);
        let out = b.node();
        b.nmos(out, input_node(0), GND, 1.0);
        b.pmos(out, input_node(0), VDD, 2.0);
        let cell = b.build().unwrap();
        let hinted = CellNetlist::inverter(1.0, 2.0);
        let a = s.cell_leakage(&cell, 0, 0.0, 0.0).unwrap();
        let b = s.cell_leakage(&hinted, 0, 0.0, 0.0).unwrap();
        assert!((a - b).abs() / b < 1e-6, "{a} vs {b}");
    }
}
