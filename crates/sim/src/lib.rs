//! Transistor-level subthreshold leakage simulation.
//!
//! The paper characterizes its standard-cell library with SPICE on a
//! commercial 90 nm process. This crate is the in-repo substitute: a
//! BSIM-lite subthreshold MOSFET model (DIBL, body effect, Vt roll-off
//! versus channel length) plus a damped-Newton DC operating-point solver
//! for the small transistor networks of standard cells. It reproduces the
//! behaviours the statistical model depends on:
//!
//! * exponential leakage dependence on channel length (`ln I` is locally
//!   quadratic in `L`, which is exactly the Rao et al. fitted form);
//! * the *stack effect*: series off-transistors leak an order of magnitude
//!   less than a single off device;
//! * input-state dependence of cell leakage.
//!
//! # Example
//!
//! ```
//! use leakage_process::Technology;
//! use leakage_sim::netlist::CellNetlist;
//! use leakage_sim::solver::LeakageSolver;
//!
//! let tech = Technology::cmos90();
//! let inv = CellNetlist::inverter(1.0, 2.0);
//! let solver = LeakageSolver::new(&tech);
//! // input low: leakage through the off NMOS
//! let i_low = solver.cell_leakage(&inv, 0b0, 0.0, 0.0)?;
//! // input high: leakage through the off PMOS
//! let i_high = solver.cell_leakage(&inv, 0b1, 0.0, 0.0)?;
//! assert!(i_low > 0.0 && i_high > 0.0);
//! # Ok::<(), leakage_sim::SimError>(())
//! ```

// `!(x > 0.0)`-style comparisons deliberately treat NaN as invalid input;
// rewriting them per clippy would silently accept NaN. Index-based loops in
// the math kernels mirror the paper's summation notation.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod device;
pub mod error;
pub mod netlist;
pub mod parse;
pub mod solver;

pub use error::SimError;
pub use netlist::CellNetlist;
pub use solver::{LeakageSolver, RecoveryStage, SolverOptions};
