//! The [`FaultPlan`]: one seed, independent sub-streams per fault class.

use crate::correlation::NanPoisonedCorrelation;
use crate::panic::PanicInjector;
use crate::rng::{mix, SplitMix64};
use crate::solver::{starved_recovering_solver_options, starved_solver_options};
use crate::text;
use leakage_process::correlation::SpatialCorrelation;
use leakage_sim::SolverOptions;

/// The fault classes a [`FaultPlan`] can drive, used as sub-stream labels
/// so that e.g. changing the truncation site never shifts the NaN sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// NaN poisoning of correlation queries.
    NanPoisoning,
    /// Forced Newton non-convergence.
    SolverNonConvergence,
    /// Truncated input text.
    TruncatedInput,
    /// Duplicated input lines.
    DuplicatedInput,
    /// NaN-corrupted numeric tokens.
    CorruptNumber,
    /// Worker-thread panics.
    WorkerPanic,
    /// One request line clipped mid-way (torn write on a live stream).
    ClippedRequest,
    /// One request line inflated past the server's line cap.
    OversizedRequest,
    /// A client that drains responses slowly (stalled socket reads).
    SlowClient,
    /// A job that stalls mid-execution past its deadline.
    StalledJob,
}

impl FaultClass {
    fn stream_tag(self) -> u64 {
        match self {
            FaultClass::NanPoisoning => 1,
            FaultClass::SolverNonConvergence => 2,
            FaultClass::TruncatedInput => 3,
            FaultClass::DuplicatedInput => 4,
            FaultClass::CorruptNumber => 5,
            FaultClass::WorkerPanic => 6,
            FaultClass::ClippedRequest => 7,
            FaultClass::OversizedRequest => 8,
            FaultClass::SlowClient => 9,
            FaultClass::StalledJob => 10,
        }
    }
}

/// A seeded description of which faults to inject where. All artifacts
/// derived from the same plan are reproducible from its seed alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
}

impl FaultPlan {
    /// Creates the plan from a seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A fresh generator for one fault class, decorrelated from the other
    /// classes' streams.
    pub fn stream(&self, class: FaultClass) -> SplitMix64 {
        SplitMix64::new(mix(self.seed) ^ mix(class.stream_tag()))
    }

    /// Wraps `inner` so a `rate` fraction of correlation queries return
    /// NaN (pure function of distance; thread-schedule independent).
    pub fn nan_correlation<C: SpatialCorrelation>(
        &self,
        inner: C,
        rate: f64,
    ) -> NanPoisonedCorrelation<C> {
        let seed = self.stream(FaultClass::NanPoisoning).next_u64();
        NanPoisonedCorrelation::new(inner, seed, rate)
    }

    /// Solver options that force typed non-convergence (recovery off).
    pub fn unconverging_solver(&self) -> SolverOptions {
        starved_solver_options()
    }

    /// Solver options that starve the budget with recovery left on.
    pub fn starved_recovering_solver(&self) -> SolverOptions {
        starved_recovering_solver_options()
    }

    /// The input text truncated at a seeded offset.
    pub fn truncated(&self, input: &str) -> String {
        text::truncate(input, &mut self.stream(FaultClass::TruncatedInput))
    }

    /// The input text with one seeded line duplicated.
    pub fn duplicated(&self, input: &str) -> String {
        text::duplicate_line(input, &mut self.stream(FaultClass::DuplicatedInput))
    }

    /// The input text with one seeded numeric token replaced by NaN.
    pub fn nan_number(&self, input: &str) -> String {
        text::poison_number(input, &mut self.stream(FaultClass::CorruptNumber))
    }

    /// The request stream with one seeded line cut mid-way while the
    /// rest of the stream (including later lines) survives.
    pub fn clipped_request(&self, stream: &str) -> String {
        crate::requests::clip_one_line(stream, &mut self.stream(FaultClass::ClippedRequest))
    }

    /// The request stream with one seeded line padded past `limit` bytes.
    pub fn oversized_request(&self, stream: &str, limit: usize) -> String {
        crate::requests::oversize_one_line(
            stream,
            limit,
            &mut self.stream(FaultClass::OversizedRequest),
        )
    }

    /// The request stream with one seeded JSON number replaced by NaN
    /// (the JSON-aware sibling of [`nan_number`](Self::nan_number), which
    /// cannot reach numbers inside compact JSON).
    pub fn nan_request_number(&self, stream: &str) -> String {
        crate::requests::poison_json_number(stream, &mut self.stream(FaultClass::CorruptNumber))
    }

    /// A panic injector firing on a `rate` fraction of chunk indices.
    pub fn panic_injector(&self, rate: f64) -> PanicInjector {
        let seed = self.stream(FaultClass::WorkerPanic).next_u64();
        PanicInjector::new(seed, rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_process::correlation::TentCorrelation;

    const TEXT: &str = "g1 1.0 2.0\ng2 3.0 4.0\n";

    #[test]
    fn plans_with_the_same_seed_agree_on_every_artifact() {
        let a = FaultPlan::new(99);
        let b = FaultPlan::new(99);
        assert_eq!(a.truncated(TEXT), b.truncated(TEXT));
        assert_eq!(a.duplicated(TEXT), b.duplicated(TEXT));
        assert_eq!(a.nan_number(TEXT), b.nan_number(TEXT));
        assert_eq!(
            a.panic_injector(0.5).selected(32),
            b.panic_injector(0.5).selected(32)
        );
        let ca = a.nan_correlation(TentCorrelation::new(50.0).unwrap(), 0.5);
        let cb = b.nan_correlation(TentCorrelation::new(50.0).unwrap(), 0.5);
        for i in 0..64 {
            assert_eq!(ca.poisons(i as f64), cb.poisons(i as f64));
        }
    }

    #[test]
    fn class_streams_are_decorrelated() {
        let p = FaultPlan::new(5);
        let a = p.stream(FaultClass::NanPoisoning).next_u64();
        let b = p.stream(FaultClass::WorkerPanic).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn solver_faults_are_budget_starved() {
        let p = FaultPlan::new(5);
        assert_eq!(p.unconverging_solver().max_iters, 1);
        assert!(!p.unconverging_solver().recovery);
        assert!(p.starved_recovering_solver().recovery);
    }
}
