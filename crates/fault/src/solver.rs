//! Solver-targeted faults: option sets that force non-convergence.

use leakage_sim::SolverOptions;

/// Options that starve the Newton iteration of its budget *and* disable
/// the recovery ladder: every non-trivial cell solve fails with
/// `SimError::Unconverged { recovery_attempted: false, .. }`.
pub fn starved_solver_options() -> SolverOptions {
    SolverOptions {
        max_iters: 1,
        recovery: false,
        ..SolverOptions::default()
    }
}

/// Options that starve the budget but leave recovery enabled, exercising
/// the full gmin-continuation / source-stepping ladder under duress. The
/// ladder either rescues the solve or fails typed with
/// `recovery_attempted: true`.
pub fn starved_recovering_solver_options() -> SolverOptions {
    SolverOptions {
        max_iters: 1,
        recovery: true,
        ..SolverOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starved_options_differ_from_default_only_in_budget_and_recovery() {
        let d = SolverOptions::default();
        let s = starved_solver_options();
        assert_eq!(s.max_iters, 1);
        assert!(!s.recovery);
        assert_eq!(s.gmin, d.gmin);
        let r = starved_recovering_solver_options();
        assert_eq!(r.max_iters, 1);
        assert!(r.recovery);
    }
}
