//! Seeded, dependency-free pseudo-randomness for fault placement.
//!
//! SplitMix64 (Steele/Lea/Flood, as used to seed xoshiro generators) is
//! tiny, has a full 2⁶⁴ period over its state increment, and — crucially
//! for this crate — is a pure function of its state, so every fault site
//! it selects is reproducible from the [`FaultPlan`](crate::FaultPlan)
//! seed alone, independent of thread count or call interleaving.

/// SplitMix64 pseudo-random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → the full f64 mantissa resolution.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// The SplitMix64 output finalizer as a pure function: a stateless hash of
/// `x` suitable for per-site fault decisions (no call-order dependence).
pub fn mix(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless uniform `[0, 1)` value derived from `x` — the pure-function
/// counterpart of [`SplitMix64::next_f64`].
pub fn unit_hash(x: u64) -> f64 {
    (mix(x) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_values_are_in_range() {
        let mut r = SplitMix64::new(7);
        for i in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let h = unit_hash(i);
            assert!((0.0..1.0).contains(&h));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }
}
