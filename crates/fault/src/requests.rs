//! Seeded corruption of NDJSON request streams (the `chipleakd` wire
//! input).
//!
//! The whole-text transforms in [`text`](crate::text) already model two
//! wire faults directly: [`text::truncate`](crate::text::truncate) is a
//! mid-stream EOF (the tail of the stream, possibly mid-line, never
//! arrives) and [`text::duplicate_line`](crate::text::duplicate_line) /
//! [`text::poison_number`](crate::text::poison_number) replay and
//! corrupt whole request lines. The transforms here cover the two
//! stream faults those cannot express: clipping ONE line while the rest
//! of the stream survives (a torn write inside a healthy connection),
//! and inflating one line past the server's `max_line_bytes` cap.

use crate::rng::SplitMix64;

/// Byte spans of the non-empty lines of `stream` (newline excluded).
fn line_spans(stream: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0;
    for (i, b) in stream.bytes().enumerate() {
        if b == b'\n' {
            if i > start {
                spans.push((start, i));
            }
            start = i + 1;
        }
    }
    if stream.len() > start {
        spans.push((start, stream.len()));
    }
    spans
}

/// Cuts one seeded request line mid-way — a torn write — while every
/// other line (including the ones after it) arrives intact. The damaged
/// line must draw a typed parse error; its neighbours must be served
/// normally. Returns the stream unchanged when no line is long enough
/// to cut.
pub fn clip_one_line(stream: &str, rng: &mut SplitMix64) -> String {
    let spans: Vec<(usize, usize)> = line_spans(stream)
        .into_iter()
        .filter(|&(s, e)| e - s >= 2)
        .collect();
    if spans.is_empty() {
        return stream.to_string();
    }
    let (start, end) = spans[rng.next_below(spans.len())];
    // Cut strictly inside the line: keep [1, len - 1] bytes of it.
    let mut cut = start + 1 + rng.next_below(end - start - 1);
    while !stream.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}{}", &stream[..cut], &stream[end..])
}

/// Pads one seeded request line with trailing spaces until it exceeds
/// `limit` bytes, modelling an oversized job submission. The server must
/// answer it with a typed `oversized` error and keep serving the rest of
/// the stream. Lines already longer than `limit` are left alone; returns
/// the stream unchanged when it has no lines.
pub fn oversize_one_line(stream: &str, limit: usize, rng: &mut SplitMix64) -> String {
    let spans = line_spans(stream);
    if spans.is_empty() {
        return stream.to_string();
    }
    let (start, end) = spans[rng.next_below(spans.len())];
    let needed = (limit + 1).saturating_sub(end - start);
    format!("{}{}{}", &stream[..end], " ".repeat(needed), &stream[end..])
}

/// Replaces one seeded JSON number value in the stream with `NaN`.
/// Bare `NaN` is not JSON, so the damaged line must draw a typed parse
/// error. The whitespace-token poisoner in
/// [`text::poison_number`](crate::text::poison_number) cannot reach
/// numbers inside compact JSON (no token boundaries), hence this
/// grammar-aware variant. Returns the stream unchanged when it contains
/// no number values.
pub fn poison_json_number(stream: &str, rng: &mut SplitMix64) -> String {
    let spans = json_number_spans(stream);
    if spans.is_empty() {
        return stream.to_string();
    }
    let (start, end) = spans[rng.next_below(spans.len())];
    format!("{}NaN{}", &stream[..start], &stream[end..])
}

/// Byte spans of JSON number values: maximal `[-+.eE0-9]` runs that
/// start right after `:`, `,`, or `[` (value position, not string
/// content) and parse as f64.
fn json_number_spans(stream: &str) -> Vec<(usize, usize)> {
    let bytes = stream.as_bytes();
    let mut spans = Vec::new();
    let mut prev_significant = b'\n';
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if matches!(b, b'-' | b'0'..=b'9') && matches!(prev_significant, b':' | b',' | b'[') {
            let start = i;
            while i < bytes.len()
                && matches!(bytes[i], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                i += 1;
            }
            if stream
                .get(start..i)
                .is_some_and(|tok| tok.parse::<f64>().is_ok())
            {
                spans.push((start, i));
            }
            prev_significant = b'0';
            continue;
        }
        if !b.is_ascii_whitespace() {
            prev_significant = b;
        }
        i += 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    const STREAM: &str = "{\"v\":1,\"id\":1,\"job\":{\"kind\":\"ping\"}}\n{\"v\":1,\"id\":2,\"job\":{\"kind\":\"stats\"}}\n";

    #[test]
    fn clip_damages_exactly_one_line_and_keeps_the_rest() {
        let mut rng = SplitMix64::new(7);
        let clipped = clip_one_line(STREAM, &mut rng);
        assert_ne!(clipped, STREAM);
        let originals: Vec<&str> = STREAM.lines().collect();
        let survivors = clipped.lines().filter(|l| originals.contains(l)).count();
        assert_eq!(
            survivors,
            originals.len() - 1,
            "one line damaged: {clipped:?}"
        );
        assert_eq!(clipped.lines().count(), originals.len(), "no line dropped");
    }

    #[test]
    fn clip_is_reproducible_from_the_seed() {
        let a = clip_one_line(STREAM, &mut SplitMix64::new(42));
        let b = clip_one_line(STREAM, &mut SplitMix64::new(42));
        assert_eq!(a, b);
    }

    #[test]
    fn oversize_pushes_one_line_past_the_limit() {
        let mut rng = SplitMix64::new(3);
        let limit = 128;
        let padded = oversize_one_line(STREAM, limit, &mut rng);
        let over: Vec<&str> = padded.lines().filter(|l| l.len() > limit).collect();
        assert_eq!(over.len(), 1, "exactly one oversized line");
        assert_eq!(padded.lines().count(), STREAM.lines().count());
        // The payload under the padding is still the original request.
        let originals: Vec<&str> = STREAM.lines().collect();
        assert!(originals.contains(&over[0].trim_end()));
    }

    #[test]
    fn json_numbers_are_reachable_and_poisoning_breaks_the_json() {
        let mut rng = SplitMix64::new(9);
        let poisoned = poison_json_number(STREAM, &mut rng);
        assert_ne!(poisoned, STREAM);
        assert!(poisoned.contains("NaN"), "{poisoned:?}");
        // Only value-position runs qualify — digits inside strings don't.
        let quoted = "{\"id\":\"cmos90\"}\n";
        assert_eq!(poison_json_number(quoted, &mut rng), quoted);
    }

    #[test]
    fn degenerate_streams_pass_through_unchanged() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(clip_one_line("", &mut rng), "");
        assert_eq!(clip_one_line("\n\n", &mut rng), "\n\n");
        assert_eq!(oversize_one_line("", 64, &mut rng), "");
    }
}
