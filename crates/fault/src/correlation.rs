//! NaN-poisoning wrapper around any [`SpatialCorrelation`] model.

use crate::rng::{mix, unit_hash};
use leakage_process::correlation::SpatialCorrelation;

/// Wraps a correlation model and replaces a seeded, deterministic subset
/// of its outputs with NaN.
///
/// The poisoning decision is a *pure function of the queried distance*
/// (a hash of the seed and the distance's bit pattern), never of call
/// order, so the same distances are poisoned no matter how many worker
/// threads query the model or in what interleaving — the estimator's
/// degraded output stays bit-identical across thread budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NanPoisonedCorrelation<C> {
    inner: C,
    seed: u64,
    rate: f64,
}

impl<C: SpatialCorrelation> NanPoisonedCorrelation<C> {
    /// Poisons roughly `rate` of all distinct queried distances
    /// (`rate = 1.0` poisons every query).
    pub fn new(inner: C, seed: u64, rate: f64) -> NanPoisonedCorrelation<C> {
        NanPoisonedCorrelation {
            inner,
            seed,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// Whether this wrapper poisons the query at distance `d`.
    pub fn poisons(&self, d: f64) -> bool {
        unit_hash(mix(self.seed) ^ d.to_bits()) < self.rate
    }

    /// The wrapped model.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: SpatialCorrelation> SpatialCorrelation for NanPoisonedCorrelation<C> {
    fn rho(&self, d: f64) -> f64 {
        if self.poisons(d) {
            f64::NAN
        } else {
            self.inner.rho(d)
        }
    }

    fn support_radius(&self) -> Option<f64> {
        self.inner.support_radius()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_process::correlation::TentCorrelation;

    #[test]
    fn rate_one_poisons_everything() {
        let c = NanPoisonedCorrelation::new(TentCorrelation::new(50.0).unwrap(), 3, 1.0);
        for i in 0..100 {
            assert!(c.rho(i as f64).is_nan());
        }
    }

    #[test]
    fn rate_zero_is_transparent() {
        let inner = TentCorrelation::new(50.0).unwrap();
        let c = NanPoisonedCorrelation::new(inner, 3, 0.0);
        for i in 0..100 {
            let d = i as f64;
            assert_eq!(c.rho(d).to_bits(), inner.rho(d).to_bits());
        }
        assert_eq!(c.support_radius(), inner.support_radius());
    }

    #[test]
    fn poisoning_is_a_pure_function_of_distance() {
        let c = NanPoisonedCorrelation::new(TentCorrelation::new(50.0).unwrap(), 11, 0.5);
        // Query in two different orders; per-distance results must agree.
        let forward: Vec<bool> = (0..64).map(|i| c.rho(i as f64).is_nan()).collect();
        let backward: Vec<bool> = (0..64).rev().map(|i| c.rho(i as f64).is_nan()).collect();
        let backward_reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed);
        // A 0.5 rate poisons some but not all distances.
        assert!(forward.iter().any(|&b| b));
        assert!(forward.iter().any(|&b| !b));
    }

    #[test]
    fn different_seeds_pick_different_sites() {
        let a = NanPoisonedCorrelation::new(TentCorrelation::new(50.0).unwrap(), 1, 0.5);
        let b = NanPoisonedCorrelation::new(TentCorrelation::new(50.0).unwrap(), 2, 0.5);
        let pa: Vec<bool> = (0..256).map(|i| a.poisons(i as f64)).collect();
        let pb: Vec<bool> = (0..256).map(|i| b.poisons(i as f64)).collect();
        assert_ne!(pa, pb);
    }
}
