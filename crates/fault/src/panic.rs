//! Deterministic worker-panic injection for parallel regions.

use crate::rng::{mix, unit_hash};

/// Decides which chunk indices of a parallel region panic. The decision
/// is a pure function of the seed and the chunk index — never of which
/// thread picked the chunk up — so the surviving error (`WorkerPanic`
/// with the smallest panicked chunk) is identical for every thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PanicInjector {
    seed: u64,
    rate: f64,
}

impl PanicInjector {
    /// Panics on roughly `rate` of all chunk indices (`1.0` = every chunk).
    pub fn new(seed: u64, rate: f64) -> PanicInjector {
        PanicInjector {
            seed,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// Whether the chunk at `index` is selected for a panic.
    pub fn fires_on(&self, index: usize) -> bool {
        unit_hash(mix(self.seed) ^ index as u64) < self.rate
    }

    /// The selected chunks among `0..n_chunks`, ascending.
    pub fn selected(&self, n_chunks: usize) -> Vec<usize> {
        (0..n_chunks).filter(|&i| self.fires_on(i)).collect()
    }

    /// Panics with a stable, recognizable message when `index` is
    /// selected; call this at the top of a worker closure under test.
    pub fn maybe_panic(&self, index: usize) {
        if self.fires_on(index) {
            // chipleak-lint: allow(no-unwrap-in-library): panicking is this injector's entire purpose — it exists to prove panics become typed errors
            panic!("injected worker fault on chunk {index}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_seed_deterministic() {
        let a = PanicInjector::new(17, 0.3);
        let b = PanicInjector::new(17, 0.3);
        assert_eq!(a.selected(64), b.selected(64));
    }

    #[test]
    fn rate_extremes() {
        assert!(PanicInjector::new(1, 0.0).selected(64).is_empty());
        assert_eq!(PanicInjector::new(1, 1.0).selected(64).len(), 64);
    }

    #[test]
    fn maybe_panic_fires_with_stable_message() {
        let inj = PanicInjector::new(1, 1.0);
        let err = std::panic::catch_unwind(|| inj.maybe_panic(5)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert_eq!(msg, "injected worker fault on chunk 5");
    }

    #[test]
    fn maybe_panic_is_silent_when_not_selected() {
        PanicInjector::new(1, 0.0).maybe_panic(5);
    }
}
