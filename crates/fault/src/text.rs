//! Seeded corruption of textual inputs (netlists, placement files).
//!
//! Each transform takes the well-formed source text and a [`SplitMix64`]
//! stream, and returns the corrupted text. The corruption site depends
//! only on the stream state, so a given [`FaultPlan`](crate::FaultPlan)
//! seed always damages the same byte/line/token — failures reproduce
//! exactly under `cargo test` re-runs.

use crate::rng::SplitMix64;

/// Cuts the text mid-way at a seeded byte offset (snapped back to a UTF-8
/// boundary), simulating a partially written or interrupted download.
/// Returns the original text unchanged when it is too short to cut.
pub fn truncate(text: &str, rng: &mut SplitMix64) -> String {
    if text.len() < 2 {
        return text.to_string();
    }
    // Cut strictly inside the text: offset in [1, len - 1].
    let mut cut = 1 + rng.next_below(text.len() - 1);
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    text[..cut].to_string()
}

/// Duplicates one seeded non-empty line in place, simulating a stuttered
/// concatenation (the classic source of duplicate-instance definitions).
/// Returns the original text unchanged when no line qualifies.
pub fn duplicate_line(text: &str, rng: &mut SplitMix64) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let candidates: Vec<usize> = (0..lines.len())
        .filter(|&i| !lines[i].trim().is_empty())
        .collect();
    if candidates.is_empty() {
        return text.to_string();
    }
    let dup = candidates[rng.next_below(candidates.len())];
    let mut out = Vec::with_capacity(lines.len() + 1);
    for (i, line) in lines.iter().enumerate() {
        out.push(*line);
        if i == dup {
            out.push(*line);
        }
    }
    let mut joined = out.join("\n");
    if text.ends_with('\n') {
        joined.push('\n');
    }
    joined
}

/// Replaces one seeded numeric token with `NaN`, simulating a corrupted
/// coordinate in a placement file. Returns the original text unchanged
/// when it contains no numeric token.
pub fn poison_number(text: &str, rng: &mut SplitMix64) -> String {
    let tokens: Vec<(usize, usize)> = numeric_token_spans(text);
    if tokens.is_empty() {
        return text.to_string();
    }
    let (start, end) = tokens[rng.next_below(tokens.len())];
    format!("{}NaN{}", &text[..start], &text[end..])
}

/// Byte spans of whitespace/comma-delimited tokens that parse as f64.
fn numeric_token_spans(text: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let bytes = text.as_bytes();
    let is_sep = |b: u8| b.is_ascii_whitespace() || b == b',';
    let mut i = 0;
    while i < bytes.len() {
        if is_sep(bytes[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && !is_sep(bytes[i]) {
            i += 1;
        }
        let tok = &text[start..i];
        if tok.parse::<f64>().is_ok() {
            spans.push((start, i));
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLACEMENT: &str = "g1 10.0 20.0\ng2 30.5 40.5\ng3 50.0 60.0\n";

    #[test]
    fn truncate_is_a_strict_prefix() {
        let mut rng = SplitMix64::new(1);
        let cut = truncate(PLACEMENT, &mut rng);
        assert!(cut.len() < PLACEMENT.len());
        assert!(!cut.is_empty());
        assert!(PLACEMENT.starts_with(&cut));
    }

    #[test]
    fn truncate_is_seed_deterministic() {
        let a = truncate(PLACEMENT, &mut SplitMix64::new(5));
        let b = truncate(PLACEMENT, &mut SplitMix64::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_line_adds_exactly_one_line() {
        let mut rng = SplitMix64::new(2);
        let dup = duplicate_line(PLACEMENT, &mut rng);
        assert_eq!(dup.lines().count(), PLACEMENT.lines().count() + 1);
        // Every line of the corrupted text came from the original.
        for line in dup.lines() {
            assert!(PLACEMENT.lines().any(|l| l == line));
        }
    }

    #[test]
    fn poison_number_injects_a_nan_token() {
        let mut rng = SplitMix64::new(3);
        let bad = poison_number(PLACEMENT, &mut rng);
        assert!(bad.contains("NaN"));
        assert_eq!(bad.lines().count(), PLACEMENT.lines().count());
    }

    #[test]
    fn transforms_pass_through_degenerate_inputs() {
        let mut rng = SplitMix64::new(4);
        assert_eq!(truncate("", &mut rng), "");
        assert_eq!(duplicate_line("\n\n", &mut rng), "\n\n");
        assert_eq!(
            poison_number("no numbers here", &mut rng),
            "no numbers here"
        );
    }
}
