//! The [`ChaosPlan`]: seeded per-request fault decisions for soaking the
//! `chipleakd` overload-survival layer.
//!
//! A chaos soak drives the real server while workers crash, jobs stall
//! past their deadlines, and clients drain slowly — and then asserts the
//! survival invariants (every request answered exactly once with a typed
//! outcome, surviving responses byte-identical to a clean run, zero
//! fleet deaths). Those assertions are only meaningful if the faults
//! themselves are reproducible, so every decision here is a pure
//! function of `(plan seed, request sequence number)` — never of thread
//! scheduling, wall time, or call order. The same plan produces the same
//! storm at 1 worker and at 8.

use crate::plan::{FaultClass, FaultPlan};
use crate::rng::{mix, unit_hash};

/// Seeded per-request chaos decisions: which request sequence numbers
/// crash their worker, which stall past their deadline, and how a slow
/// client paces its reads. Built by [`FaultPlan::chaos`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    panic_stream: u64,
    stall_stream: u64,
    client_stream: u64,
    panic_rate: f64,
    stall_rate: f64,
}

impl FaultPlan {
    /// A chaos plan whose worker-panic and stalled-job decisions fire on
    /// roughly `panic_rate` / `stall_rate` fractions of request sequence
    /// numbers. Rates are clamped to `[0, 1]`; NaN disables the class.
    pub fn chaos(&self, panic_rate: f64, stall_rate: f64) -> ChaosPlan {
        let clamp = |r: f64| if r.is_nan() { 0.0 } else { r.clamp(0.0, 1.0) };
        ChaosPlan {
            panic_stream: self.stream(FaultClass::WorkerPanic).next_u64(),
            stall_stream: self.stream(FaultClass::StalledJob).next_u64(),
            client_stream: self.stream(FaultClass::SlowClient).next_u64(),
            panic_rate: clamp(panic_rate),
            stall_rate: clamp(stall_rate),
        }
    }
}

impl ChaosPlan {
    /// Whether the worker executing request `seq` panics. Pure function
    /// of the plan seed and `seq`: the same requests crash regardless of
    /// which worker picked them up or in what order.
    pub fn panics(&self, seq: u64) -> bool {
        unit_hash(self.panic_stream ^ mix(seq)) < self.panic_rate
    }

    /// Whether request `seq` stalls mid-execution long enough to blow
    /// its deadline. Decorrelated from [`panics`](Self::panics): a seq
    /// can crash, stall, both, or neither.
    pub fn stalls(&self, seq: u64) -> bool {
        unit_hash(self.stall_stream ^ mix(seq)) < self.stall_rate
    }

    /// The sequence numbers in `0..n` whose workers panic — the storm's
    /// manifest, for asserting each crash produced exactly one typed
    /// `internal` response.
    pub fn selected_panics(&self, n: u64) -> Vec<u64> {
        (0..n).filter(|&seq| self.panics(seq)).collect()
    }

    /// The sequence numbers in `0..n` that stall past their deadline.
    pub fn selected_stalls(&self, n: u64) -> Vec<u64> {
        (0..n).filter(|&seq| self.stalls(seq)).collect()
    }

    /// Milliseconds a slow client pauses before draining its `k`-th
    /// response, in `[0, max_ms]`. Deterministic schedule for the
    /// slow-client scenario: the harness sleeps these amounts while the
    /// server's write timeout bounds the damage.
    pub fn client_pause_ms(&self, k: u64, max_ms: u64) -> u64 {
        if max_ms == 0 {
            return 0;
        }
        mix(self.client_stream ^ mix(k)) % (max_ms + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_storm() {
        let a = FaultPlan::new(7).chaos(0.3, 0.2);
        let b = FaultPlan::new(7).chaos(0.3, 0.2);
        assert_eq!(a.selected_panics(256), b.selected_panics(256));
        assert_eq!(a.selected_stalls(256), b.selected_stalls(256));
        for k in 0..32 {
            assert_eq!(a.client_pause_ms(k, 50), b.client_pause_ms(k, 50));
        }
    }

    #[test]
    fn rates_bound_the_selection() {
        let none = FaultPlan::new(7).chaos(0.0, 0.0);
        assert!(none.selected_panics(512).is_empty());
        assert!(none.selected_stalls(512).is_empty());
        let all = FaultPlan::new(7).chaos(1.0, 1.0);
        assert_eq!(all.selected_panics(64).len(), 64);
        assert_eq!(all.selected_stalls(64).len(), 64);
        // NaN and out-of-range rates are tamed, not propagated.
        let weird = FaultPlan::new(7).chaos(f64::NAN, 7.0);
        assert!(weird.selected_panics(64).is_empty());
        assert_eq!(weird.selected_stalls(64).len(), 64);
    }

    #[test]
    fn panic_and_stall_decisions_are_decorrelated() {
        let plan = FaultPlan::new(11).chaos(0.5, 0.5);
        let panics = plan.selected_panics(512);
        let stalls = plan.selected_stalls(512);
        assert_ne!(panics, stalls);
        // Independence sanity: some seqs do both, some do neither.
        assert!(panics.iter().any(|s| stalls.contains(s)));
        assert!((0..512).any(|s| !plan.panics(s) && !plan.stalls(s)));
    }

    #[test]
    fn client_pauses_stay_in_range() {
        let plan = FaultPlan::new(3).chaos(0.0, 0.0);
        for k in 0..256 {
            assert!(plan.client_pause_ms(k, 25) <= 25);
            assert_eq!(plan.client_pause_ms(k, 0), 0);
        }
    }
}
