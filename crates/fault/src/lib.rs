//! Deterministic fault injection for the full-chip leakage pipeline.
//!
//! This crate exists to *prove* the pipeline's robustness claims rather
//! than assume them: every fault it injects is derived from a single
//! [`FaultPlan`] seed through pure functions of the fault site (distance
//! bits, chunk index, byte offset), never of thread scheduling or call
//! order. A failing fault-injection test therefore reproduces exactly,
//! and the acceptance criterion "metrics are bit-identical across thread
//! counts even while faults fire" is testable at all.
//!
//! Fault classes:
//!
//! * [`NanPoisonedCorrelation`] — wraps any correlation model and returns
//!   NaN for a seeded subset of distances (numerical poisoning);
//! * [`starved_solver_options`] / [`starved_recovering_solver_options`] —
//!   force Newton non-convergence with recovery off/on;
//! * [`text::truncate`] / [`text::duplicate_line`] /
//!   [`text::poison_number`] — corrupt netlist/placement text at seeded
//!   sites;
//! * [`requests::clip_one_line`] / [`requests::oversize_one_line`] —
//!   tear or inflate single `chipleakd` NDJSON request lines while the
//!   rest of the stream survives;
//! * [`PanicInjector`] — panics worker closures on seeded chunk indices;
//! * [`ChaosPlan`] — per-request worker-panic / stalled-job / slow-client
//!   decisions for soaking the `chipleakd` overload-survival layer.
//!
//! This is test support: production binaries must not depend on it.

#![warn(missing_docs)]

mod chaos;
mod correlation;
mod panic;
mod plan;
pub mod requests;
mod rng;
mod solver;
pub mod text;

pub use chaos::ChaosPlan;
pub use correlation::NanPoisonedCorrelation;
pub use panic::PanicInjector;
pub use plan::{FaultClass, FaultPlan};
pub use rng::{mix, unit_hash, SplitMix64};
pub use solver::{starved_recovering_solver_options, starved_solver_options};
