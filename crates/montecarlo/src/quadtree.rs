//! Chip leakage sampling under a *hierarchical* (quadtree) within-die
//! field — the non-isotropic ground truth for the isotropic-approximation
//! ablation (`quadtree_ablation` experiment).

use crate::error::McError;
use crate::gate_model::{build_gate_models, GateModel};
use leakage_cells::model::CharacterizedLibrary;
use leakage_netlist::PlacedCircuit;
use leakage_numeric::stats::RunningStats;
use leakage_process::hierarchical::QuadtreeCorrelation;
use rand::Rng;

/// Samples total-chip leakage with `ΔL` drawn from a quadtree field.
///
/// The quadtree's level-0 share plays the role of a die-wide (D2D-like)
/// component; `sigma_total` scales the unit-variance field to nm.
#[derive(Debug)]
pub struct QuadtreeChipSampler {
    model: QuadtreeCorrelation,
    positions: Vec<(f64, f64)>,
    gates: Vec<GateModel>,
    sigma_total: f64,
}

impl QuadtreeChipSampler {
    /// Builds the sampler for a placed design.
    ///
    /// # Errors
    ///
    /// Returns [`McError::InvalidArgument`] for a non-positive sigma, a
    /// quadtree not covering the die, or missing triplets.
    pub fn new(
        placed: &PlacedCircuit,
        charlib: &CharacterizedLibrary,
        model: QuadtreeCorrelation,
        sigma_total: f64,
        signal_probability: f64,
    ) -> Result<Self, McError> {
        if !(sigma_total > 0.0) || !sigma_total.is_finite() {
            return Err(McError::InvalidArgument {
                reason: format!("sigma must be positive, got {sigma_total}"),
            });
        }
        if model.width() < placed.width() || model.height() < placed.height() {
            return Err(McError::InvalidArgument {
                reason: "quadtree die must cover the placed design".into(),
            });
        }
        let gates = build_gate_models(placed, charlib, signal_probability)?;
        let positions = placed.gates().iter().map(|g| (g.x, g.y)).collect();
        Ok(QuadtreeChipSampler {
            model,
            positions,
            gates,
            sigma_total,
        })
    }

    /// Draws one total-chip leakage sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let field = self.model.sample_field(&self.positions, rng);
        self.gates
            .iter()
            .zip(&field)
            .map(|(g, f)| g.sample_leakage(f * self.sigma_total, rng))
            .sum()
    }

    /// Runs `trials` samples and returns streaming statistics.
    pub fn run<R: Rng + ?Sized>(&self, trials: usize, rng: &mut R) -> RunningStats {
        let mut stats = RunningStats::new();
        for _ in 0..trials {
            stats.push(self.sample(rng));
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_cells::library::CellId;
    use leakage_cells::model::{CharacterizedCell, StateModel};
    use leakage_cells::LeakageTriplet;
    use leakage_core::PlacedGate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SIGMA: f64 = 4.5;

    fn charlib() -> CharacterizedLibrary {
        let t = LeakageTriplet::new(1e-9, -0.06, 0.0009).unwrap();
        CharacterizedLibrary {
            cells: vec![CharacterizedCell {
                id: CellId(0),
                name: "cell0".into(),
                n_inputs: 0,
                states: vec![StateModel {
                    state: 0,
                    mean: t.mean(SIGMA).unwrap(),
                    std: t.std(SIGMA).unwrap(),
                    triplet: Some(t),
                    fit_r2: Some(1.0),
                }],
            }],
            l_sigma: SIGMA,
        }
    }

    fn placed(n: usize, side: f64) -> PlacedCircuit {
        let per_row = (n as f64).sqrt().ceil() as usize;
        let pitch = side / per_row as f64;
        let gates: Vec<PlacedGate> = (0..n)
            .map(|i| PlacedGate {
                cell: CellId(0),
                x: (i % per_row) as f64 * pitch + pitch / 2.0,
                y: (i / per_row) as f64 * pitch + pitch / 2.0,
            })
            .collect();
        PlacedCircuit::new("qt", gates, side, side).unwrap()
    }

    #[test]
    fn mean_matches_analytic() {
        let charlib = charlib();
        let placed = placed(64, 128.0);
        let model = QuadtreeCorrelation::standard(128.0, 128.0).unwrap();
        let s = QuadtreeChipSampler::new(&placed, &charlib, model, SIGMA, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let stats = s.run(6000, &mut rng);
        let expect = 64.0 * charlib.cells[0].states[0].mean;
        assert!(
            (stats.mean() - expect).abs() / expect < 0.02,
            "{} vs {expect}",
            stats.mean()
        );
    }

    #[test]
    fn all_shared_variance_gives_full_correlation_std() {
        // One level covering the die: all gates share ΔL ⇒ σ_chip = n·σ.
        let charlib = charlib();
        let placed = placed(16, 64.0);
        let model = QuadtreeCorrelation::new(64.0, 64.0, vec![1.0]).unwrap();
        let s = QuadtreeChipSampler::new(&placed, &charlib, model, SIGMA, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let stats = s.run(8000, &mut rng);
        let expect = 16.0 * charlib.cells[0].states[0].std;
        assert!(
            (stats.sample_std() - expect).abs() / expect < 0.05,
            "{} vs {expect}",
            stats.sample_std()
        );
    }

    #[test]
    fn rejects_bad_configuration() {
        let charlib = charlib();
        let placed = placed(16, 64.0);
        let model = QuadtreeCorrelation::standard(64.0, 64.0).unwrap();
        assert!(QuadtreeChipSampler::new(&placed, &charlib, model.clone(), 0.0, 0.5).is_err());
        let small = QuadtreeCorrelation::standard(32.0, 32.0).unwrap();
        assert!(QuadtreeChipSampler::new(&placed, &charlib, small, SIGMA, 0.5).is_err());
        let mut nolib = charlib;
        nolib.cells[0].states[0].triplet = None;
        assert!(QuadtreeChipSampler::new(&placed, &nolib, model, SIGMA, 0.5).is_err());
    }
}
