//! Error type for the Monte-Carlo engine.

use std::fmt;

/// Errors from Monte-Carlo setup or sampling.
#[derive(Debug, Clone, PartialEq)]
pub enum McError {
    /// An argument was out of range or inconsistent.
    InvalidArgument {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A cell-model operation failed.
    Cells(leakage_cells::CellError),
    /// A process-model operation failed.
    Process(leakage_process::ProcessError),
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            McError::Cells(e) => write!(f, "cell model failure: {e}"),
            McError::Process(e) => write!(f, "process model failure: {e}"),
        }
    }
}

impl std::error::Error for McError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McError::Cells(e) => Some(e),
            McError::Process(e) => Some(e),
            _ => None,
        }
    }
}

impl From<leakage_cells::CellError> for McError {
    fn from(e: leakage_cells::CellError) -> McError {
        McError::Cells(e)
    }
}

impl From<leakage_process::ProcessError> for McError {
    fn from(e: leakage_process::ProcessError) -> McError {
        McError::Process(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_works() {
        let e = McError::InvalidArgument {
            reason: "trials must be positive".into(),
        };
        assert!(e.to_string().contains("trials"));
    }
}
