//! Full-chip Monte-Carlo leakage: the empirical cross-check for every
//! analytical estimator in the workspace.
//!
//! The engine samples a correlated within-die channel-length field over
//! the placement grid (FFT circulant embedding), adds a shared
//! die-to-die offset, draws each instance's input state from its signal
//! probabilities, evaluates each instance's leakage through its fitted
//! state model, and accumulates total-chip statistics.
//!
//! It also hosts the Monte-Carlo side of the paper's Fig. 2 (pairwise
//! leakage correlation vs length correlation) and the Vt-variance
//! ablation justifying §2.1's "Vt does not matter for chip variance"
//! argument.

// `!(x > 0.0)`-style comparisons deliberately treat NaN as invalid input;
// rewriting them per clippy would silently accept NaN. Index-based loops in
// the math kernels mirror the paper's summation notation.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod chip;
pub mod error;
mod gate_model;
pub mod pair;
pub mod quadtree;

pub use chip::{ChipSampler, ChipSamplerBuilder};
pub use error::McError;
pub use quadtree::QuadtreeChipSampler;
