//! Monte-Carlo pairwise leakage correlation (the MC curve of Fig. 2).
//!
//! Samples bivariate-normal channel lengths with a prescribed correlation
//! and pushes them through *solver-derived* leakage curves (dense `ln I`
//! tabulations, not the fitted triplets), so the result is an independent
//! check of the analytical `f_{m,n}` mapping.

use crate::error::McError;
use leakage_numeric::interp::LinearInterp;
use leakage_numeric::stats::pearson_correlation;
use rand::Rng;
use rand_distr::{Distribution, StandardNormal};

/// Monte-Carlo estimate of the leakage correlation between two cells whose
/// `ln I(ΔL)` curves are tabulated, under length correlation `rho_l` and
/// `ΔL ~ N(0, sigma)`.
///
/// # Errors
///
/// Returns [`McError::InvalidArgument`] for out-of-range `rho_l`,
/// non-positive `sigma`, or too few samples.
pub fn pair_leakage_correlation_mc<R: Rng + ?Sized>(
    curve_a: &LinearInterp,
    curve_b: &LinearInterp,
    sigma: f64,
    rho_l: f64,
    samples: usize,
    rng: &mut R,
) -> Result<f64, McError> {
    if !(-1.0..=1.0).contains(&rho_l) {
        return Err(McError::InvalidArgument {
            reason: format!("length correlation must be in [-1, 1], got {rho_l}"),
        });
    }
    if !(sigma > 0.0) {
        return Err(McError::InvalidArgument {
            reason: "sigma must be positive".into(),
        });
    }
    if samples < 16 {
        return Err(McError::InvalidArgument {
            reason: "need at least 16 samples".into(),
        });
    }
    let mut xa = Vec::with_capacity(samples);
    let mut xb = Vec::with_capacity(samples);
    let tail = (1.0 - rho_l * rho_l).sqrt();
    for _ in 0..samples {
        let z1: f64 = StandardNormal.sample(rng);
        let z2: f64 = StandardNormal.sample(rng);
        let l1 = sigma * z1;
        let l2 = sigma * (rho_l * z1 + tail * z2);
        xa.push(curve_a.eval(l1).exp());
        xb.push(curve_b.eval(l2).exp());
    }
    Ok(pearson_correlation(&xa, &xb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn log_curve(a: f64, b: f64, c: f64) -> LinearInterp {
        let xs: Vec<f64> = (0..200).map(|i| -25.0 + i as f64 * 0.25).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a.ln() + b * x + c * x * x).collect();
        LinearInterp::new(xs, ys).unwrap()
    }

    #[test]
    fn mc_correlation_matches_analytic_mapping() {
        let (a_par, b_par, c_par) = (1e-9, -0.06, 0.0009);
        let (a2, b2, c2) = (3e-9, -0.05, 0.0006);
        let curve_a = log_curve(a_par, b_par, c_par);
        let curve_b = log_curve(a2, b2, c2);
        let ta = leakage_cells::LeakageTriplet::new(a_par, b_par, c_par).unwrap();
        let tb = leakage_cells::LeakageTriplet::new(a2, b2, c2).unwrap();
        let sigma = 4.5;
        let mut rng = StdRng::seed_from_u64(1);
        for rho in [0.2, 0.5, 0.8] {
            let mc = pair_leakage_correlation_mc(&curve_a, &curve_b, sigma, rho, 60_000, &mut rng)
                .unwrap();
            let analytic =
                leakage_cells::corrmap::state_leakage_correlation(&ta, &tb, sigma, rho).unwrap();
            assert!(
                (mc - analytic).abs() < 0.02,
                "rho {rho}: mc {mc} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn endpoints() {
        let curve = log_curve(1e-9, -0.06, 0.0009);
        let mut rng = StdRng::seed_from_u64(2);
        let zero = pair_leakage_correlation_mc(&curve, &curve, 4.5, 0.0, 40_000, &mut rng).unwrap();
        assert!(zero.abs() < 0.02);
        let one = pair_leakage_correlation_mc(&curve, &curve, 4.5, 1.0, 40_000, &mut rng).unwrap();
        assert!(one > 0.999);
    }

    #[test]
    fn rejects_bad_args() {
        let curve = log_curve(1e-9, -0.06, 0.0009);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(pair_leakage_correlation_mc(&curve, &curve, 4.5, 1.5, 100, &mut rng).is_err());
        assert!(pair_leakage_correlation_mc(&curve, &curve, 0.0, 0.5, 100, &mut rng).is_err());
        assert!(pair_leakage_correlation_mc(&curve, &curve, 4.5, 0.5, 5, &mut rng).is_err());
    }
}
