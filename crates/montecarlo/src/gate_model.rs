//! Shared per-instance sampling model used by the chip samplers.

use crate::error::McError;
use leakage_cells::model::CharacterizedLibrary;
use leakage_cells::state::state_probabilities;
use leakage_cells::LeakageTriplet;
use leakage_netlist::PlacedCircuit;
use rand::Rng;

/// Per-instance sampling model: cumulative state distribution and
/// per-state leakage curves.
#[derive(Debug, Clone)]
pub(crate) struct GateModel {
    pub(crate) cum_state_probs: Vec<f64>,
    pub(crate) triplets: Vec<LeakageTriplet>,
}

impl GateModel {
    /// Draws a state and evaluates the leakage at channel-length
    /// deviation `dl`.
    pub(crate) fn sample_leakage<R: Rng + ?Sized>(&self, dl: f64, rng: &mut R) -> f64 {
        debug_assert!(
            !self.triplets.is_empty(),
            "models carry one curve per state"
        );
        let u: f64 = rng.gen();
        let state = self
            .cum_state_probs
            .partition_point(|&c| c < u)
            .min(self.triplets.len() - 1);
        self.triplets[state].eval(dl)
    }
}

/// Builds the per-instance models for a placed design.
pub(crate) fn build_gate_models(
    placed: &PlacedCircuit,
    charlib: &CharacterizedLibrary,
    signal_probability: f64,
) -> Result<Vec<GateModel>, McError> {
    let mut gates = Vec::with_capacity(placed.n_gates());
    for g in placed.gates() {
        let cell = charlib
            .cell(g.cell)
            .ok_or_else(|| McError::InvalidArgument {
                reason: format!("gate type {} outside characterized library", g.cell.0),
            })?;
        let probs = state_probabilities(cell.n_inputs, signal_probability)?;
        let mut cum = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in &probs {
            acc += p;
            cum.push(acc);
        }
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        let triplets: Vec<LeakageTriplet> = cell
            .states
            .iter()
            .map(|s| {
                s.triplet.ok_or_else(|| McError::InvalidArgument {
                    reason: format!(
                        "{} state {} has no fitted triplet; monte-carlo needs the \
                         analytical characterization",
                        cell.name, s.state
                    ),
                })
            })
            .collect::<Result<_, _>>()?;
        gates.push(GateModel {
            cum_state_probs: cum,
            triplets,
        });
    }
    Ok(gates)
}
