//! Full-chip leakage sampling over a placed design.

use crate::error::McError;
use crate::gate_model::{build_gate_models, GateModel};
use leakage_cells::model::CharacterizedLibrary;
use leakage_netlist::PlacedCircuit;
use leakage_numeric::fft::FftPlanCache;
use leakage_numeric::parallel::Parallelism;
use leakage_numeric::stats::RunningStats;
use leakage_numeric::Instruments;
use leakage_process::correlation::SpatialCorrelation;
use leakage_process::field::{CirculantFieldSampler, FieldScratch, GridGeometry};
use leakage_process::Technology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, StandardNormal};

/// Builder for [`ChipSampler`].
#[derive(Debug)]
pub struct ChipSamplerBuilder<'a, C> {
    placed: &'a PlacedCircuit,
    charlib: &'a CharacterizedLibrary,
    tech: &'a Technology,
    wid: &'a C,
    signal_probability: f64,
    sample_vt: bool,
    plan_cache: Option<&'a FftPlanCache>,
    ins: Instruments<'a>,
}

impl<'a, C: SpatialCorrelation> ChipSamplerBuilder<'a, C> {
    /// Starts a builder over a placed design.
    pub fn new(
        placed: &'a PlacedCircuit,
        charlib: &'a CharacterizedLibrary,
        tech: &'a Technology,
        wid: &'a C,
    ) -> Self {
        ChipSamplerBuilder {
            placed,
            charlib,
            tech,
            wid,
            signal_probability: 0.5,
            sample_vt: false,
            plan_cache: None,
            ins: Instruments::none(),
        }
    }

    /// Sets the global signal probability (default 0.5).
    pub fn signal_probability(mut self, p: f64) -> Self {
        self.signal_probability = p;
        self
    }

    /// Enables independent per-gate RDF Vt sampling (for the §2.1
    /// variance-negligibility ablation).
    pub fn sample_vt(mut self, enable: bool) -> Self {
        self.sample_vt = enable;
        self
    }

    /// Shares the field sampler's colouring-FFT plan through `cache`:
    /// sweeps that build many samplers over same-shape grids reuse one
    /// plan instead of recomputing twiddle tables per sampler. Does not
    /// change any sampled value.
    pub fn plan_cache(mut self, cache: &'a FftPlanCache) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Routes sampler-construction instrumentation (plan-cache hit/miss
    /// counters, colouring spans) to `ins`. Defaults to none.
    pub fn instruments(mut self, ins: Instruments<'a>) -> Self {
        self.ins = ins;
        self
    }

    /// Builds the sampler.
    ///
    /// # Errors
    ///
    /// Returns [`McError::InvalidArgument`] if a gate lacks fitted
    /// triplets (the MC engine evaluates leakage through the fitted state
    /// curves) or falls outside the library.
    pub fn build(self) -> Result<ChipSampler, McError> {
        let grid = GridGeometry::for_die(
            self.placed.n_gates(),
            self.placed.width(),
            self.placed.height(),
        )?;
        let l_var = self.tech.l_variation();
        let field = match self.plan_cache {
            Some(cache) => CirculantFieldSampler::new_with_plan_cache(
                grid,
                self.wid,
                l_var.sigma_wid(),
                Parallelism::auto(),
                cache,
                self.ins,
            )?,
            None => CirculantFieldSampler::new(grid, self.wid, l_var.sigma_wid())?,
        };
        let vt_slope = if self.sample_vt {
            let n_avg = 0.5 * (self.tech.nmos().n_factor + self.tech.pmos().n_factor);
            1.0 / (n_avg * self.tech.thermal_voltage())
        } else {
            0.0
        };
        let gates = build_gate_models(self.placed, self.charlib, self.signal_probability)?;
        // Map each gate position to its nearest site.
        let sites: Vec<usize> = self
            .placed
            .gates()
            .iter()
            .map(|g| {
                let col = ((g.x / grid.pitch_x()) as usize).min(grid.cols() - 1);
                let row = ((g.y / grid.pitch_y()) as usize).min(grid.rows() - 1);
                row * grid.cols() + col
            })
            .collect();
        Ok(ChipSampler {
            grid,
            field,
            sigma_d2d: l_var.sigma_d2d(),
            vt_sigma: self.tech.vt_sigma(),
            vt_slope,
            sites,
            gates,
        })
    }
}

/// Samples total-chip leakage under correlated L and (optionally)
/// independent Vt variation.
///
/// # Example
///
/// ```no_run
/// # use leakage_cells::charax::{CharMethod, Characterizer};
/// # use leakage_cells::library::CellLibrary;
/// # use leakage_cells::UsageHistogram;
/// # use leakage_montecarlo::ChipSamplerBuilder;
/// # use leakage_netlist::generate::RandomCircuitGenerator;
/// # use leakage_netlist::placement::{place, PlacementStyle};
/// # use leakage_process::correlation::TentCorrelation;
/// # use leakage_process::Technology;
/// # use rand::SeedableRng;
/// let tech = Technology::cmos90();
/// let lib = CellLibrary::standard_62();
/// let charlib = Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;
/// let gen = RandomCircuitGenerator::new(UsageHistogram::uniform(62)?);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let placed = place(&gen.generate_exact(500, &mut rng)?, &lib, PlacementStyle::RowMajor, 0.7)?;
/// let wid = TentCorrelation::new(50.0)?;
/// let sampler = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid).build()?;
/// let stats = sampler.run(1000, &mut rng);
/// println!("chip leakage: {} ± {} A", stats.mean(), stats.sample_std());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ChipSampler {
    grid: GridGeometry,
    field: CirculantFieldSampler,
    sigma_d2d: f64,
    vt_sigma: f64,
    /// Vt sensitivity `1/(n·V_T)` (per volt) — 0 disables Vt sampling.
    vt_slope: f64,
    sites: Vec<usize>,
    gates: Vec<GateModel>,
}

impl ChipSampler {
    /// The site grid the field is sampled on.
    pub fn grid(&self) -> GridGeometry {
        self.grid
    }

    /// Evaluates the chip leakage for one pre-sampled WID field.
    fn eval_with_field<R: Rng + ?Sized>(&self, wid_field: &[f64], rng: &mut R) -> f64 {
        debug_assert!(
            self.sites.iter().all(|s| *s < wid_field.len()),
            "site map built against the sampled grid"
        );
        let d2d: f64 = {
            let z: f64 = StandardNormal.sample(rng);
            z * self.sigma_d2d
        };
        let mut total = 0.0;
        for (g, site) in self.gates.iter().zip(&self.sites) {
            let dl = d2d + wid_field[*site];
            let mut leak = g.sample_leakage(dl, rng);
            if self.vt_slope > 0.0 {
                let dvt: f64 = {
                    let z: f64 = StandardNormal.sample(rng);
                    z * self.vt_sigma
                };
                leak *= (-dvt * self.vt_slope).exp();
            }
            total += leak; // chipleak-lint: allow(l10): fixed-order per-sample gate sum; Kahan would change golden-pinned bits
        }
        total
    }

    /// Draws one total-chip leakage sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let (f, _) = self.field.sample_two(rng);
        self.eval_with_field(&f, rng)
    }

    /// Runs `trials` chip samples and returns streaming statistics.
    /// (Field samples come in independent pairs from the FFT, so an odd
    /// trial count wastes half a field — harmless.)
    pub fn run<R: Rng + ?Sized>(&self, trials: usize, rng: &mut R) -> RunningStats {
        let mut stats = RunningStats::new();
        let mut done = 0;
        while done < trials {
            let (f1, f2) = self.field.sample_two(rng);
            stats.push(self.eval_with_field(&f1, rng));
            done += 1;
            if done < trials {
                stats.push(self.eval_with_field(&f2, rng));
                done += 1;
            }
        }
        stats
    }

    /// Runs `trials` chip samples from counter-derived RNG streams with the
    /// session-default thread budget; see [`ChipSampler::run_seeded_with`].
    pub fn run_seeded(&self, trials: usize, base_seed: u64) -> RunningStats {
        self.run_seeded_with(trials, base_seed, Parallelism::auto())
    }

    /// Parallel Monte Carlo with per-trial RNG streams.
    ///
    /// The FFT field sampler yields two independent fields per draw, so the
    /// unit of work is the *pair* `p` covering trials `2p` and `2p + 1`,
    /// evaluated from its own stream seeded with
    /// `base_seed.wrapping_add(p)`. Pairs are grouped into fixed-size
    /// chunks, each chunk accumulates [`RunningStats`] over its trials in
    /// trial order, and the partials are merged strictly in chunk order —
    /// so the result is **bit-identical** for every thread budget,
    /// including [`Parallelism::serial`].
    ///
    /// Unlike [`ChipSampler::run`], which consumes a single caller-owned
    /// RNG sequentially, the trial count here changes no trial's stream:
    /// trial `i` of a 10k-trial run equals trial `i` of a 1k-trial run.
    pub fn run_seeded_with(&self, trials: usize, base_seed: u64, par: Parallelism) -> RunningStats {
        self.run_seeded_instrumented(trials, base_seed, par, Instruments::none())
    }

    /// [`ChipSampler::run_seeded_with`] reporting to an injected
    /// [`Instruments`]: a span over the whole run, trial / pair-stream /
    /// chunk / gate-evaluation counters, the resulting mean, and a
    /// samples-per-second throughput value. The clock is only read on the
    /// calling thread (a fixed number of times), so under a deterministic
    /// clock the metrics are bit-identical for every thread budget.
    pub fn run_seeded_instrumented(
        &self,
        trials: usize,
        base_seed: u64,
        par: Parallelism,
        ins: Instruments<'_>,
    ) -> RunningStats {
        let start = ins.now_nanos();
        let span = ins.span("mc.run_seeded");
        // Fixed chunk size (in field pairs, i.e. 32 trials): never derived
        // from the thread count, to keep the decomposition deterministic.
        const PAIRS_PER_CHUNK: usize = 16;
        let n_pairs = trials.div_ceil(2);
        let n_chunks = n_pairs.div_ceil(PAIRS_PER_CHUNK);
        let partials = par.map_chunks(n_chunks, |c| {
            let mut stats = RunningStats::new();
            // One scratch + field-buffer set per chunk: the colouring FFT
            // runs off the sampler's precomputed plan and steady-state
            // draws within the chunk allocate nothing. The per-pair RNG
            // streams are identical to the unbatched path, so the sampled
            // values are bit-identical.
            let mut scratch = FieldScratch::new();
            let (mut f1, mut f2) = (Vec::new(), Vec::new());
            let lo = c * PAIRS_PER_CHUNK;
            let hi = ((c + 1) * PAIRS_PER_CHUNK).min(n_pairs);
            for p in lo..hi {
                let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(p as u64));
                self.field
                    .sample_two_into(&mut rng, &mut f1, &mut f2, &mut scratch);
                stats.push(self.eval_with_field(&f1, &mut rng));
                if 2 * p + 1 < trials {
                    stats.push(self.eval_with_field(&f2, &mut rng));
                }
            }
            stats
        });
        let mut stats = RunningStats::new();
        for p in &partials {
            stats.merge(p);
        }
        ins.add("mc.trials", trials as u64);
        ins.add("mc.pair_streams", n_pairs as u64);
        ins.add("mc.chunks", n_chunks as u64);
        ins.add("mc.plan_reuses", n_pairs as u64);
        ins.add("mc.batch.pairs_per_chunk", PAIRS_PER_CHUNK as u64);
        ins.add("mc.gate_evals", (trials * self.gates.len()) as u64);
        ins.record("mc.mean", stats.mean());
        drop(span);
        let elapsed = ins.now_nanos().saturating_sub(start);
        if elapsed > 0 {
            ins.record(
                "mc.samples_per_sec",
                trials as f64 / (elapsed as f64 * 1e-9),
            );
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_cells::library::CellId;
    use leakage_cells::model::{CharacterizedCell, StateModel};
    use leakage_cells::LeakageTriplet;
    use leakage_core::PlacedGate;
    use leakage_process::correlation::TentCorrelation;
    use leakage_process::ParameterVariation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SIGMA: f64 = 4.5;

    fn charlib() -> CharacterizedLibrary {
        let t = LeakageTriplet::new(1e-9, -0.06, 0.0009).unwrap();
        CharacterizedLibrary {
            cells: vec![CharacterizedCell {
                id: CellId(0),
                name: "cell0".into(),
                n_inputs: 0,
                states: vec![StateModel {
                    state: 0,
                    mean: t.mean(SIGMA).unwrap(),
                    std: t.std(SIGMA).unwrap(),
                    triplet: Some(t),
                    fit_r2: Some(1.0),
                }],
            }],
            l_sigma: SIGMA,
        }
    }

    fn placed(n: usize) -> PlacedCircuit {
        let side = (n as f64).sqrt().ceil() as usize;
        let gates: Vec<PlacedGate> = (0..n)
            .map(|i| PlacedGate {
                cell: CellId(0),
                x: (i % side) as f64 * 2.0 + 1.0,
                y: (i / side) as f64 * 2.0 + 1.0,
            })
            .collect();
        PlacedCircuit::new("mc", gates, side as f64 * 2.0, side as f64 * 2.0).unwrap()
    }

    fn tech() -> Technology {
        // Match the toy charlib's σ_L = 4.5 split evenly.
        let v = ParameterVariation::from_total(90.0, SIGMA, 0.5).unwrap();
        Technology::cmos90().with_l_variation(v).unwrap()
    }

    #[test]
    fn mc_mean_matches_analytic_gate_mean() {
        let charlib = charlib();
        let tech = tech();
        let placed = placed(100);
        let wid = TentCorrelation::new(20.0).unwrap();
        let sampler = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let stats = sampler.run(4000, &mut rng);
        let expect = 100.0 * charlib.cells[0].states[0].mean;
        let rel = (stats.mean() - expect).abs() / expect;
        assert!(rel < 0.02, "mc mean off by {rel}");
    }

    #[test]
    fn perfect_correlation_limit() {
        // Tiny die vs huge correlation length + pure-WID budget: all gates
        // share one ΔL, so σ_chip ≈ n·σ_gate.
        let charlib = charlib();
        let v = ParameterVariation::from_total(90.0, SIGMA, 0.0).unwrap();
        let tech = Technology::cmos90().with_l_variation(v).unwrap();
        let placed = placed(25);
        let wid = TentCorrelation::new(1e6).unwrap();
        let sampler = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let stats = sampler.run(6000, &mut rng);
        let expect = 25.0 * charlib.cells[0].states[0].std;
        let rel = (stats.sample_std() - expect).abs() / expect;
        assert!(rel < 0.06, "σ {} vs {expect}", stats.sample_std());
    }

    #[test]
    fn uncorrelated_limit() {
        // Correlation dies within a pitch and no D2D: σ_chip ≈ √n·σ_gate.
        let charlib = charlib();
        let v = ParameterVariation::from_total(90.0, SIGMA, 0.0).unwrap();
        let tech = Technology::cmos90().with_l_variation(v).unwrap();
        let placed = placed(100);
        let wid = TentCorrelation::new(0.5).unwrap();
        let sampler = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let stats = sampler.run(6000, &mut rng);
        let expect = 10.0 * charlib.cells[0].states[0].std;
        let rel = (stats.sample_std() - expect).abs() / expect;
        assert!(rel < 0.08, "σ {} vs {expect}", stats.sample_std());
    }

    #[test]
    fn vt_sampling_increases_mean_but_not_relative_std() {
        let charlib = charlib();
        let tech = tech();
        let placed = placed(400);
        let wid = TentCorrelation::new(20.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let base = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
            .build()
            .unwrap()
            .run(3000, &mut rng);
        let with_vt = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
            .sample_vt(true)
            .build()
            .unwrap()
            .run(3000, &mut rng);
        assert!(
            with_vt.mean() > base.mean() * 1.02,
            "vt lifts the mean: {} vs {}",
            with_vt.mean(),
            base.mean()
        );
        // For 400 independent gates the extra *relative* std from Vt is
        // tiny compared to the correlated-L std.
        let rel_base = base.sample_std() / base.mean();
        let rel_vt = with_vt.sample_std() / with_vt.mean();
        assert!(
            (rel_vt - rel_base).abs() / rel_base < 0.15,
            "relative spread barely moves: {rel_base} vs {rel_vt}"
        );
    }

    #[test]
    fn run_seeded_is_bit_identical_across_thread_counts() {
        let charlib = charlib();
        let tech = tech();
        let placed = placed(64);
        let wid = TentCorrelation::new(10.0).unwrap();
        let sampler = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
            .build()
            .unwrap();
        // 201 trials: odd count exercises the half-used final field pair.
        let serial = sampler.run_seeded_with(201, 42, Parallelism::serial());
        for threads in [2, 4, 8] {
            let par = sampler.run_seeded_with(201, 42, Parallelism::threads(threads));
            assert_eq!(serial, par, "threads = {threads}");
        }
        assert_eq!(serial.count(), 201);
    }

    #[test]
    fn run_seeded_trial_streams_are_independent_of_trial_count() {
        let charlib = charlib();
        let tech = tech();
        let placed = placed(36);
        let wid = TentCorrelation::new(10.0).unwrap();
        let sampler = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
            .build()
            .unwrap();
        // A prefix run must be a strict statistical prefix of a longer run:
        // the first 50 trials see identical streams either way, so the
        // 50-trial stats of both runs agree exactly.
        let short = sampler.run_seeded(50, 7);
        let long_prefix = sampler.run_seeded_with(50, 7, Parallelism::threads(4));
        assert_eq!(short, long_prefix);
        let long = sampler.run_seeded(100, 7);
        assert_eq!(long.count(), 100);
        assert_ne!(long, short);
    }

    #[test]
    fn run_seeded_mean_matches_analytic_gate_mean() {
        let charlib = charlib();
        let tech = tech();
        let placed = placed(100);
        let wid = TentCorrelation::new(20.0).unwrap();
        let sampler = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
            .build()
            .unwrap();
        let stats = sampler.run_seeded(4000, 2);
        let expect = 100.0 * charlib.cells[0].states[0].mean;
        let rel = (stats.mean() - expect).abs() / expect;
        assert!(rel < 0.02, "mc mean off by {rel}");
    }

    #[test]
    fn plan_cache_builder_does_not_change_samples() {
        let charlib = charlib();
        let tech = tech();
        let placed = placed(49);
        let wid = TentCorrelation::new(10.0).unwrap();
        let plain = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
            .build()
            .unwrap();
        let cache = FftPlanCache::new();
        let cached = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
            .plan_cache(&cache)
            .build()
            .unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(plain.run_seeded(101, 9), cached.run_seeded(101, 9));
    }

    #[test]
    fn build_rejects_missing_triplets() {
        let mut charlib = charlib();
        charlib.cells[0].states[0].triplet = None;
        let tech = tech();
        let placed = placed(9);
        let wid = TentCorrelation::new(10.0).unwrap();
        assert!(ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
            .build()
            .is_err());
    }
}
