//! Property-based consistency tests of the Monte-Carlo chip samplers on
//! synthetic single-state libraries: whatever the triplet, correlation
//! range or placement, the empirical mean must track the analytic gate
//! mean and the empirical std must sit between the iid floor and the
//! full-correlation ceiling.

use leakage_cells::library::CellId;
use leakage_cells::model::{CharacterizedCell, CharacterizedLibrary, StateModel};
use leakage_cells::LeakageTriplet;
use leakage_core::PlacedGate;
use leakage_montecarlo::{ChipSamplerBuilder, QuadtreeChipSampler};
use leakage_netlist::PlacedCircuit;
use leakage_process::correlation::TentCorrelation;
use leakage_process::hierarchical::QuadtreeCorrelation;
use leakage_process::{ParameterVariation, Technology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIGMA: f64 = 4.5;

fn charlib(a: f64, b: f64, c: f64) -> CharacterizedLibrary {
    let t = LeakageTriplet::new(a, b, c).expect("valid");
    CharacterizedLibrary {
        cells: vec![CharacterizedCell {
            id: CellId(0),
            name: "syn".into(),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(SIGMA).expect("finite"),
                std: t.std(SIGMA).expect("finite"),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        }],
        l_sigma: SIGMA,
    }
}

fn placed(n_side: usize, pitch: f64) -> PlacedCircuit {
    let gates: Vec<PlacedGate> = (0..n_side * n_side)
        .map(|i| PlacedGate {
            cell: CellId(0),
            x: (i % n_side) as f64 * pitch + pitch / 2.0,
            y: (i / n_side) as f64 * pitch + pitch / 2.0,
        })
        .collect();
    let side = n_side as f64 * pitch;
    PlacedCircuit::new("prop", gates, side, side).expect("valid")
}

fn tech() -> Technology {
    let v = ParameterVariation::from_total(90.0, SIGMA, 0.3).expect("budget");
    Technology::cmos90().with_l_variation(v).expect("tech")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn circulant_sampler_brackets(
        b in -0.08_f64..-0.03,
        dmax in 5.0_f64..200.0,
        seed in 0u64..100,
    ) {
        let charlib = charlib(1e-9, b, 5e-4);
        let tech = tech();
        let placed = placed(6, 4.0); // 36 gates on a 24 µm die
        let wid = TentCorrelation::new(dmax).unwrap();
        let sampler = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let stats = sampler.run(1200, &mut rng);
        let n = 36.0;
        let gate = &charlib.cells[0].states[0];
        // Mean tracks n·μ within MC error.
        let rel = (stats.mean() - n * gate.mean).abs() / (n * gate.mean);
        prop_assert!(rel < 0.08, "mean off by {rel}");
        // Std bracketed by iid floor and full-correlation ceiling
        // (generous MC slack on both sides).
        let floor = n.sqrt() * gate.std;
        let ceiling = n * gate.std;
        prop_assert!(stats.sample_std() > floor * 0.7, "below iid floor");
        prop_assert!(stats.sample_std() < ceiling * 1.3, "above ceiling");
    }

    #[test]
    fn quadtree_sampler_brackets(
        b in -0.08_f64..-0.03,
        w0 in 0.1_f64..0.9,
        seed in 0u64..100,
    ) {
        let charlib = charlib(2e-9, b, 5e-4);
        let placed = placed(5, 6.0); // 25 gates on a 30 µm die
        let model = QuadtreeCorrelation::new(30.0, 30.0, vec![w0, (1.0 - w0) * 0.5]).unwrap();
        let sampler =
            QuadtreeChipSampler::new(&placed, &charlib, model, SIGMA, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let stats = sampler.run(1200, &mut rng);
        let n = 25.0;
        let gate = &charlib.cells[0].states[0];
        let rel = (stats.mean() - n * gate.mean).abs() / (n * gate.mean);
        prop_assert!(rel < 0.08, "mean off by {rel}");
        prop_assert!(stats.sample_std() > n.sqrt() * gate.std * 0.7);
        prop_assert!(stats.sample_std() < n * gate.std * 1.3);
    }
}
