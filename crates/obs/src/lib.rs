//! Deterministic observability for the leakage estimator stack.
//!
//! The workspace's determinism contract (DESIGN.md §8) requires every
//! result — including metrics — to be bit-identical across serial and
//! parallel runs and across thread budgets. This crate provides the
//! instrumentation primitives that make that possible:
//!
//! - [`Recorder`]: spans, counters, and value histograms behind a trait,
//!   with a zero-overhead [`NoopRecorder`] as the library default.
//! - [`AggregatingRecorder`]: a thread-aware sink whose per-worker shards
//!   are merged deterministically — in worker-index order, with
//!   Kahan-compensated sums — so aggregates never depend on scheduling.
//! - [`Clock`]: injected time. chipleak-lint L2 bans `Instant::now` in
//!   library crates; library code only ever sees the trait. Binaries and
//!   benches supply [`WallClock`], tests supply the deterministic
//!   [`FakeClock`], and the noop default is the always-zero [`NullClock`].
//! - [`Instruments`]: the `(recorder, clock)` pair hot paths thread
//!   through their `*_instrumented` entry points, plus RAII [`SpanGuard`]
//!   timing.
//! - [`TeeRecorder`] / [`CountersOnly`]: combinators that fan one event
//!   stream out to two sinks and restrict a shared sink to the
//!   commutative counter subset — how `chipleakd` keeps a fleet-level
//!   aggregate bit-identical across worker counts while requests keep
//!   full-fidelity local views.
//! - [`MetricsSnapshot`]: an ordered, `PartialEq`-comparable view of an
//!   aggregate with a deterministic JSON rendering (BTreeMap key order,
//!   shortest-roundtrip floats) for `chipleak --metrics-json` and
//!   `BENCH_obs.json`.
//!
//! The crate is deliberately dependency-free so every workspace member can
//! link it without enlarging the dependency graph.

pub mod aggregate;
pub mod clock;
pub mod recorder;
pub mod tee;

pub use aggregate::{
    AggregatingRecorder, MetricsSnapshot, SpanSummary, ValueSummary, WorkerRecorder,
};
pub use clock::{Clock, FakeClock, NullClock, WallClock};
pub use recorder::{Instruments, NoopRecorder, Recorder, SpanGuard};
pub use tee::{CountersOnly, TeeRecorder};

/// Neumaier-compensated accumulator, local to this crate so `leakage-obs`
/// stays dependency-free (the estimator stack has its own in
/// `leakage-numeric`; the two must not be conflated by the linker of
/// ideas — this one only serves metric aggregation).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KahanF64 {
    sum: f64,
    compensation: f64,
}

impl KahanF64 {
    /// Fold one term into the compensated sum.
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Merge another accumulator into this one (order-sensitive by design:
    /// callers merge shards in worker-index order).
    pub fn merge(&mut self, other: &KahanF64) {
        self.add(other.sum);
        self.compensation += other.compensation;
    }

    /// The compensated total.
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

#[cfg(test)]
mod tests {
    use super::KahanF64;

    #[test]
    fn kahan_recovers_low_order_bits() {
        let mut k = KahanF64::default();
        let mut naive = 0.0_f64;
        for _ in 0..10_000 {
            k.add(1e16);
            k.add(1.0);
            k.add(-1e16);
            naive += 1e16;
            naive += 1.0;
            naive -= 1e16;
        }
        assert_eq!(k.value(), 10_000.0);
        assert!((naive - 10_000.0).abs() > 1.0, "naive sum should be lossy");
    }

    #[test]
    fn merge_matches_sequential_adds() {
        let xs = [1e16, 1.0, -1e16, 0.5, 3.25e-9, 7.0];
        let mut whole = KahanF64::default();
        for x in xs {
            whole.add(x);
        }
        let mut left = KahanF64::default();
        let mut right = KahanF64::default();
        for x in &xs[..3] {
            left.add(*x);
        }
        for x in &xs[3..] {
            right.add(*x);
        }
        let mut merged = KahanF64::default();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged.value().to_bits(), whole.value().to_bits());
    }
}
