//! Recorder combinators: fan-out and counter filtering.
//!
//! `chipleakd` needs two views of the same event stream: a per-request
//! [`AggregatingRecorder`](crate::AggregatingRecorder) with full fidelity
//! (values, spans), and a fleet-level aggregate shared by every worker
//! thread. The fleet view must stay bit-identical regardless of how jobs
//! interleave across workers — which only holds if the fleet recorder
//! receives *commutative* events. Counter increments are commutative
//! (`u64` addition); value and span observations are not (Kahan folds and
//! min/max ties are order-sensitive at the bit level).
//!
//! [`CountersOnly`] enforces that discipline by construction: it forwards
//! counters and drops everything else. [`TeeRecorder`] fans one event
//! stream out to two sinks, so a request handler can record once and feed
//! both views:
//!
//! ```
//! use leakage_obs::{AggregatingRecorder, CountersOnly, Recorder, TeeRecorder};
//!
//! let per_request = AggregatingRecorder::new();
//! let fleet = AggregatingRecorder::new();
//! let fleet_counters = CountersOnly::new(&fleet);
//! let tee = TeeRecorder::new(&per_request, &fleet_counters);
//! tee.add("service.cache.hits", 1);
//! tee.record("core.linear.variance", 2.5);
//! assert_eq!(fleet.snapshot().counters.len(), 1);
//! assert!(fleet.snapshot().values.is_empty());
//! assert_eq!(per_request.snapshot().values.len(), 1);
//! ```

use crate::recorder::Recorder;

/// Fans every event out to two recorders, in order (`first`, then
/// `second`). Enabled iff either side is enabled.
pub struct TeeRecorder<'a> {
    first: &'a dyn Recorder,
    second: &'a dyn Recorder,
}

impl<'a> TeeRecorder<'a> {
    /// Tee events to `first` and `second`.
    pub fn new(first: &'a dyn Recorder, second: &'a dyn Recorder) -> Self {
        Self { first, second }
    }
}

impl Recorder for TeeRecorder<'_> {
    fn add(&self, counter: &'static str, by: u64) {
        self.first.add(counter, by);
        self.second.add(counter, by);
    }

    fn record(&self, hist: &'static str, value: f64) {
        self.first.record(hist, value);
        self.second.record(hist, value);
    }

    fn span_ns(&self, span: &'static str, nanos: u64) {
        self.first.span_ns(span, nanos);
        self.second.span_ns(span, nanos);
    }

    fn is_enabled(&self) -> bool {
        self.first.is_enabled() || self.second.is_enabled()
    }
}

/// Forwards counter increments and drops value/span observations — the
/// commutative subset of the event stream. A shared aggregate fed only
/// through `CountersOnly` is bit-identical for every worker count and
/// every job interleaving, because `u64` addition is order-independent.
pub struct CountersOnly<'a> {
    inner: &'a dyn Recorder,
}

impl<'a> CountersOnly<'a> {
    /// Forward counters (only) to `inner`.
    pub fn new(inner: &'a dyn Recorder) -> Self {
        Self { inner }
    }
}

impl Recorder for CountersOnly<'_> {
    fn add(&self, counter: &'static str, by: u64) {
        self.inner.add(counter, by);
    }

    fn record(&self, _hist: &'static str, _value: f64) {}

    fn span_ns(&self, _span: &'static str, _nanos: u64) {}

    fn is_enabled(&self) -> bool {
        self.inner.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregatingRecorder;
    use crate::clock::FakeClock;
    use crate::recorder::Instruments;

    #[test]
    fn tee_duplicates_all_event_kinds() {
        let a = AggregatingRecorder::new();
        let b = AggregatingRecorder::new();
        let tee = TeeRecorder::new(&a, &b);
        tee.add("c", 3);
        tee.record("v", 1.5);
        tee.span_ns("s", 42);
        for snap in [a.snapshot(), b.snapshot()] {
            assert_eq!(snap.counters.get("c"), Some(&3));
            assert_eq!(snap.values.get("v").map(|v| v.count), Some(1));
            assert_eq!(snap.spans.get("s").map(|s| s.total_ns), Some(42));
        }
    }

    #[test]
    fn counters_only_drops_values_and_spans() {
        let inner = AggregatingRecorder::new();
        let filter = CountersOnly::new(&inner);
        filter.add("kept", 2);
        filter.record("dropped", 9.0);
        filter.span_ns("dropped_too", 7);
        let snap = inner.snapshot();
        assert_eq!(snap.counters.get("kept"), Some(&2));
        assert!(snap.values.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn tee_through_instruments_feeds_both_views() {
        let per_request = AggregatingRecorder::new();
        let fleet = AggregatingRecorder::new();
        let fleet_counters = CountersOnly::new(&fleet);
        let tee = TeeRecorder::new(&per_request, &fleet_counters);
        let clock = FakeClock::new(3);
        let ins = Instruments::new(&tee, &clock);
        ins.add("service.jobs", 1);
        ins.record("core.variance", 4.0);
        drop(ins.span("service.exec"));
        let req = per_request.snapshot();
        let fl = fleet.snapshot();
        assert_eq!(req.counters.get("service.jobs"), Some(&1));
        assert_eq!(fl.counters.get("service.jobs"), Some(&1));
        assert_eq!(req.values.len(), 1);
        assert_eq!(req.spans.len(), 1);
        assert!(fl.values.is_empty() && fl.spans.is_empty());
    }

    #[test]
    fn enabled_reflects_the_fanout() {
        let agg = AggregatingRecorder::new();
        let noop = crate::recorder::NoopRecorder;
        assert!(TeeRecorder::new(&agg, &noop).is_enabled());
        assert!(TeeRecorder::new(&noop, &agg).is_enabled());
        assert!(!TeeRecorder::new(&noop, &noop).is_enabled());
        assert!(CountersOnly::new(&agg).is_enabled());
        assert!(!CountersOnly::new(&noop).is_enabled());
    }
}
