//! Injected time sources.
//!
//! chipleak-lint L2 bans ambient time (`Instant::now`, `SystemTime::now`)
//! in library crates, because wall-clock reads are a nondeterminism
//! channel. The `Clock` trait inverts the dependency: library code
//! measures elapsed time through whatever clock the caller injects. The
//! one sanctioned wall-clock read in the whole workspace lives inside
//! `impl Clock for WallClock` below — the single extent the L2
//! `Clock`-injection carve-out exempts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic nanosecond counter. Implementations must be cheap and
/// thread-safe; values only ever need to be meaningful relative to each
/// other within one process.
pub trait Clock: Sync {
    /// Nanoseconds since an arbitrary per-process origin.
    fn now_nanos(&self) -> u64;
}

/// The noop clock: always reads zero, so spans cost two virtual calls and
/// record zero-length durations. This is what `Instruments::none()` uses.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_nanos(&self) -> u64 {
        0
    }
}

/// Deterministic test clock: every read returns the previous value plus a
/// fixed step, starting at zero. Because the instrumented hot paths read
/// the clock from the *calling* thread in a scheduling-independent order,
/// a `FakeClock` makes whole metric snapshots — spans included —
/// bit-identical across serial/parallel runs and thread budgets.
#[derive(Debug)]
pub struct FakeClock {
    next: AtomicU64,
    step: u64,
}

impl FakeClock {
    /// A clock that advances by `step` nanoseconds per read.
    pub fn new(step: u64) -> Self {
        Self {
            next: AtomicU64::new(0),
            step,
        }
    }

    /// Number of nanoseconds handed out so far.
    pub fn elapsed_nanos(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Jumps the clock forward by `nanos` without a read. Fault-injection
    /// harnesses use this to simulate a stalled job: advance past a
    /// request deadline and the next cooperative checkpoint expires it,
    /// deterministically and without sleeping.
    pub fn advance(&self, nanos: u64) {
        self.next.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl Clock for FakeClock {
    fn now_nanos(&self) -> u64 {
        self.next.fetch_add(self.step, Ordering::Relaxed)
    }
}

/// Real wall-clock time for binaries and benches. Library code never
/// names this type; it only sees `&dyn Clock`.
#[derive(Clone, Copy, Debug, Default)]
pub struct WallClock;

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        // The only ambient wall-clock read in the workspace's library
        // code; chipleak-lint L2 exempts exactly this `impl Clock for`
        // extent in `crates/obs`.
        static ORIGIN: OnceLock<Instant> = OnceLock::new();
        let elapsed = ORIGIN.get_or_init(Instant::now).elapsed();
        u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_reads_zero() {
        assert_eq!(NullClock.now_nanos(), 0);
        assert_eq!(NullClock.now_nanos(), 0);
    }

    #[test]
    fn fake_clock_ticks_deterministically() {
        let c = FakeClock::new(7);
        assert_eq!(c.now_nanos(), 0);
        assert_eq!(c.now_nanos(), 7);
        assert_eq!(c.now_nanos(), 14);
        assert_eq!(c.elapsed_nanos(), 21);
    }

    #[test]
    fn fake_clock_advance_jumps_without_a_read() {
        let c = FakeClock::new(1);
        assert_eq!(c.now_nanos(), 0);
        c.advance(1_000_000);
        assert_eq!(c.now_nanos(), 1_000_001);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock;
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }
}
