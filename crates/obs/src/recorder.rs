//! The `Recorder` trait, the zero-overhead noop default, and the
//! `Instruments` bundle hot paths thread through.

use crate::clock::{Clock, NullClock};

/// Sink for instrumentation events. All methods take `&self` so a single
/// recorder can be shared across worker threads; implementations decide
/// how (the noop ignores everything, the aggregator shards).
///
/// Metric names are `&'static str` by design: the instrumented hot paths
/// use fixed dotted names (`"core.exact.pairs"`), which keeps recording
/// allocation-free.
pub trait Recorder: Sync {
    /// Increment the named counter by `by`.
    fn add(&self, counter: &'static str, by: u64);

    /// Record one observation into the named value histogram.
    fn record(&self, hist: &'static str, value: f64);

    /// Record one completed span of `nanos` nanoseconds.
    fn span_ns(&self, span: &'static str, nanos: u64);

    /// `false` for sinks that drop everything; lets callers skip metric
    /// *derivation* work (not just recording) when nobody is listening.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The default sink: drops everything. Every method is an empty inlineable
/// body, so instrumented code paths cost one virtual call per event —
/// and events are per-API-call, never per-gate or per-pair.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn add(&self, _counter: &'static str, _by: u64) {}

    fn record(&self, _hist: &'static str, _value: f64) {}

    fn span_ns(&self, _span: &'static str, _nanos: u64) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

static NOOP_RECORDER: NoopRecorder = NoopRecorder;
static NULL_CLOCK: NullClock = NullClock;

/// The `(recorder, clock)` pair instrumented APIs accept. `Copy`, two
/// pointers wide — cheap to pass by value everywhere.
#[derive(Clone, Copy)]
pub struct Instruments<'a> {
    recorder: &'a dyn Recorder,
    clock: &'a dyn Clock,
}

impl<'a> Instruments<'a> {
    /// Bundle a recorder with a clock.
    pub fn new(recorder: &'a dyn Recorder, clock: &'a dyn Clock) -> Self {
        Self { recorder, clock }
    }

    /// The zero-overhead default: noop recorder, always-zero clock. This
    /// is what every un-instrumented public API passes down.
    pub fn none() -> Instruments<'static> {
        Instruments {
            recorder: &NOOP_RECORDER,
            clock: &NULL_CLOCK,
        }
    }

    /// The recorder half.
    pub fn recorder(&self) -> &'a dyn Recorder {
        self.recorder
    }

    /// Whether anything is listening (see [`Recorder::is_enabled`]).
    pub fn enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// Read the injected clock.
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Increment a counter.
    pub fn add(&self, counter: &'static str, by: u64) {
        self.recorder.add(counter, by);
    }

    /// Record a value observation.
    pub fn record(&self, hist: &'static str, value: f64) {
        self.recorder.record(hist, value);
    }

    /// Record an externally measured span.
    pub fn span_ns(&self, span: &'static str, nanos: u64) {
        self.recorder.span_ns(span, nanos);
    }

    /// Open an RAII span; the duration is recorded when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'a> {
        SpanGuard {
            ins: *self,
            name,
            start: self.clock.now_nanos(),
        }
    }
}

impl std::fmt::Debug for Instruments<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instruments")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// RAII span: measures from construction to drop on the injected clock.
#[must_use = "a span measures until it is dropped; binding it to `_` drops immediately"]
pub struct SpanGuard<'a> {
    ins: Instruments<'a>,
    name: &'static str,
    start: u64,
}

impl SpanGuard<'_> {
    /// Nanoseconds elapsed so far on the injected clock.
    pub fn elapsed_ns(&self) -> u64 {
        self.ins.now_nanos().saturating_sub(self.start)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.ins.now_nanos();
        self.ins.span_ns(self.name, end.saturating_sub(self.start));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregatingRecorder;
    use crate::clock::FakeClock;

    #[test]
    fn noop_is_disabled_and_silent() {
        let ins = Instruments::none();
        assert!(!ins.enabled());
        ins.add("x", 1);
        ins.record("y", 2.0);
        let _g = ins.span("z");
        assert_eq!(ins.now_nanos(), 0);
    }

    #[test]
    fn span_guard_measures_on_injected_clock() {
        let rec = AggregatingRecorder::new();
        let clock = FakeClock::new(5);
        let ins = Instruments::new(&rec, &clock);
        {
            let _g = ins.span("work");
            // one extra read between start and drop
            let _ = ins.now_nanos();
        }
        let snap = rec.snapshot();
        let span = snap.spans.get("work").expect("span recorded");
        assert_eq!(span.count, 1);
        // reads: start=0, mid=5, end=10 -> duration 10
        assert_eq!(span.total_ns, 10);
    }
}
