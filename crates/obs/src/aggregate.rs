//! Thread-aware aggregation with a deterministic merge.
//!
//! `AggregatingRecorder` holds one shard per worker slot. Workers (or the
//! calling thread, which is slot 0) record into their own shard; a
//! [`AggregatingRecorder::snapshot`] merges shards **in worker-index
//! order** with Kahan-compensated float sums, so the aggregate is a pure
//! function of *what* was recorded per slot, never of scheduling. The
//! instrumented hot paths go one step further and record everything from
//! the calling thread in chunk order, which makes snapshots bit-identical
//! across serial/parallel runs and thread budgets by construction.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::recorder::Recorder;
use crate::KahanF64;

/// Per-shard accumulation state for one value histogram.
#[derive(Clone, Debug, Default, PartialEq)]
struct ValueStats {
    count: u64,
    sum: KahanF64,
    min: f64,
    max: f64,
    /// Count per power-of-two magnitude bucket; the key is the unbiased
    /// binary exponent of `|value|` (exact, from the bit pattern), with
    /// `i32::MIN` for zero. A dependency-free deterministic histogram.
    log2_buckets: BTreeMap<i32, u64>,
}

impl ValueStats {
    fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            if value < self.min {
                self.min = value;
            }
            if value > self.max {
                self.max = value;
            }
        }
        self.count += 1;
        self.sum.add(value);
        *self.log2_buckets.entry(log2_bucket(value)).or_insert(0) += 1;
    }

    fn merge(&mut self, other: &ValueStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
        self.count += other.count;
        self.sum.merge(&other.sum);
        for (k, v) in &other.log2_buckets {
            *self.log2_buckets.entry(*k).or_insert(0) += v;
        }
    }
}

/// Exact magnitude bucket: the raw biased exponent field of the f64,
/// unbiased; `i32::MIN` for ±0. Bit-exact, so identical values always
/// land in identical buckets.
fn log2_bucket(value: f64) -> i32 {
    if value == 0.0 {
        return i32::MIN;
    }
    let biased = ((value.abs().to_bits() >> 52) & 0x7ff) as i32;
    biased - 1023
}

/// Per-shard accumulation state for one span.
#[derive(Clone, Debug, Default, PartialEq)]
struct SpanStats {
    count: u64,
    total_ns: u64,
}

/// One worker slot's private metric state.
#[derive(Debug, Default)]
struct Shard {
    counters: BTreeMap<&'static str, u64>,
    values: BTreeMap<&'static str, ValueStats>,
    spans: BTreeMap<&'static str, SpanStats>,
}

impl Shard {
    fn lock(m: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
        // A poisoned shard only means another worker panicked mid-record;
        // the counters themselves are always structurally valid.
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Thread-aware metric sink with a deterministic worker-index-order merge.
#[derive(Debug)]
pub struct AggregatingRecorder {
    shards: Vec<Mutex<Shard>>,
}

impl Default for AggregatingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl AggregatingRecorder {
    /// Single-shard recorder: every event lands in slot 0. This is the
    /// right shape for the instrumented hot paths, which record from the
    /// calling thread only.
    pub fn new() -> Self {
        Self::with_shards(1)
    }

    /// Recorder with `n` worker slots (at least one is always allocated).
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1);
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(Mutex::new(Shard::default()));
        }
        Self { shards }
    }

    /// Number of worker slots.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// A `Recorder` view bound to worker slot `index` (wrapped modulo the
    /// slot count). Hand one to each worker; slots are lock-contention
    /// free as long as workers stay in their own slot.
    pub fn worker(&self, index: usize) -> WorkerRecorder<'_> {
        WorkerRecorder {
            shards: &self.shards,
            index: index % self.shards.len(),
        }
    }

    /// Merge all shards — in worker-index order, Kahan-compensated — into
    /// an ordered snapshot. Does not drain the shards.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut values: BTreeMap<String, ValueStats> = BTreeMap::new();
        let mut spans: BTreeMap<String, SpanStats> = BTreeMap::new();
        for shard in &self.shards {
            let shard = Shard::lock(shard);
            for (k, v) in &shard.counters {
                *counters.entry((*k).to_owned()).or_insert(0) += v;
            }
            for (k, v) in &shard.values {
                values.entry((*k).to_owned()).or_default().merge(v);
            }
            for (k, v) in &shard.spans {
                let s = spans.entry((*k).to_owned()).or_default();
                s.count += v.count;
                s.total_ns += v.total_ns;
            }
        }
        MetricsSnapshot {
            counters,
            values: values
                .into_iter()
                .map(|(k, v)| (k, ValueSummary::from_stats(&v)))
                .collect(),
            spans: spans
                .into_iter()
                .map(|(k, v)| {
                    (
                        k,
                        SpanSummary {
                            count: v.count,
                            total_ns: v.total_ns,
                        },
                    )
                })
                .collect(),
        }
    }
}

impl Recorder for AggregatingRecorder {
    fn add(&self, counter: &'static str, by: u64) {
        self.worker(0).add(counter, by);
    }

    fn record(&self, hist: &'static str, value: f64) {
        self.worker(0).record(hist, value);
    }

    fn span_ns(&self, span: &'static str, nanos: u64) {
        self.worker(0).span_ns(span, nanos);
    }
}

/// A `Recorder` bound to one worker slot of an [`AggregatingRecorder`].
#[derive(Clone, Copy, Debug)]
pub struct WorkerRecorder<'a> {
    shards: &'a [Mutex<Shard>],
    index: usize,
}

impl WorkerRecorder<'_> {
    fn shard(&self) -> std::sync::MutexGuard<'_, Shard> {
        // `AggregatingRecorder::worker` wraps the slot modulo the shard
        // count, so the bound index is always in range.
        debug_assert!(self.index < self.shards.len());
        Shard::lock(&self.shards[self.index])
    }
}

impl Recorder for WorkerRecorder<'_> {
    fn add(&self, counter: &'static str, by: u64) {
        *self.shard().counters.entry(counter).or_insert(0) += by;
    }

    fn record(&self, hist: &'static str, value: f64) {
        self.shard().values.entry(hist).or_default().record(value);
    }

    fn span_ns(&self, span: &'static str, nanos: u64) {
        let mut shard = self.shard();
        let s = shard.spans.entry(span).or_default();
        s.count += 1;
        s.total_ns += nanos;
    }
}

/// Merged view of one value histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct ValueSummary {
    /// Number of observations.
    pub count: u64,
    /// Kahan-compensated sum of observations.
    pub sum: f64,
    /// Arithmetic mean (`sum / count`).
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// `(log2 magnitude bucket, count)` in ascending bucket order; the
    /// zero bucket is keyed `i32::MIN`.
    pub log2_buckets: Vec<(i32, u64)>,
}

impl ValueSummary {
    fn from_stats(v: &ValueStats) -> Self {
        let sum = v.sum.value();
        ValueSummary {
            count: v.count,
            sum,
            mean: if v.count > 0 {
                sum / v.count as f64
            } else {
                0.0
            },
            min: v.min,
            max: v.max,
            log2_buckets: v.log2_buckets.iter().map(|(k, c)| (*k, *c)).collect(),
        }
    }
}

/// Merged view of one span.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanSummary {
    /// Number of completed spans.
    pub count: u64,
    /// Total duration in nanoseconds on the injected clock.
    pub total_ns: u64,
}

/// Ordered, comparable aggregate of everything a recorder saw. All maps
/// are `BTreeMap`, so iteration (and the JSON rendering) is deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic event counters.
    pub counters: BTreeMap<String, u64>,
    /// Value histograms.
    pub values: BTreeMap<String, ValueSummary>,
    /// Span timings.
    pub spans: BTreeMap<String, SpanSummary>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.values.is_empty() && self.spans.is_empty()
    }

    /// Deterministic JSON: keys in BTreeMap order, floats in Rust's
    /// shortest-roundtrip form (non-finite floats become `null`). Equal
    /// snapshots always render to byte-identical strings.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            out.push_str(&v.to_string());
        });
        out.push_str("},\n  \"values\": {");
        push_entries(&mut out, self.values.iter(), |out, v| {
            out.push_str("{\"count\": ");
            out.push_str(&v.count.to_string());
            out.push_str(", \"sum\": ");
            push_f64(out, v.sum);
            out.push_str(", \"mean\": ");
            push_f64(out, v.mean);
            out.push_str(", \"min\": ");
            push_f64(out, v.min);
            out.push_str(", \"max\": ");
            push_f64(out, v.max);
            out.push_str(", \"log2_buckets\": {");
            for (i, (k, c)) in v.log2_buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let label = if *k == i32::MIN {
                    "zero".to_owned()
                } else {
                    k.to_string()
                };
                push_json_string(out, &label);
                out.push_str(": ");
                out.push_str(&c.to_string());
            }
            out.push_str("}}");
        });
        out.push_str("},\n  \"spans\": {");
        push_entries(&mut out, self.spans.iter(), |out, v| {
            out.push_str("{\"count\": ");
            out.push_str(&v.count.to_string());
            out.push_str(", \"total_ns\": ");
            out.push_str(&v.total_ns.to_string());
            out.push('}');
        });
        out.push_str("}\n}\n");
        out
    }

    /// Human-oriented plain-text rendering for `chipleak --metrics`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for (k, v) in &self.spans {
                let ms = v.total_ns as f64 / 1e6;
                out.push_str(&format!("  {k:<40} x{:<6} {ms:.3} ms\n", v.count));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<40} {v}\n"));
            }
        }
        if !self.values.is_empty() {
            out.push_str("values:\n");
            for (k, v) in &self.values {
                out.push_str(&format!(
                    "  {k:<40} n={} mean={:.6e} min={:.6e} max={:.6e}\n",
                    v.count, v.mean, v.min, v.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("no metrics recorded\n");
        }
        out
    }
}

/// Write `"key": <value>` entries with comma separation and two-space
/// inner indentation.
fn push_entries<'v, V: 'v>(
    out: &mut String,
    entries: impl Iterator<Item = (&'v String, &'v V)>,
    mut push_value: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (k, v) in entries {
        out.push_str(if first { "\n    " } else { ",\n    " });
        first = false;
        push_json_string(out, k);
        out.push_str(": ");
        push_value(out, v);
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest-roundtrip Debug form; integral values gain a ".0"
        // suffix, which JSON accepts.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_values_spans_round_trip() {
        let rec = AggregatingRecorder::new();
        rec.add("a.calls", 2);
        rec.add("a.calls", 3);
        rec.record("a.val", 1.5);
        rec.record("a.val", -2.5);
        rec.span_ns("a.span", 100);
        rec.span_ns("a.span", 50);
        let s = rec.snapshot();
        assert_eq!(s.counters["a.calls"], 5);
        let v = &s.values["a.val"];
        assert_eq!(v.count, 2);
        assert_eq!(v.sum, -1.0);
        assert_eq!(v.min, -2.5);
        assert_eq!(v.max, 1.5);
        assert_eq!(s.spans["a.span"].count, 2);
        assert_eq!(s.spans["a.span"].total_ns, 150);
    }

    #[test]
    fn merge_is_worker_index_ordered_not_scheduling_ordered() {
        // Same per-slot content must produce identical snapshots no
        // matter which order the slots were *written* in.
        let xs = [1e16, 1.0, -1e16, 3.5e-9];
        let make = |write_order: &[usize]| {
            let rec = AggregatingRecorder::with_shards(2);
            for &slot in write_order {
                let w = rec.worker(slot);
                w.record("v", xs[slot * 2]);
                w.record("v", xs[slot * 2 + 1]);
                w.add("c", slot as u64 + 1);
            }
            rec.snapshot()
        };
        let a = make(&[0, 1]);
        let b = make(&[1, 0]);
        assert_eq!(a, b);
        assert_eq!(
            a.values["v"].sum.to_bits(),
            b.values["v"].sum.to_bits(),
            "Kahan merge in worker-index order must be bit-identical"
        );
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn log2_buckets_are_exact() {
        assert_eq!(log2_bucket(0.0), i32::MIN);
        assert_eq!(log2_bucket(1.0), 0);
        assert_eq!(log2_bucket(-1.5), 0);
        assert_eq!(log2_bucket(2.0), 1);
        assert_eq!(log2_bucket(0.5), -1);
        assert_eq!(log2_bucket(3.0e-7), -22);
    }

    #[test]
    fn json_is_valid_and_deterministic() {
        let rec = AggregatingRecorder::new();
        rec.add("n.gates", 100);
        rec.record("sigma", 5.589e-7);
        rec.span_ns("estimate", 1234);
        let s = rec.snapshot();
        let json = s.to_json_string();
        assert_eq!(json, rec.snapshot().to_json_string());
        assert!(json.contains("\"n.gates\": 100"));
        assert!(json.contains("\"sigma\""));
        assert!(json.contains("5.589e-7"));
        assert!(json.contains("\"total_ns\": 1234"));
        // Crude structural sanity: braces balance.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_snapshot_renders() {
        let s = AggregatingRecorder::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.to_json_string().matches('{').count(), 4);
        assert_eq!(s.to_text(), "no metrics recorded\n");
    }

    #[test]
    fn shard_isolation_under_threads() {
        // Record the same per-slot content from real threads; the merge
        // must equal the serial reference exactly.
        let rec = AggregatingRecorder::with_shards(4);
        std::thread::scope(|scope| {
            for slot in 0..4 {
                let w = rec.worker(slot);
                scope.spawn(move || {
                    for i in 0..100 {
                        w.add("ops", 1);
                        w.record("val", (slot * 100 + i) as f64 * 1e-8);
                    }
                });
            }
        });
        let reference = AggregatingRecorder::with_shards(4);
        for slot in 0..4 {
            let w = reference.worker(slot);
            for i in 0..100 {
                w.add("ops", 1);
                w.record("val", (slot * 100 + i) as f64 * 1e-8);
            }
        }
        let a = rec.snapshot();
        let b = reference.snapshot();
        assert_eq!(a, b);
        assert_eq!(a.values["val"].sum.to_bits(), b.values["val"].sum.to_bits());
        assert_eq!(a.counters["ops"], 400);
    }
}
