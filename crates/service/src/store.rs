//! The `Arc`-shared deterministic artifact store.
//!
//! One [`ArtifactStore`] lives for the whole server process; every
//! request thread holds the same `Arc`. Three cache families sit behind
//! content-addressed `u64` keys ([`crate::keys`]): characterized
//! libraries, Eq. 17 correlation tables, and (via the embedded
//! [`FftPlanCache`]) circulant colouring plans. Maps are `BTreeMap`
//! (lint L1 — no hash-order iteration anywhere near an output path).
//!
//! ## Single-flight and deterministic counters
//!
//! A cache whose hit/miss totals depend on thread interleaving would
//! poison the fleet metrics snapshot, which the fault-injection suite
//! pins bit-identical across 1/2/8 workers. [`CacheFamily`] therefore
//! runs every lookup through a *single-flight* protocol:
//!
//! - the first thread to ask for a key installs a `Pending` slot,
//!   counts one **miss**, and computes outside the lock;
//! - concurrent askers find the `Pending` slot, count a **hit**, and
//!   block on a condvar until the value lands;
//! - later askers find `Ready` and count a hit without blocking.
//!
//! Computes (and therefore misses) equal the number of *distinct keys*
//! in the workload — a schedule-free quantity — and hits equal
//! `requests − distinct keys`. The expensive artifact is built exactly
//! once no matter how many clients race on a cold cache, which is the
//! property the concurrency smoke test asserts through
//! `service.cache.lib.misses == 1`.
//!
//! ## Eviction
//!
//! Families evict in FIFO insertion order once `capacity` is exceeded
//! (`Pending` slots are never evicted). The default capacity is
//! unbounded: under concurrency, eviction order — and hence *re*-miss
//! counts — would depend on which thread completed first, so bounded
//! capacity is an explicit operator opt-in (`chipleakd --cache-cap`)
//! documented as trading counter determinism for memory.

use std::collections::{BTreeMap, VecDeque};

// Under `--cfg loom` the store runs on the model-checked shims, so the
// loom suite (`tests/loom_store.rs`) can exhaustively explore the
// single-flight protocol below; everywhere else these are `std::sync`.
#[cfg(not(loom))]
use std::sync::{Arc, Condvar, Mutex, PoisonError};

#[cfg(loom)]
use loom::sync::{Arc, Condvar, Mutex, PoisonError};

use leakage_numeric::fft::FftPlanCache;
use leakage_obs::Instruments;

/// Cache behaviour knobs, fixed at server start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// `false` disables the store entirely: every request recomputes its
    /// artifacts. Responses must stay bit-identical either way (pinned
    /// by the cache-semantics proptests).
    pub enabled: bool,
    /// Per-family entry cap; `None` is unbounded (the default).
    pub capacity: Option<usize>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            capacity: None,
        }
    }
}

/// One slot in a family: either a value, or a promise that the first
/// asker is computing it.
enum Slot<T> {
    Pending,
    Ready(Arc<T>),
}

struct FamilyInner<T> {
    map: BTreeMap<u64, Slot<T>>,
    /// Keys of `Ready` entries in insertion order, for FIFO eviction.
    fifo: VecDeque<u64>,
}

/// A single-flight, content-addressed cache for one artifact type.
pub struct CacheFamily<T> {
    inner: Mutex<FamilyInner<T>>,
    landed: Condvar,
    config: CacheConfig,
    hits: &'static str,
    misses: &'static str,
    evictions: &'static str,
}

impl<T> CacheFamily<T> {
    fn new(
        config: CacheConfig,
        hits: &'static str,
        misses: &'static str,
        evictions: &'static str,
    ) -> Self {
        CacheFamily {
            inner: Mutex::new(FamilyInner {
                map: BTreeMap::new(),
                fifo: VecDeque::new(),
            }),
            landed: Condvar::new(),
            config,
            hits,
            misses,
            evictions,
        }
    }

    /// Bare-family constructor for the loom model check, which explores
    /// the single-flight protocol without an [`ArtifactStore`] (and
    /// must build the family *inside* `loom::model` so its lock and
    /// condvar register with the scheduler).
    #[cfg(loom)]
    pub fn for_model(config: CacheConfig) -> Self {
        CacheFamily::new(config, "model.hits", "model.misses", "model.evictions")
    }

    /// Number of `Ready` entries currently resident.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.fifo.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks `key` up, computing it at most once across all concurrent
    /// callers. `ins` receives the family's hit/miss/eviction counters
    /// (callers pass the fleet-level counter sink). Errors are not
    /// cached: a failed compute clears the pending slot so a later
    /// request can retry, and every waiter receives its own recompute
    /// attempt (deterministic errors return the same error everywhere).
    pub fn get_or_compute<E>(
        &self,
        key: u64,
        ins: Instruments<'_>,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        if !self.config.enabled {
            ins.add(self.misses, 1);
            return compute().map(Arc::new);
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match inner.map.get(&key) {
                Some(Slot::Ready(v)) => {
                    ins.add(self.hits, 1);
                    return Ok(Arc::clone(v));
                }
                Some(Slot::Pending) => {
                    // Another thread is computing this key right now:
                    // wait for it to land. The hit is only counted once
                    // the value arrives — if the compute fails instead,
                    // this request retries as a fresh asker and counts
                    // a miss, exactly as it would have serially.
                    loop {
                        inner = self
                            .landed
                            .wait(inner)
                            .unwrap_or_else(PoisonError::into_inner);
                        match inner.map.get(&key) {
                            Some(Slot::Ready(v)) => {
                                ins.add(self.hits, 1);
                                return Ok(Arc::clone(v));
                            }
                            Some(Slot::Pending) => continue,
                            None => break,
                        }
                    }
                }
                None => {
                    ins.add(self.misses, 1);
                    inner.map.insert(key, Slot::Pending);
                    drop(inner);
                    // If `compute` unwinds (a worker panic), the guard
                    // vacates the `Pending` slot and wakes every waiter
                    // on the way out — the panic-path extension of the
                    // error-vacates-slot invariant below. Without it a
                    // crashed computer would strand waiters forever.
                    let vacate = PendingVacate { family: self, key };
                    let result = compute();
                    std::mem::forget(vacate);
                    let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                    match result {
                        Ok(value) => {
                            let value = Arc::new(value);
                            inner.map.insert(key, Slot::Ready(Arc::clone(&value)));
                            inner.fifo.push_back(key);
                            if let Some(cap) = self.config.capacity {
                                while inner.fifo.len() > cap.max(1) {
                                    if let Some(old) = inner.fifo.pop_front() {
                                        inner.map.remove(&old);
                                        ins.add(self.evictions, 1);
                                    }
                                }
                            }
                            drop(inner);
                            self.landed.notify_all();
                            return Ok(value);
                        }
                        Err(e) => {
                            inner.map.remove(&key);
                            drop(inner);
                            self.landed.notify_all();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }
}

/// Unwind guard for the single-flight compute: dropped normally it is
/// `mem::forget`-disarmed first, so `drop` only ever runs on a panic,
/// where it removes the `Pending` slot (if still pending) and notifies
/// waiters so they retry as fresh askers.
struct PendingVacate<'a, T> {
    family: &'a CacheFamily<T>,
    key: u64,
}

impl<T> Drop for PendingVacate<'_, T> {
    fn drop(&mut self) {
        let mut inner = self
            .family
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if matches!(inner.map.get(&self.key), Some(Slot::Pending)) {
            inner.map.remove(&self.key);
        }
        drop(inner);
        self.family.landed.notify_all();
    }
}

/// The shared store: one cache family per artifact type plus the FFT
/// plan cache the Monte-Carlo path shares across jobs.
pub struct ArtifactStore {
    /// Characterized libraries, keyed by [`crate::keys::library_key`].
    pub libraries: CacheFamily<leakage_cells::model::CharacterizedLibrary>,
    /// Eq. 17 tables, keyed by [`crate::keys::table_key`].
    pub tables: CacheFamily<leakage_core::estimator::CorrelationTable>,
    /// Circulant colouring plans, keyed internally by torus shape.
    pub plans: FftPlanCache,
}

impl ArtifactStore {
    /// Builds a store with the given cache policy.
    pub fn new(config: CacheConfig) -> Arc<ArtifactStore> {
        Arc::new(ArtifactStore {
            libraries: CacheFamily::new(
                config,
                "service.cache.lib.hits",
                "service.cache.lib.misses",
                "service.cache.lib.evictions",
            ),
            tables: CacheFamily::new(
                config,
                "service.cache.table.hits",
                "service.cache.table.misses",
                "service.cache.table.evictions",
            ),
            plans: FftPlanCache::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_obs::AggregatingRecorder;
    use leakage_obs::NullClock;

    fn counters(rec: &AggregatingRecorder, name: &str) -> u64 {
        rec.snapshot().counters.get(name).copied().unwrap_or(0)
    }

    fn family(config: CacheConfig) -> CacheFamily<u64> {
        CacheFamily::new(config, "t.hits", "t.misses", "t.evictions")
    }

    #[test]
    fn second_lookup_hits() {
        let fam = family(CacheConfig::default());
        let rec = AggregatingRecorder::new();
        let ins = Instruments::new(&rec, &NullClock);
        let a = fam.get_or_compute::<()>(7, ins, || Ok(41)).unwrap();
        let b = fam.get_or_compute::<()>(7, ins, || Ok(999)).unwrap();
        assert_eq!((*a, *b), (41, 41), "second compute must not run");
        assert_eq!(counters(&rec, "t.hits"), 1);
        assert_eq!(counters(&rec, "t.misses"), 1);
    }

    #[test]
    fn disabled_cache_recomputes_every_time() {
        let fam = family(CacheConfig {
            enabled: false,
            capacity: None,
        });
        let rec = AggregatingRecorder::new();
        let ins = Instruments::new(&rec, &NullClock);
        let a = fam.get_or_compute::<()>(7, ins, || Ok(1)).unwrap();
        let b = fam.get_or_compute::<()>(7, ins, || Ok(2)).unwrap();
        assert_eq!((*a, *b), (1, 2));
        assert_eq!(counters(&rec, "t.misses"), 2);
        assert!(fam.is_empty());
    }

    #[test]
    fn errors_are_not_cached() {
        let fam = family(CacheConfig::default());
        let rec = AggregatingRecorder::new();
        let ins = Instruments::new(&rec, &NullClock);
        let err = fam.get_or_compute(3, ins, || Err::<u64, _>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        assert!(fam.is_empty());
        let ok = fam.get_or_compute::<()>(3, ins, || Ok(5)).unwrap();
        assert_eq!(*ok, 5);
        assert_eq!(counters(&rec, "t.misses"), 2);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let fam = family(CacheConfig {
            enabled: true,
            capacity: Some(2),
        });
        let rec = AggregatingRecorder::new();
        let ins = Instruments::new(&rec, &NullClock);
        for k in [1u64, 2, 3] {
            fam.get_or_compute::<()>(k, ins, || Ok(k * 10)).unwrap();
        }
        assert_eq!(fam.len(), 2);
        assert_eq!(counters(&rec, "t.evictions"), 1);
        // Key 1 was evicted: asking again recomputes.
        fam.get_or_compute::<()>(1, ins, || Ok(10)).unwrap();
        assert_eq!(counters(&rec, "t.misses"), 4);
        // Key 3 survived both evictions.
        fam.get_or_compute::<()>(3, ins, || Ok(30)).unwrap();
        assert_eq!(counters(&rec, "t.hits"), 1);
    }

    #[test]
    fn panicking_compute_vacates_the_pending_slot() {
        let fam = Arc::new(family(CacheConfig::default()));
        let crashed = {
            let fam = Arc::clone(&fam);
            std::thread::spawn(move || {
                let rec = AggregatingRecorder::new();
                let ins = Instruments::new(&rec, &NullClock);
                fam.get_or_compute::<()>(11, ins, || -> Result<u64, ()> {
                    panic!("injected compute crash")
                })
                .ok();
            })
        };
        assert!(
            crashed.join().is_err(),
            "the panic propagates to its thread"
        );
        // The slot must be vacated, not stranded `Pending`: a later
        // asker computes fresh instead of blocking forever.
        let rec = AggregatingRecorder::new();
        let ins = Instruments::new(&rec, &NullClock);
        let v = fam.get_or_compute::<()>(11, ins, || Ok(77)).unwrap();
        assert_eq!(*v, 77);
        assert_eq!(counters(&rec, "t.misses"), 1, "fresh asker, fresh miss");
    }

    #[test]
    fn waiter_survives_a_computer_crash() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let fam = Arc::new(family(CacheConfig::default()));
        let entered = Arc::new(AtomicBool::new(false));
        let computer = {
            let fam = Arc::clone(&fam);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                let rec = AggregatingRecorder::new();
                let ins = Instruments::new(&rec, &NullClock);
                fam.get_or_compute::<()>(12, ins, || -> Result<u64, ()> {
                    entered.store(true, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    panic!("injected compute crash")
                })
                .ok();
            })
        };
        while !entered.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // This call arrives while the doomed compute is in flight: it
        // parks on the pending slot, gets woken by the vacate guard,
        // and retries as a fresh asker.
        let rec = AggregatingRecorder::new();
        let ins = Instruments::new(&rec, &NullClock);
        let v = fam.get_or_compute::<()>(12, ins, || Ok(88)).unwrap();
        assert_eq!(*v, 88);
        assert!(computer.join().is_err());
    }

    #[test]
    fn racing_cold_lookups_compute_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let fam = Arc::new(family(CacheConfig::default()));
        let computes = Arc::new(AtomicU64::new(0));
        let rec = Arc::new(AggregatingRecorder::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let fam = Arc::clone(&fam);
            let computes = Arc::clone(&computes);
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                let ins = Instruments::new(rec.as_ref(), &NullClock);
                let v = fam
                    .get_or_compute::<()>(9, ins, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters really wait.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(123)
                    })
                    .unwrap();
                assert_eq!(*v, 123);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single-flight");
        let snap = rec.snapshot();
        assert_eq!(snap.counters.get("t.misses"), Some(&1));
        assert_eq!(snap.counters.get("t.hits"), Some(&7));
    }
}
