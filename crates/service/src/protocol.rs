//! The `chipleakd` wire protocol: NDJSON requests and byte-pinned
//! responses (DESIGN.md §14).
//!
//! One request per line, one response per line, responses in request
//! order. A request is `{"v":1,"id":<any>,"job":{"kind":...}}`; the
//! `id` is echoed back untouched in meaning (its canonical JSON form).
//! Unknown fields — top-level or inside `job` — are protocol errors:
//! the golden-transcript suite pins the protocol *hard*, and silently
//! ignored fields are how wire formats rot.
//!
//! Parsing resolves every optional field to its default here, so the
//! execution layer (and the content-addressed cache keys) only ever see
//! fully resolved jobs: `{"sweep_points":13}` and an omitted
//! `sweep_points` are the same job, byte-for-byte and key-for-key.

use std::collections::BTreeMap;

use leakage_cells::{CellError, CellLibrary, UsageHistogram};
use leakage_core::estimator::LadderStage;
use leakage_process::Technology;

use crate::error::{ErrorKind, ServiceError};
use crate::json::{self, Json};

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on `cells` — keeps a single job's grid walk bounded.
pub const MAX_CELLS: u64 = 100_000_000;
/// Upper bound on Monte-Carlo `trials` per job.
pub const MAX_TRIALS: u64 = 1_000_000;
/// Bounds on the characterization sweep resolution.
pub const SWEEP_POINTS_RANGE: (u64, u64) = (3, 201);

/// A named process corner. The closed tag set doubles as the corner's
/// identity in cache keys (via the resolved [`Technology`] parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TechSpec {
    /// 90 nm predictive corner (paper's main table).
    Cmos90,
    /// 65 nm scaled corner.
    Cmos65,
    /// 90 nm with the gate-leakage component enabled.
    Cmos90GateLeakage,
}

impl TechSpec {
    /// Wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            TechSpec::Cmos90 => "cmos90",
            TechSpec::Cmos65 => "cmos65",
            TechSpec::Cmos90GateLeakage => "cmos90gl",
        }
    }

    /// Resolves the corner's full parameter set.
    pub fn technology(self) -> Technology {
        match self {
            TechSpec::Cmos90 => Technology::cmos90(),
            TechSpec::Cmos65 => Technology::cmos65(),
            TechSpec::Cmos90GateLeakage => Technology::cmos90_with_gate_leakage(),
        }
    }

    fn parse(tag: &str) -> Result<TechSpec, ServiceError> {
        match tag {
            "cmos90" => Ok(TechSpec::Cmos90),
            "cmos65" => Ok(TechSpec::Cmos65),
            "cmos90gl" => Ok(TechSpec::Cmos90GateLeakage),
            other => Err(ServiceError::protocol(format!(
                "unknown tech {other:?}; use cmos90|cmos65|cmos90gl"
            ))),
        }
    }
}

/// A usage-histogram preset (mirrors `chipleak estimate --mix`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixSpec {
    /// Every cell equally likely.
    Uniform,
    /// Control-logic blend.
    Control,
    /// Datapath blend.
    Datapath,
    /// Memory-dominated blend.
    Memory,
    /// Clock-tree blend.
    Clock,
}

impl MixSpec {
    /// Builds the histogram over the standard 62-cell library.
    pub fn histogram(self, lib: &CellLibrary) -> Result<UsageHistogram, CellError> {
        use leakage_cells::presets;
        match self {
            MixSpec::Uniform => UsageHistogram::uniform(lib.len()),
            MixSpec::Control => presets::control_logic(lib),
            MixSpec::Datapath => presets::datapath(lib),
            MixSpec::Memory => presets::memory_dominated(lib),
            MixSpec::Clock => presets::clock_tree(lib),
        }
    }

    fn parse(tag: &str) -> Result<MixSpec, ServiceError> {
        match tag {
            "uniform" => Ok(MixSpec::Uniform),
            "control" => Ok(MixSpec::Control),
            "datapath" => Ok(MixSpec::Datapath),
            "memory" => Ok(MixSpec::Memory),
            "clock" => Ok(MixSpec::Clock),
            other => Err(ServiceError::protocol(format!(
                "unknown mix {other:?}; use uniform|control|datapath|memory|clock"
            ))),
        }
    }
}

/// Per-request degradation policy (mirrors the CLI's mode flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeSpec {
    /// Run exactly the requested method, unguarded.
    Default,
    /// Run the requested method with applicability/validation checks;
    /// refuse (never fall back) if they fail.
    Strict,
    /// Run the validity-guarded fallback ladder and report degradation.
    Resilient,
}

impl ModeSpec {
    fn parse(tag: &str) -> Result<ModeSpec, ServiceError> {
        match tag {
            "default" => Ok(ModeSpec::Default),
            "strict" => Ok(ModeSpec::Strict),
            "resilient" => Ok(ModeSpec::Resilient),
            other => Err(ServiceError::protocol(format!(
                "unknown mode {other:?}; use default|strict|resilient"
            ))),
        }
    }
}

fn parse_stage(tag: &str) -> Result<LadderStage, ServiceError> {
    match tag {
        "linear" => Ok(LadderStage::Linear),
        "integral2d" => Ok(LadderStage::Integral2d),
        "polar1d" => Ok(LadderStage::Polar1d),
        "exact-lattice" => Ok(LadderStage::ExactLattice),
        other => Err(ServiceError::protocol(format!(
            "unknown method {other:?}; use linear|integral2d|polar1d|exact-lattice"
        ))),
    }
}

/// A fully resolved estimation job.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateSpec {
    /// Process corner.
    pub tech: TechSpec,
    /// Characterization sweep resolution (default 13, the CLI default).
    pub sweep_points: usize,
    /// Gate count.
    pub n_cells: usize,
    /// Die width (µm).
    pub die_w: f64,
    /// Die height (µm).
    pub die_h: f64,
    /// Tent correlation range (µm; default 100, the CLI default).
    pub dmax: f64,
    /// Global signal probability (default 0.5).
    pub p: f64,
    /// Usage-histogram preset (default uniform).
    pub mix: MixSpec,
    /// Estimator stage (default polar1d, the CLI default). Ignored in
    /// resilient mode, where the ladder chooses.
    pub method: LadderStage,
    /// Degradation policy. `None` defers to the server's `--resilient`
    /// flag at execution time.
    pub mode: Option<ModeSpec>,
    /// Worker-thread budget for this job (0 = all cores). Changes wall
    /// time only, never a single output bit.
    pub threads: usize,
    /// Echo this request's counter subset in the response.
    pub metrics: bool,
}

/// A fully resolved characterization warm-up job.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeSpec {
    /// Process corner.
    pub tech: TechSpec,
    /// Sweep resolution (default 13).
    pub sweep_points: usize,
    /// Thread budget (0 = all cores).
    pub threads: usize,
    /// Echo counters in the response.
    pub metrics: bool,
}

/// A fully resolved Monte-Carlo cross-check job.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloSpec {
    /// Process corner.
    pub tech: TechSpec,
    /// Sweep resolution for the backing library (default 13).
    pub sweep_points: usize,
    /// Gate count.
    pub n_cells: usize,
    /// Die width (µm).
    pub die_w: f64,
    /// Die height (µm).
    pub die_h: f64,
    /// Tent correlation range (default 100).
    pub dmax: f64,
    /// Signal probability (default 0.5).
    pub p: f64,
    /// Histogram preset (default uniform).
    pub mix: MixSpec,
    /// Trial count.
    pub trials: usize,
    /// Base seed for the counter-seeded trial streams (default 42).
    pub seed: u64,
    /// Seed for the synthetic netlist draw (default 0).
    pub netlist_seed: u64,
    /// Thread budget (0 = all cores).
    pub threads: usize,
    /// Echo counters in the response.
    pub metrics: bool,
}

/// One parsed job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Liveness probe.
    Ping,
    /// Warm the library cache.
    Characterize(CharacterizeSpec),
    /// Histogram-only RG estimate.
    Estimate(EstimateSpec),
    /// Monte-Carlo cross-check on a synthetic placed design.
    MonteCarlo(MonteCarloSpec),
    /// Fleet counter snapshot. Order-sensitive by design: the server
    /// serializes it against every earlier job.
    Stats,
    /// Stop reading further requests after acknowledging.
    Shutdown,
}

/// A parsed request line: the `id` echo plus either a job or the error
/// the line produced. Errors still get responses — in order.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The client's correlation id, `Json::Null` when absent.
    pub id: Json,
    /// The job, or what was wrong with the line.
    pub job: Result<JobSpec, ServiceError>,
    /// Optional per-request deadline in milliseconds, measured from
    /// admission. `None` falls back to the server's
    /// `--default-deadline-ms` (absent there too: no deadline). The
    /// field is optional on the wire, so pre-deadline transcripts
    /// replay unchanged.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// A request that failed before an id could be extracted.
    pub fn failed(err: ServiceError) -> Request {
        Request {
            id: Json::Null,
            job: Err(err),
            deadline_ms: None,
        }
    }
}

// ---- field extraction helpers ------------------------------------------

fn check_known_fields(
    map: &BTreeMap<String, Json>,
    allowed: &[&str],
    context: &str,
) -> Result<(), ServiceError> {
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(ServiceError::protocol(format!(
                "unknown field {key:?} in {context}"
            )));
        }
    }
    Ok(())
}

fn opt_str<'a>(
    map: &'a BTreeMap<String, Json>,
    name: &str,
) -> Result<Option<&'a str>, ServiceError> {
    match map.get(name) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ServiceError::protocol(format!("field {name:?} must be a string"))),
    }
}

fn opt_u64(map: &BTreeMap<String, Json>, name: &str) -> Result<Option<u64>, ServiceError> {
    match map.get(name) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ServiceError::protocol(format!("field {name:?} must be a non-negative integer"))
        }),
    }
}

fn opt_f64(map: &BTreeMap<String, Json>, name: &str) -> Result<Option<f64>, ServiceError> {
    match map.get(name) {
        None => Ok(None),
        Some(v) => v
            .as_num()
            .map(Some)
            .ok_or_else(|| ServiceError::protocol(format!("field {name:?} must be a number"))),
    }
}

fn opt_bool(map: &BTreeMap<String, Json>, name: &str) -> Result<bool, ServiceError> {
    match map.get(name) {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ServiceError::protocol(format!("field {name:?} must be a boolean"))),
    }
}

fn need_u64(map: &BTreeMap<String, Json>, name: &str) -> Result<u64, ServiceError> {
    opt_u64(map, name)?.ok_or_else(|| ServiceError::protocol(format!("field {name:?} is required")))
}

fn tech_field(map: &BTreeMap<String, Json>) -> Result<TechSpec, ServiceError> {
    match opt_str(map, "tech")? {
        None => Ok(TechSpec::Cmos90),
        Some(tag) => TechSpec::parse(tag),
    }
}

fn mix_field(map: &BTreeMap<String, Json>) -> Result<MixSpec, ServiceError> {
    match opt_str(map, "mix")? {
        None => Ok(MixSpec::Uniform),
        Some(tag) => MixSpec::parse(tag),
    }
}

fn sweep_points_field(map: &BTreeMap<String, Json>) -> Result<usize, ServiceError> {
    let v = opt_u64(map, "sweep_points")?.unwrap_or(13);
    let (lo, hi) = SWEEP_POINTS_RANGE;
    if !(lo..=hi).contains(&v) {
        return Err(ServiceError::protocol(format!(
            "sweep_points must be in {lo}..={hi}, got {v}"
        )));
    }
    Ok(v as usize)
}

fn threads_field(map: &BTreeMap<String, Json>) -> Result<usize, ServiceError> {
    let v = opt_u64(map, "threads")?.unwrap_or(0);
    if v > 1024 {
        return Err(ServiceError::protocol(format!(
            "threads must be at most 1024, got {v}"
        )));
    }
    Ok(v as usize)
}

fn cells_field(map: &BTreeMap<String, Json>) -> Result<usize, ServiceError> {
    let v = need_u64(map, "cells")?;
    if v == 0 || v > MAX_CELLS {
        return Err(ServiceError::protocol(format!(
            "cells must be in 1..={MAX_CELLS}, got {v}"
        )));
    }
    Ok(v as usize)
}

fn die_field(map: &BTreeMap<String, Json>) -> Result<(f64, f64), ServiceError> {
    let arr = map
        .get("die")
        .ok_or_else(|| ServiceError::protocol("field \"die\" is required"))?
        .as_arr()
        .ok_or_else(|| ServiceError::protocol("field \"die\" must be [width, height]"))?;
    match arr {
        [w, h] => {
            let (w, h) = (
                w.as_num()
                    .ok_or_else(|| ServiceError::protocol("die width must be a number"))?,
                h.as_num()
                    .ok_or_else(|| ServiceError::protocol("die height must be a number"))?,
            );
            if w.is_nan() || w <= 0.0 || h.is_nan() || h <= 0.0 {
                return Err(ServiceError::protocol(format!(
                    "die dimensions must be positive, got [{w}, {h}]"
                )));
            }
            Ok((w, h))
        }
        _ => Err(ServiceError::protocol(
            "field \"die\" must be [width, height]",
        )),
    }
}

fn dmax_field(map: &BTreeMap<String, Json>) -> Result<f64, ServiceError> {
    let v = opt_f64(map, "dmax")?.unwrap_or(100.0);
    if v.is_nan() || v <= 0.0 {
        return Err(ServiceError::protocol(format!(
            "dmax must be positive, got {v}"
        )));
    }
    Ok(v)
}

fn p_field(map: &BTreeMap<String, Json>) -> Result<f64, ServiceError> {
    let v = opt_f64(map, "p")?.unwrap_or(0.5);
    if !(0.0..=1.0).contains(&v) {
        return Err(ServiceError::protocol(format!(
            "p must be in [0, 1], got {v}"
        )));
    }
    Ok(v)
}

// ---- request parsing ---------------------------------------------------

/// Parses one request line. Every failure mode becomes a typed error
/// carried inside the returned [`Request`], so the caller always has an
/// id echo (when one was recoverable) and always produces a response.
pub fn parse_request(line: &str) -> Request {
    let value = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return Request::failed(ServiceError::new(
                ErrorKind::Parse,
                format!("invalid JSON: {e}"),
            ))
        }
    };
    let top = match value.as_obj() {
        Some(m) => m,
        None => return Request::failed(ServiceError::protocol("request must be a JSON object")),
    };
    let id = top.get("id").cloned().unwrap_or(Json::Null);
    // A malformed deadline poisons the whole request (the job must not
    // run without the deadline the client asked for), but the id echo
    // above survives either way.
    let (job, deadline_ms) = match opt_u64(top, "deadline_ms") {
        Ok(deadline_ms) => (parse_job(top), deadline_ms),
        Err(e) => (Err(e), None),
    };
    Request {
        id,
        job,
        deadline_ms,
    }
}

fn parse_job(top: &BTreeMap<String, Json>) -> Result<JobSpec, ServiceError> {
    check_known_fields(top, &["v", "id", "job", "deadline_ms"], "request")?;
    let v = need_u64(top, "v")?;
    if v != PROTOCOL_VERSION {
        return Err(ServiceError::protocol(format!(
            "unsupported protocol version {v}; this server speaks {PROTOCOL_VERSION}"
        )));
    }
    let job = top
        .get("job")
        .ok_or_else(|| ServiceError::protocol("field \"job\" is required"))?
        .as_obj()
        .ok_or_else(|| ServiceError::protocol("field \"job\" must be an object"))?;
    let kind = opt_str(job, "kind")?
        .ok_or_else(|| ServiceError::protocol("field \"kind\" is required in job"))?;
    match kind {
        "ping" => {
            check_known_fields(job, &["kind"], "ping job")?;
            Ok(JobSpec::Ping)
        }
        "stats" => {
            check_known_fields(job, &["kind"], "stats job")?;
            Ok(JobSpec::Stats)
        }
        "shutdown" => {
            check_known_fields(job, &["kind"], "shutdown job")?;
            Ok(JobSpec::Shutdown)
        }
        "characterize" => {
            check_known_fields(
                job,
                &["kind", "tech", "sweep_points", "threads", "metrics"],
                "characterize job",
            )?;
            Ok(JobSpec::Characterize(CharacterizeSpec {
                tech: tech_field(job)?,
                sweep_points: sweep_points_field(job)?,
                threads: threads_field(job)?,
                metrics: opt_bool(job, "metrics")?,
            }))
        }
        "estimate" => {
            check_known_fields(
                job,
                &[
                    "kind",
                    "tech",
                    "sweep_points",
                    "cells",
                    "die",
                    "dmax",
                    "p",
                    "mix",
                    "method",
                    "mode",
                    "threads",
                    "metrics",
                ],
                "estimate job",
            )?;
            let (die_w, die_h) = die_field(job)?;
            Ok(JobSpec::Estimate(EstimateSpec {
                tech: tech_field(job)?,
                sweep_points: sweep_points_field(job)?,
                n_cells: cells_field(job)?,
                die_w,
                die_h,
                dmax: dmax_field(job)?,
                p: p_field(job)?,
                mix: mix_field(job)?,
                method: match opt_str(job, "method")? {
                    None => LadderStage::Polar1d,
                    Some(tag) => parse_stage(tag)?,
                },
                mode: match opt_str(job, "mode")? {
                    None => None,
                    Some(tag) => Some(ModeSpec::parse(tag)?),
                },
                threads: threads_field(job)?,
                metrics: opt_bool(job, "metrics")?,
            }))
        }
        "montecarlo" => {
            check_known_fields(
                job,
                &[
                    "kind",
                    "tech",
                    "sweep_points",
                    "cells",
                    "die",
                    "dmax",
                    "p",
                    "mix",
                    "trials",
                    "seed",
                    "netlist_seed",
                    "threads",
                    "metrics",
                ],
                "montecarlo job",
            )?;
            let (die_w, die_h) = die_field(job)?;
            let trials = need_u64(job, "trials")?;
            if trials == 0 || trials > MAX_TRIALS {
                return Err(ServiceError::protocol(format!(
                    "trials must be in 1..={MAX_TRIALS}, got {trials}"
                )));
            }
            Ok(JobSpec::MonteCarlo(MonteCarloSpec {
                tech: tech_field(job)?,
                sweep_points: sweep_points_field(job)?,
                n_cells: cells_field(job)?,
                die_w,
                die_h,
                dmax: dmax_field(job)?,
                p: p_field(job)?,
                mix: mix_field(job)?,
                trials: trials as usize,
                seed: opt_u64(job, "seed")?.unwrap_or(42),
                netlist_seed: opt_u64(job, "netlist_seed")?.unwrap_or(0),
                threads: threads_field(job)?,
                metrics: opt_bool(job, "metrics")?,
            }))
        }
        other => Err(ServiceError::protocol(format!(
            "unknown job kind {other:?}; use ping|characterize|estimate|montecarlo|stats|shutdown"
        ))),
    }
}

// ---- response rendering ------------------------------------------------

/// A successful response body. Field order on the wire is fixed by
/// [`render_response`], not by struct layout.
#[derive(Debug, Clone, PartialEq)]
pub enum OkBody {
    /// `ping` reply.
    Pong,
    /// `characterize` reply.
    Characterized {
        /// Corner tag.
        tech: &'static str,
        /// Sweep resolution used.
        sweep_points: usize,
        /// Cells characterized.
        cells: usize,
        /// Total channel-length sigma (nm).
        l_sigma: f64,
    },
    /// `estimate` reply.
    Estimate {
        /// Stage that produced the numbers.
        method: &'static str,
        /// Mean leakage (A).
        mean: f64,
        /// Leakage standard deviation (A).
        std: f64,
        /// σ/µ.
        relative_std: f64,
        /// 95th-percentile budget (A).
        q95: f64,
        /// 99th-percentile budget (A).
        q99: f64,
        /// Resilient-ladder rejection lines (empty outside resilient
        /// mode, and when the first rung was accepted).
        degraded: Vec<String>,
        /// Per-request counter echo, when requested.
        metrics: Option<BTreeMap<String, u64>>,
    },
    /// `montecarlo` reply.
    MonteCarlo {
        /// Trials run.
        trials: usize,
        /// Sample mean (A).
        mean: f64,
        /// Sample standard deviation (A).
        std: f64,
        /// Per-request counter echo, when requested.
        metrics: Option<BTreeMap<String, u64>>,
    },
    /// `stats` reply: the fleet counter snapshot.
    Stats {
        /// Counter name → value, in name order.
        counters: BTreeMap<String, u64>,
    },
    /// `shutdown` acknowledgement.
    ShutdownAck,
}

fn write_counters(out: &mut String, counters: &BTreeMap<String, u64>) {
    out.push('{');
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_string(out, name);
        out.push(':');
        json::write_number(out, *value as f64);
    }
    out.push('}');
}

fn write_metrics(out: &mut String, metrics: &Option<BTreeMap<String, u64>>) {
    if let Some(counters) = metrics {
        out.push_str(",\"metrics\":");
        write_counters(out, counters);
    }
}

/// Renders one response line (without the trailing newline). The byte
/// layout — key order, float form, spacing — is part of the protocol
/// and pinned by `tests/golden/`.
pub fn render_response(id: &Json, outcome: &Result<OkBody, ServiceError>) -> String {
    let mut out = String::new();
    out.push_str("{\"v\":1,\"id\":");
    id.write(&mut out);
    match outcome {
        Ok(body) => {
            out.push_str(",\"ok\":");
            render_ok(&mut out, body);
        }
        Err(e) => {
            out.push_str(",\"err\":{\"kind\":");
            json::write_string(&mut out, e.kind.tag());
            out.push_str(",\"message\":");
            json::write_string(&mut out, &e.message);
            out.push('}');
        }
    }
    out.push('}');
    out
}

fn render_ok(out: &mut String, body: &OkBody) {
    use std::fmt::Write as _;
    match body {
        OkBody::Pong => {
            let _ = write!(out, "{{\"kind\":\"pong\",\"protocol\":{PROTOCOL_VERSION}}}");
        }
        OkBody::Characterized {
            tech,
            sweep_points,
            cells,
            l_sigma,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"characterized\",\"tech\":\"{tech}\",\"sweep_points\":{sweep_points},\"cells\":{cells},\"l_sigma\":"
            );
            json::write_number(out, *l_sigma);
            out.push('}');
        }
        OkBody::Estimate {
            method,
            mean,
            std,
            relative_std,
            q95,
            q99,
            degraded,
            metrics,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"estimate\",\"method\":\"{method}\",\"mean\":"
            );
            json::write_number(out, *mean);
            out.push_str(",\"std\":");
            json::write_number(out, *std);
            out.push_str(",\"relative_std\":");
            json::write_number(out, *relative_std);
            out.push_str(",\"q95\":");
            json::write_number(out, *q95);
            out.push_str(",\"q99\":");
            json::write_number(out, *q99);
            out.push_str(",\"degraded\":[");
            for (i, line) in degraded.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_string(out, line);
            }
            out.push(']');
            write_metrics(out, metrics);
            out.push('}');
        }
        OkBody::MonteCarlo {
            trials,
            mean,
            std,
            metrics,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"montecarlo\",\"trials\":{trials},\"mean\":"
            );
            json::write_number(out, *mean);
            out.push_str(",\"std\":");
            json::write_number(out, *std);
            write_metrics(out, metrics);
            out.push('}');
        }
        OkBody::Stats { counters } => {
            out.push_str("{\"kind\":\"stats\",\"counters\":");
            write_counters(out, counters);
            out.push('}');
        }
        OkBody::ShutdownAck => out.push_str("{\"kind\":\"shutdown\"}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(line: &str) -> JobSpec {
        parse_request(line).job.expect(line)
    }

    fn parse_err(line: &str) -> ServiceError {
        parse_request(line).job.expect_err(line)
    }

    #[test]
    fn defaults_resolve_at_parse_time() {
        let a = parse_ok(r#"{"v":1,"job":{"kind":"estimate","cells":10000,"die":[800,600]}}"#);
        let b = parse_ok(
            r#"{"v":1,"job":{"kind":"estimate","cells":10000,"die":[800,600],"tech":"cmos90","sweep_points":13,"dmax":100.0,"p":0.5,"mix":"uniform","method":"polar1d","threads":0}}"#,
        );
        assert_eq!(a, b, "explicit defaults and omitted fields are one job");
    }

    #[test]
    fn ids_echo_in_canonical_form() {
        let req = parse_request(r#"{"v":1,"id":"job-1","job":{"kind":"ping"}}"#);
        assert_eq!(req.id, Json::Str("job-1".into()));
        let resp = render_response(&req.id, &Ok(OkBody::Pong));
        assert_eq!(
            resp,
            r#"{"v":1,"id":"job-1","ok":{"kind":"pong","protocol":1}}"#
        );
        let req = parse_request(r#"{"v":1,"job":{"kind":"ping"}}"#);
        assert_eq!(
            render_response(&req.id, &Ok(OkBody::Pong)),
            r#"{"v":1,"id":null,"ok":{"kind":"pong","protocol":1}}"#
        );
    }

    #[test]
    fn unknown_fields_are_protocol_errors() {
        assert_eq!(
            parse_err(r#"{"v":1,"jobs":{"kind":"ping"}}"#).kind,
            ErrorKind::Protocol
        );
        assert_eq!(
            parse_err(r#"{"v":1,"job":{"kind":"ping","extra":1}}"#).kind,
            ErrorKind::Protocol
        );
        assert_eq!(
            parse_err(r#"{"v":1,"job":{"kind":"frobnicate"}}"#).kind,
            ErrorKind::Protocol
        );
    }

    #[test]
    fn version_is_enforced() {
        assert_eq!(
            parse_err(r#"{"job":{"kind":"ping"}}"#).kind,
            ErrorKind::Protocol
        );
        assert_eq!(
            parse_err(r#"{"v":2,"job":{"kind":"ping"}}"#).kind,
            ErrorKind::Protocol
        );
    }

    #[test]
    fn malformed_json_keeps_a_null_id() {
        let req = parse_request("{\"v\":1,\"id\":\"x\",\"job\":");
        assert_eq!(req.id, Json::Null);
        assert_eq!(req.job.expect_err("truncated").kind, ErrorKind::Parse);
    }

    #[test]
    fn bounds_are_enforced() {
        assert_eq!(
            parse_err(r#"{"v":1,"job":{"kind":"estimate","cells":0,"die":[800,600]}}"#).kind,
            ErrorKind::Protocol
        );
        assert_eq!(
            parse_err(r#"{"v":1,"job":{"kind":"estimate","cells":100,"die":[-1,600]}}"#).kind,
            ErrorKind::Protocol
        );
        assert_eq!(
            parse_err(
                r#"{"v":1,"job":{"kind":"montecarlo","cells":100,"die":[80,60],"trials":0}}"#
            )
            .kind,
            ErrorKind::Protocol
        );
        assert_eq!(
            parse_err(r#"{"v":1,"job":{"kind":"estimate","cells":100,"die":[80,60],"p":1.5}}"#)
                .kind,
            ErrorKind::Protocol
        );
    }

    #[test]
    fn deadline_ms_is_optional_and_typed() {
        let req = parse_request(r#"{"v":1,"job":{"kind":"ping"}}"#);
        assert_eq!(req.deadline_ms, None);
        let req = parse_request(r#"{"v":1,"deadline_ms":250,"job":{"kind":"ping"}}"#);
        assert_eq!(req.deadline_ms, Some(250));
        assert!(req.job.is_ok());
        // A malformed deadline must not let the job run without it.
        let req = parse_request(r#"{"v":1,"id":9,"deadline_ms":"soon","job":{"kind":"ping"}}"#);
        assert_eq!(req.deadline_ms, None);
        assert_eq!(req.id, Json::Num(9.0));
        assert_eq!(req.job.expect_err("bad deadline").kind, ErrorKind::Protocol);
    }

    #[test]
    fn error_rendering_is_stable() {
        let err = ServiceError::new(ErrorKind::Oversized, "line exceeds 65536 bytes");
        assert_eq!(
            render_response(&Json::Num(7.0), &Err(err)),
            r#"{"v":1,"id":7,"err":{"kind":"oversized","message":"line exceeds 65536 bytes"}}"#
        );
    }
}
