//! The `chipleakd` server loop: NDJSON in, NDJSON out, responses in
//! request order regardless of worker count.
//!
//! ## Architecture
//!
//! [`Service::serve`] runs three roles inside one scoped-thread block:
//!
//! - the **reader** (calling thread) pulls size-capped lines, parses
//!   them (parse/protocol errors become work items too — every line
//!   gets a response), and enqueues `(seq, request)` work;
//! - **workers** (`config.workers` threads) pop work FIFO, execute jobs
//!   against the shared [`ArtifactStore`], and deposit rendered
//!   responses keyed by `seq`;
//! - the **writer** thread emits responses strictly in `seq` order, so
//!   the byte stream out of an 8-worker server equals the 1-worker
//!   stream exactly (pinned by the protocol suite run both ways).
//!
//! A dedicated writer (rather than writing at EOF) keeps interactive
//! clients honest: a socket client that writes one request and waits
//! for its response before the next would deadlock a write-at-the-end
//! design.
//!
//! ## Order-sensitive jobs
//!
//! `stats` snapshots fleet counters, which execution mutates — so the
//! server serializes it: the worker holding a `stats` job waits until
//! every earlier response is written, and the reader stops dispatching
//! until the `stats` response is out. Cheap (stats is rare), and it
//! makes the snapshot a pure function of the request prefix, which is
//! what lets the fault suite pin `stats` responses across 1/2/8
//! workers. `shutdown` stops the reader immediately; queued work
//! drains, responses flush, and [`Service::serve`] returns.
//!
//! ## Overload survival
//!
//! Three mechanisms keep a saturated or faulting server answering
//! (DESIGN.md §16):
//!
//! - **Admission control** — with `queue_cap` set, the reader sheds
//!   work the moment the queue is full, answering the shed request with
//!   a typed `overloaded` error *at its seq* (never a silent drop).
//!   Shedding is decided by the single reader at enqueue time, so which
//!   requests shed is independent of worker count and scheduling.
//! - **Deadlines** — requests carry `deadline_ms` (or inherit
//!   `default_deadline_ms`); the admission timestamp comes from the
//!   injected [`Clock`]. Expiry in-queue or at a cooperative exec
//!   checkpoint answers `deadline_exceeded`. The default [`NullClock`]
//!   reads zero forever, so deadlines never fire unless a real (or
//!   fake) clock is injected — golden transcripts replay bit-exact.
//! - **Supervision** — each worker body runs under `catch_unwind`; a
//!   panic answers the in-flight request with a typed `internal` error,
//!   vacates any artifact-store slot the dead worker held (the store's
//!   own unwind guard), bumps `service.supervisor.respawns`, and
//!   re-enters the body. Surviving responses keep their bytes and their
//!   seq order.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, Write};

// Under `--cfg loom` the queue/buffer primitives are model-checked by
// `mod loom_tests` below; everywhere else they are `std::sync`.
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex, PoisonError};

#[cfg(loom)]
use loom::sync::{Condvar, Mutex, PoisonError};

use leakage_obs::{AggregatingRecorder, Clock, MetricsSnapshot, NullClock};

use crate::error::{ErrorKind, ServiceError};
use crate::exec::{self, ExecContext};
use crate::protocol::{render_response, JobSpec, OkBody, Request};
use crate::store::{ArtifactStore, CacheConfig};

/// Server configuration, fixed at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Job-execution threads per stream (≥ 1). Changes scheduling only:
    /// the response byte stream and the fleet snapshot are identical
    /// for every value.
    pub workers: usize,
    /// Artifact cache policy.
    pub cache: CacheConfig,
    /// Default degradation policy for estimate jobs that carry no
    /// `mode` field (the `--resilient` flag).
    pub resilient_default: bool,
    /// Maximum request-line length in bytes; longer lines get a typed
    /// `oversized` error and are discarded without buffering.
    pub max_line_bytes: usize,
    /// Admission-control bound on queued (not yet popped) work items;
    /// `None` (the default) admits everything. With a cap, excess
    /// requests are shed at enqueue time with a typed `overloaded`
    /// error, and the `service.queue.depth` high-water counter is
    /// recorded (documented, like `--cache-cap`'s eviction counters, as
    /// trading counter determinism for boundedness — response *bytes*
    /// per request stay deterministic either way).
    pub queue_cap: Option<usize>,
    /// Deadline applied to requests that carry no `deadline_ms` of
    /// their own; `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// `SO_SNDTIMEO` for unix-socket connections, so one slow client
    /// can stall only its own connection, never the fleet. `None`
    /// leaves writes unbounded.
    pub write_timeout_ms: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            cache: CacheConfig::default(),
            resilient_default: false,
            max_line_bytes: 64 * 1024,
            queue_cap: None,
            default_deadline_ms: None,
            write_timeout_ms: None,
        }
    }
}

/// What a finished [`Service::serve`] call saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines consumed (blank lines excluded).
    pub requests: u64,
    /// `true` when the stream ended on a `shutdown` job rather than EOF.
    pub shutdown: bool,
    /// Requests shed at admission with a typed `overloaded` error
    /// (always 0 without a `queue_cap`).
    pub shed: u64,
}

/// The long-running estimation service: one shared artifact store, one
/// fleet recorder, any number of streams served against them.
pub struct Service {
    store: std::sync::Arc<ArtifactStore>,
    fleet: std::sync::Arc<AggregatingRecorder>,
    config: ServiceConfig,
    /// Deadline time source. [`NullClock`] by default, so deadlines
    /// never expire and the response bytes of deadline-free transcripts
    /// are untouched; the binary injects `WallClock`, tests inject
    /// `FakeClock`.
    clock: std::sync::Arc<dyn Clock + Send + Sync>,
    /// Sleep used by the accept loop's poll and retry backoff;
    /// injectable so tests observe the schedule without real delays.
    sleeper: std::sync::Arc<dyn Sleeper + Send + Sync>,
    /// Fault-injection hook, called with each work item's seq right
    /// before execution. A panicking hook exercises the supervisor; a
    /// clock-advancing hook simulates a stalled job. Never set in
    /// production.
    fault_hook: Option<std::sync::Arc<dyn Fn(u64) + Send + Sync>>,
}

impl Service {
    /// Builds a service with its own store and fleet recorder.
    pub fn new(config: ServiceConfig) -> Service {
        Service {
            store: ArtifactStore::new(config.cache),
            fleet: std::sync::Arc::new(AggregatingRecorder::new()),
            config,
            clock: std::sync::Arc::new(NullClock),
            sleeper: std::sync::Arc::new(ThreadSleeper),
            fault_hook: None,
        }
    }

    /// Replaces the deadline clock (builder-style).
    #[must_use]
    pub fn with_clock(mut self, clock: std::sync::Arc<dyn Clock + Send + Sync>) -> Service {
        self.clock = clock;
        self
    }

    /// Replaces the accept-loop sleeper (builder-style).
    #[must_use]
    pub fn with_sleeper(mut self, sleeper: std::sync::Arc<dyn Sleeper + Send + Sync>) -> Service {
        self.sleeper = sleeper;
        self
    }

    /// Installs a per-request fault hook (builder-style). Test-only
    /// instrumentation: the chaos soak uses it to crash or stall
    /// specific seqs deterministically.
    #[must_use]
    pub fn with_fault_hook(mut self, hook: std::sync::Arc<dyn Fn(u64) + Send + Sync>) -> Service {
        self.fault_hook = Some(hook);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared artifact store (exposed for tests and the binary).
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// A deterministic snapshot of the fleet-level metrics. Only
    /// counters are ever fed here, so the snapshot is bit-identical
    /// across worker counts once the same requests have completed.
    pub fn fleet_snapshot(&self) -> MetricsSnapshot {
        self.fleet.snapshot()
    }

    fn outcome(&self, request: &Request, deadline_at: Option<u64>) -> Result<OkBody, ServiceError> {
        match &request.job {
            Err(e) => Err(e.clone()),
            Ok(JobSpec::Stats) => Ok(OkBody::Stats {
                counters: self.fleet_snapshot().counters,
            }),
            Ok(JobSpec::Shutdown) => Ok(OkBody::ShutdownAck),
            Ok(job) => {
                let ctx = ExecContext {
                    store: &self.store,
                    fleet: self.fleet.as_ref(),
                    resilient_default: self.config.resilient_default,
                    deadline: deadline_at.map(|at| exec::Deadline {
                        clock: self.clock.as_ref(),
                        at,
                    }),
                };
                exec::execute(&ctx, job)
            }
        }
    }

    fn count_outcome(&self, outcome: &Result<OkBody, ServiceError>) {
        use leakage_obs::Recorder as _;
        match outcome {
            Ok(_) => self.fleet.add("service.responses.ok", 1),
            Err(_) => self.fleet.add("service.responses.err", 1),
        }
    }

    /// The absolute deadline for a request admitted *now*, from its own
    /// `deadline_ms` or the server default. No deadline means no clock
    /// read at all.
    fn admission_deadline(&self, request: &Request) -> Option<u64> {
        let ms = request.deadline_ms.or(self.config.default_deadline_ms)?;
        Some(
            self.clock
                .now_nanos()
                .saturating_add(ms.saturating_mul(1_000_000)),
        )
    }

    /// The typed answer for a deadline that expired before execution
    /// started (still queued, or never scheduled).
    fn queue_expired(&self) -> ServiceError {
        use leakage_obs::Recorder as _;
        self.fleet.add("service.deadline.queue_expired", 1);
        ServiceError::new(
            ErrorKind::DeadlineExceeded,
            "deadline expired before execution started",
        )
    }

    /// Parses and executes one request line synchronously, returning
    /// the rendered response and whether it was a `shutdown`. This is
    /// the single-request building block (and the serial oracle the
    /// concurrency tests compare against).
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        use leakage_obs::Recorder as _;
        self.fleet.add("service.requests", 1);
        let request = parse_or_reject(line.as_bytes(), self.config.max_line_bytes);
        let shutdown = matches!(request.job, Ok(JobSpec::Shutdown));
        let deadline_at = self.admission_deadline(&request);
        let expired = deadline_at.is_some_and(|at| self.clock.now_nanos() > at);
        let outcome = if expired {
            Err(self.queue_expired())
        } else {
            self.outcome(&request, deadline_at)
        };
        self.count_outcome(&outcome);
        (render_response(&request.id, &outcome), shutdown)
    }

    /// Serves one NDJSON stream until EOF or a `shutdown` job.
    ///
    /// # Errors
    ///
    /// Propagates reader and writer I/O failures; protocol-level
    /// problems never surface here (they become error responses).
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        mut reader: R,
        writer: W,
    ) -> std::io::Result<ServeSummary> {
        use leakage_obs::Recorder as _;
        let workers = self.config.workers.max(1);
        let queue = WorkQueue::new(self.config.queue_cap);
        let out = OutBuffer::new();
        let slots: Vec<WorkerSlot> = (0..workers).map(|_| WorkerSlot::new()).collect();
        let mut summary = ServeSummary {
            requests: 0,
            shutdown: false,
            shed: 0,
        };
        let mut read_error: Option<std::io::Error> = None;

        std::thread::scope(|scope| {
            let writer_handle = scope.spawn(|| out.write_all(writer));
            for slot in &slots {
                scope.spawn(|| self.supervised_worker(&queue, &out, slot));
            }

            // Reader role, on the calling thread.
            let mut seq: u64 = 0;
            let mut high_water: usize = 0;
            loop {
                let line = match read_line_limited(&mut reader, self.config.max_line_bytes) {
                    Ok(l) => l,
                    Err(e) => {
                        read_error = Some(e);
                        break;
                    }
                };
                let Some(line) = line else { break };
                if line_is_blank(&line) {
                    continue;
                }
                self.fleet.add("service.requests", 1);
                let request = parse_or_reject(&line, self.config.max_line_bytes);
                let is_shutdown = matches!(request.job, Ok(JobSpec::Shutdown));
                let is_stats = matches!(request.job, Ok(JobSpec::Stats));
                let deadline_at = self.admission_deadline(&request);
                let item = WorkItem {
                    seq,
                    request,
                    deadline_at,
                };
                // Admission control happens here, on the single reader,
                // so which requests shed depends only on the request
                // prefix and queue occupancy — never on worker racing.
                // `shutdown` always admits: a saturated server must
                // still be stoppable.
                match queue.push(item, is_shutdown) {
                    Admission::Admitted { depth } => high_water = high_water.max(depth),
                    Admission::Shed(item) => {
                        summary.shed += 1;
                        self.fleet.add("service.shed.overload", 1);
                        let outcome = Err(ServiceError::new(
                            ErrorKind::Overloaded,
                            "work queue is full; request shed at admission",
                        ));
                        self.count_outcome(&outcome);
                        out.push(item.seq, render_response(&item.request.id, &outcome));
                    }
                }
                seq += 1;
                if is_stats {
                    // Nothing after a stats job may execute before its
                    // snapshot is taken: hold the reader until the
                    // response is out.
                    out.wait_written_below(seq);
                }
                if is_shutdown {
                    summary.shutdown = true;
                    break;
                }
            }
            summary.requests = seq;
            if self.config.queue_cap.is_some() {
                // Queue occupancy depends on drain speed, so this
                // counter exists only in bounded mode, where admission
                // already trades snapshot determinism for boundedness.
                self.fleet.add("service.queue.depth", high_water as u64);
            }
            queue.close();
            out.set_total(seq);
            // Workers drain and exit; the writer exits once everything
            // is flushed; the scope joins them all.
            drop(writer_handle);
        });

        if let Some(e) = read_error {
            return Err(e);
        }
        out.take_write_error().map_or(Ok(summary), Err)
    }

    /// One worker seat: re-enters the worker body for as long as it
    /// keeps crashing. Each crash answers the in-flight request with a
    /// typed `internal` error at its original seq (so the reorder
    /// buffer stays gapless), counts a respawn, and loops. A clean
    /// return means the queue closed.
    fn supervised_worker(&self, queue: &WorkQueue, out: &OutBuffer, slot: &WorkerSlot) {
        use leakage_obs::Recorder as _;
        loop {
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.worker_body(queue, out, slot)
            }));
            match run {
                Ok(()) => return,
                Err(_) => {
                    self.fleet.add("service.supervisor.respawns", 1);
                    if let Some(dead) = slot.take() {
                        let outcome = Err(ServiceError::new(
                            ErrorKind::Internal,
                            "worker panicked while executing this request; worker respawned",
                        ));
                        self.count_outcome(&outcome);
                        out.push(dead.seq, render_response(&dead.id, &outcome));
                    }
                }
            }
        }
    }

    /// The worker loop proper: pop, execute, deposit. Runs under the
    /// supervisor's `catch_unwind`; everything it claims is recorded in
    /// `slot` *before* any fallible execution, so a panic anywhere in
    /// here leaves the supervisor enough to answer the request.
    fn worker_body(&self, queue: &WorkQueue, out: &OutBuffer, slot: &WorkerSlot) {
        while let Some(item) = queue.pop() {
            slot.set(InFlight {
                seq: item.seq,
                id: item.request.id.clone(),
            });
            let outcome = self.item_outcome(&item, out);
            self.count_outcome(&outcome);
            out.push(item.seq, render_response(&item.request.id, &outcome));
            slot.clear();
        }
    }

    /// Executes one admitted work item: in-queue deadline check, stats
    /// barrier, fault hook, then the job itself (with cooperative
    /// checkpoints when a deadline is set).
    fn item_outcome(&self, item: &WorkItem, out: &OutBuffer) -> Result<OkBody, ServiceError> {
        if item
            .deadline_at
            .is_some_and(|at| self.clock.now_nanos() > at)
        {
            return Err(self.queue_expired());
        }
        if matches!(item.request.job, Ok(JobSpec::Stats)) {
            // Serialize against everything earlier (the reader gates
            // everything later).
            out.wait_written_below(item.seq);
        }
        if let Some(hook) = &self.fault_hook {
            hook(item.seq);
        }
        self.outcome(&item.request, item.deadline_at)
    }

    /// Binds a unix listener at `path` (replacing a stale socket file
    /// from a previous run) and switches it to the nonblocking mode
    /// [`Service::serve_listener`] expects. Split out from
    /// [`Service::serve_unix`] so the binary can give bind failures —
    /// bad directory, permissions, an address in use — their own exit
    /// code, distinct from runtime serve errors.
    ///
    /// # Errors
    ///
    /// Propagates stale-socket removal and bind/configure failures.
    #[cfg(unix)]
    pub fn bind_unix(path: &std::path::Path) -> std::io::Result<std::os::unix::net::UnixListener> {
        // A stale socket file from a previous run would fail the bind.
        match std::fs::remove_file(path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        Ok(listener)
    }

    /// Binds `path` and serves unix-socket connections until one of
    /// them carries a `shutdown` job. Each connection gets the full
    /// [`Service::serve`] treatment (its own worker pool) against the
    /// shared store and fleet recorder; connections run concurrently.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept failures. Per-connection I/O errors
    /// (clients vanishing mid-stream) end that connection only.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &std::path::Path) -> std::io::Result<u64> {
        let listener = Self::bind_unix(path)?;
        self.serve_listener(listener, path)
    }

    /// The accept loop behind [`Service::serve_unix`], on an
    /// already-bound nonblocking listener.
    ///
    /// Transient accept errors (`EINTR`, `EMFILE`/`ENFILE` descriptor
    /// exhaustion, aborted handshakes) are retried on a bounded
    /// exponential backoff through the injected sleeper instead of
    /// killing the server; the retry budget resets on every successful
    /// accept, so only a *persistent* fault propagates. Accepted
    /// connections get the configured write timeout, so a client that
    /// stops reading stalls only its own connection.
    ///
    /// # Errors
    ///
    /// Propagates persistent accept failures (transient budget
    /// exhausted) and non-transient accept errors.
    #[cfg(unix)]
    pub fn serve_listener(
        &self,
        listener: std::os::unix::net::UnixListener,
        path: &std::path::Path,
    ) -> std::io::Result<u64> {
        use leakage_obs::Recorder as _;
        let stop = std::sync::atomic::AtomicBool::new(false);
        let connections = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| -> std::io::Result<()> {
            let mut backoff = AcceptBackoff::new();
            loop {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        backoff.reset();
                        connections.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        self.fleet.add("service.connections", 1);
                        let stop = &stop;
                        let write_timeout = self.config.write_timeout_ms;
                        scope.spawn(move || {
                            stream.set_nonblocking(false).ok();
                            if let Some(ms) = write_timeout {
                                stream
                                    .set_write_timeout(Some(std::time::Duration::from_millis(
                                        ms.max(1),
                                    )))
                                    .ok();
                            }
                            let writer = match stream.try_clone() {
                                Ok(w) => w,
                                Err(_) => return,
                            };
                            let reader = std::io::BufReader::new(stream);
                            if let Ok(summary) = self.serve(reader, writer) {
                                if summary.shutdown {
                                    stop.store(true, std::sync::atomic::Ordering::SeqCst);
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if stop.load(std::sync::atomic::Ordering::SeqCst) {
                            break;
                        }
                        self.sleeper.sleep_ms(ACCEPT_POLL_MS);
                    }
                    Err(e) if is_transient_accept_error(&e) => {
                        let Some(delay_ms) = backoff.next_delay_ms() else {
                            return Err(e);
                        };
                        self.fleet.add("service.accept.retries", 1);
                        self.sleeper.sleep_ms(delay_ms);
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })?;
        std::fs::remove_file(path).ok();
        Ok(connections.load(std::sync::atomic::Ordering::SeqCst))
    }
}

// ---- accept-loop hardening ---------------------------------------------

/// Idle-poll interval for the nonblocking accept loop.
#[cfg(unix)]
const ACCEPT_POLL_MS: u64 = 10;

/// Injected sleep, so tests can pin the accept loop's deterministic
/// backoff schedule without waiting it out.
pub trait Sleeper: Sync {
    /// Sleeps for `ms` milliseconds (or records the request, in tests).
    fn sleep_ms(&self, ms: u64);
}

/// The production sleeper: `std::thread::sleep`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Bounded exponential backoff for transient accept errors: 1, 2, 4,
/// 8, 16, 32 ms, then give up. Pure state machine (the sleeping is the
/// caller's), so the schedule is unit-testable and deterministic.
#[derive(Debug, Default)]
struct AcceptBackoff {
    attempts: u32,
}

impl AcceptBackoff {
    const MAX_ATTEMPTS: u32 = 6;

    fn new() -> AcceptBackoff {
        AcceptBackoff { attempts: 0 }
    }

    /// A successful accept proves the fault cleared.
    fn reset(&mut self) {
        self.attempts = 0;
    }

    /// The next delay to sleep before retrying, or `None` once the
    /// budget is spent and the error should propagate.
    fn next_delay_ms(&mut self) -> Option<u64> {
        if self.attempts >= Self::MAX_ATTEMPTS {
            return None;
        }
        let delay = 1u64 << self.attempts;
        self.attempts += 1;
        Some(delay)
    }
}

/// Accept errors worth retrying: interrupted syscalls, descriptor
/// exhaustion (`EMFILE`/`ENFILE` — some *other* connection may close),
/// and handshakes the peer aborted before we got to them.
fn is_transient_accept_error(e: &std::io::Error) -> bool {
    if e.kind() == std::io::ErrorKind::Interrupted {
        return true;
    }
    // EMFILE=24, ENFILE=23, ECONNABORTED=103 (Linux); no stable
    // `io::ErrorKind` exists for the first two.
    matches!(e.raw_os_error(), Some(23 | 24 | 103))
}

// ---- work queue --------------------------------------------------------

struct WorkItem {
    seq: u64,
    request: Request,
    /// Absolute expiry in clock nanoseconds, stamped at admission.
    deadline_at: Option<u64>,
}

/// What the reader's enqueue attempt came to.
enum Admission {
    /// Queued; `depth` is the occupancy right after the push (the
    /// reader tracks the high-water mark from it without re-locking).
    Admitted { depth: usize },
    /// Bounced off the cap: the item comes back so the caller can
    /// answer it with a typed `overloaded` error — shedding never
    /// silently drops.
    Shed(WorkItem),
}

struct WorkQueue {
    state: Mutex<(VecDeque<WorkItem>, bool)>,
    ready: Condvar,
    /// Admission bound on queued items; `None` admits everything.
    cap: Option<usize>,
}

impl WorkQueue {
    fn new(cap: Option<usize>) -> WorkQueue {
        WorkQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Enqueues `item`, or sheds it when the queue is at capacity.
    /// `force` bypasses the cap (used for `shutdown`, which must reach
    /// a worker no matter how saturated the queue is).
    fn push(&self, item: WorkItem, force: bool) -> Admission {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !force {
            if let Some(cap) = self.cap {
                if state.0.len() >= cap.max(1) {
                    return Admission::Shed(item);
                }
            }
        }
        state.0.push_back(item);
        let depth = state.0.len();
        drop(state);
        self.ready.notify_one();
        Admission::Admitted { depth }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.1 = true;
        drop(state);
        self.ready.notify_all();
    }

    fn pop(&self) -> Option<WorkItem> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.0.pop_front() {
                return Some(item);
            }
            if state.1 {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

// ---- worker supervision ------------------------------------------------

/// The request a worker seat is currently executing, recorded before
/// any fallible work so the supervisor can answer it after a crash.
struct InFlight {
    seq: u64,
    id: crate::json::Json,
}

/// One worker seat's in-flight register. A plain mutexed `Option`: the
/// worker sets/clears it, and only after the worker body has unwound
/// (so never concurrently) the supervisor takes it.
struct WorkerSlot {
    current: Mutex<Option<InFlight>>,
}

impl WorkerSlot {
    fn new() -> WorkerSlot {
        WorkerSlot {
            current: Mutex::new(None),
        }
    }

    fn set(&self, inflight: InFlight) {
        let mut current = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        *current = Some(inflight);
    }

    fn clear(&self) {
        let mut current = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        *current = None;
    }

    fn take(&self) -> Option<InFlight> {
        let mut current = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        current.take()
    }
}

// ---- in-order output buffer --------------------------------------------

struct OutState {
    pending: BTreeMap<u64, String>,
    next_seq: u64,
    total: Option<u64>,
    write_error: Option<std::io::Error>,
}

struct OutBuffer {
    state: Mutex<OutState>,
    changed: Condvar,
}

impl OutBuffer {
    fn new() -> OutBuffer {
        OutBuffer {
            state: Mutex::new(OutState {
                pending: BTreeMap::new(),
                next_seq: 0,
                total: None,
                write_error: None,
            }),
            changed: Condvar::new(),
        }
    }

    fn push(&self, seq: u64, response: String) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.pending.insert(seq, response);
        drop(state);
        self.changed.notify_all();
    }

    fn set_total(&self, total: u64) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.total = Some(total);
        drop(state);
        self.changed.notify_all();
    }

    /// Blocks until every response with `seq < bound` has been written.
    fn wait_written_below(&self, bound: u64) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while state.next_seq < bound {
            state = self
                .changed
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The writer-thread body: emit responses strictly in seq order
    /// until `total` says the stream is complete. On a write failure
    /// the error is parked and draining continues (dropping bytes), so
    /// workers and barriers never deadlock on a dead client.
    fn write_all<W: Write>(&self, mut writer: W) {
        loop {
            let (line, seq) = {
                let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    let next = state.next_seq;
                    if let Some(line) = state.pending.remove(&next) {
                        break (line, next);
                    }
                    if let Some(total) = state.total {
                        if state.next_seq >= total {
                            return;
                        }
                    }
                    state = self
                        .changed
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let result = writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush());
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            if let Err(e) = result {
                if state.write_error.is_none() {
                    state.write_error = Some(e);
                }
            }
            state.next_seq = seq + 1;
            drop(state);
            self.changed.notify_all();
        }
    }

    fn take_write_error(&self) -> Option<std::io::Error> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.write_error.take()
    }
}

// ---- line reading ------------------------------------------------------

fn line_is_blank(line: &[u8]) -> bool {
    line.iter().all(|b| b.is_ascii_whitespace())
}

/// Turns raw line bytes into a request, handling the two pre-parse
/// failure modes (oversized marker, invalid UTF-8) with typed errors.
/// Public so the boundary proptests can pin the byte-cap → `oversized`
/// mapping directly; production callers are the serve loop only.
pub fn parse_or_reject(line: &[u8], max_line_bytes: usize) -> Request {
    if line.len() > max_line_bytes {
        return Request::failed(ServiceError::new(
            ErrorKind::Oversized,
            format!("request line exceeds {max_line_bytes} bytes"),
        ));
    }
    match std::str::from_utf8(line) {
        Ok(text) => crate::protocol::parse_request(text),
        Err(_) => Request::failed(ServiceError::new(
            ErrorKind::Parse,
            "request line is not valid UTF-8",
        )),
    }
}

/// Reads one `\n`-terminated line, capping memory at `limit` bytes.
/// Oversized lines are consumed (so the stream stays aligned) and
/// returned as a sentinel vector longer than `limit` — only the first
/// byte is kept, the rest is synthetic padding length. Public so the
/// boundary proptests can drive the cap edge cases directly.
pub fn read_line_limited<R: BufRead>(
    reader: &mut R,
    limit: usize,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut dropped: usize = 0;
    loop {
        let available = match reader.fill_buf() {
            Ok(a) => a,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            // EOF: a final unterminated line still counts as a line.
            if buf.is_empty() && dropped == 0 {
                return Ok(None);
            }
            break;
        }
        let newline = available.iter().position(|b| *b == b'\n');
        let take = newline.unwrap_or(available.len());
        if dropped == 0 && buf.len() + take <= limit {
            buf.extend_from_slice(available.get(..take).unwrap_or(&[]));
        } else {
            dropped += take.saturating_sub(buf.len().min(take));
            // Past the limit: stop buffering, keep consuming to the
            // newline so the next request parses cleanly.
            dropped += buf.len();
            buf.clear();
            dropped += 1;
        }
        let consumed = newline.map_or(take, |i| i + 1);
        reader.consume(consumed);
        if newline.is_some() {
            break;
        }
    }
    if dropped > 0 {
        // Sentinel: longer than `limit`, content irrelevant.
        return Ok(Some(vec![b'!'; limit + 1]));
    }
    Ok(Some(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_text(service: &Service, input: &str) -> (String, ServeSummary) {
        let mut out: Vec<u8> = Vec::new();
        let summary = service
            .serve(std::io::BufReader::new(input.as_bytes()), &mut out)
            .expect("serve");
        (String::from_utf8(out).expect("utf8 responses"), summary)
    }

    #[test]
    fn ping_roundtrip_and_eof() {
        let service = Service::new(ServiceConfig::default());
        let (out, summary) =
            serve_text(&service, "{\"v\":1,\"id\":1,\"job\":{\"kind\":\"ping\"}}\n");
        assert_eq!(
            out,
            "{\"v\":1,\"id\":1,\"ok\":{\"kind\":\"pong\",\"protocol\":1}}\n"
        );
        assert_eq!(
            summary,
            ServeSummary {
                requests: 1,
                shutdown: false,
                shed: 0
            }
        );
    }

    #[test]
    fn shutdown_stops_reading() {
        let service = Service::new(ServiceConfig::default());
        let input =
            "{\"v\":1,\"job\":{\"kind\":\"shutdown\"}}\n{\"v\":1,\"job\":{\"kind\":\"ping\"}}\n";
        let (out, summary) = serve_text(&service, input);
        assert_eq!(out.lines().count(), 1, "nothing after shutdown is answered");
        assert!(summary.shutdown);
        assert_eq!(summary.requests, 1);
    }

    #[test]
    fn blank_lines_are_ignored() {
        let service = Service::new(ServiceConfig::default());
        let (out, summary) =
            serve_text(&service, "\n  \n{\"v\":1,\"job\":{\"kind\":\"ping\"}}\n\n");
        assert_eq!(out.lines().count(), 1);
        assert_eq!(summary.requests, 1);
    }

    #[test]
    fn bad_lines_get_in_order_error_responses() {
        let service = Service::new(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        });
        let input = "{broken\n{\"v\":1,\"id\":2,\"job\":{\"kind\":\"ping\"}}\n";
        let (out, _) = serve_text(&service, input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines
            .first()
            .is_some_and(|l| l.contains("\"kind\":\"parse\"")));
        assert!(lines
            .get(1)
            .is_some_and(|l| l.contains("\"kind\":\"pong\"")));
    }

    #[test]
    fn oversized_lines_are_rejected_and_skipped() {
        let service = Service::new(ServiceConfig {
            max_line_bytes: 64,
            ..ServiceConfig::default()
        });
        let big = format!(
            "{{\"v\":1,\"job\":{{\"kind\":\"ping\",\"pad\":\"{}\"}}}}\n",
            "x".repeat(500)
        );
        let input = format!("{big}{{\"v\":1,\"job\":{{\"kind\":\"ping\"}}}}\n");
        let (out, _) = serve_text(&service, &input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines
            .first()
            .is_some_and(|l| l.contains("\"kind\":\"oversized\"")));
        assert!(lines
            .get(1)
            .is_some_and(|l| l.contains("\"kind\":\"pong\"")));
    }

    #[test]
    fn unterminated_final_line_is_served() {
        let service = Service::new(ServiceConfig::default());
        let (out, _) = serve_text(&service, "{\"v\":1,\"job\":{\"kind\":\"ping\"}}");
        assert!(out.contains("\"pong\""));
    }

    #[test]
    fn stats_sees_exactly_its_prefix() {
        let service = Service::new(ServiceConfig {
            workers: 8,
            ..ServiceConfig::default()
        });
        let input = "{\"v\":1,\"job\":{\"kind\":\"ping\"}}\n{\"v\":1,\"job\":{\"kind\":\"stats\"}}\n{\"v\":1,\"job\":{\"kind\":\"ping\"}}\n";
        let (out, _) = serve_text(&service, input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        let stats_line = lines.get(1).copied().unwrap_or("");
        // Prefix: 2 requests counted (ping + stats itself), 1 ok
        // response written.
        assert!(
            stats_line.contains("\"service.requests\":2"),
            "{stats_line}"
        );
        assert!(
            stats_line.contains("\"service.responses.ok\":1"),
            "{stats_line}"
        );
    }

    #[test]
    fn worker_count_never_changes_a_byte() {
        let input: String = (0..40)
            .map(|i| {
                if i % 7 == 3 {
                    format!("{{\"v\":1,\"id\":{i},\"job\":{{\"kind\":\"nope\"}}}}\n")
                } else {
                    format!("{{\"v\":1,\"id\":{i},\"job\":{{\"kind\":\"ping\"}}}}\n")
                }
            })
            .collect();
        let mut streams = Vec::new();
        for workers in [1usize, 2, 8] {
            let service = Service::new(ServiceConfig {
                workers,
                ..ServiceConfig::default()
            });
            let (out, _) = serve_text(&service, &input);
            streams.push(out);
        }
        assert_eq!(streams.first(), streams.get(1));
        assert_eq!(streams.first(), streams.get(2));
    }

    // A scripted input stream: lines interleaved with gates the test
    // releases (or that release on EOF), so admission-control tests can
    // force the exact queue occupancy the reader sees at each push.
    enum Step {
        Line(&'static str),
        WaitFor(std::sync::Arc<std::sync::atomic::AtomicBool>),
    }

    struct ScriptedReader {
        steps: std::collections::VecDeque<Step>,
        buf: Vec<u8>,
        pos: usize,
        on_eof: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl std::io::Read for ScriptedReader {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let n = {
                let available = self.fill_buf()?;
                let n = available.len().min(out.len());
                out.get_mut(..n)
                    .unwrap_or(&mut [])
                    .copy_from_slice(available.get(..n).unwrap_or(&[]));
                n
            };
            self.consume(n);
            Ok(n)
        }
    }

    impl BufRead for ScriptedReader {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            use std::sync::atomic::Ordering;
            while self.pos >= self.buf.len() {
                match self.steps.pop_front() {
                    Some(Step::Line(text)) => {
                        self.buf = format!("{text}\n").into_bytes();
                        self.pos = 0;
                    }
                    Some(Step::WaitFor(flag)) => {
                        while !flag.load(Ordering::SeqCst) {
                            std::thread::yield_now();
                        }
                    }
                    None => {
                        self.on_eof.store(true, Ordering::SeqCst);
                        return Ok(&[]);
                    }
                }
            }
            Ok(self.buf.get(self.pos..).unwrap_or(&[]))
        }

        fn consume(&mut self, amt: usize) {
            self.pos += amt;
        }
    }

    #[test]
    fn full_queue_sheds_with_typed_overloaded_at_the_right_seqs() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let entered = Arc::new(AtomicBool::new(false));
        let released = Arc::new(AtomicBool::new(false));
        let service = Service::new(ServiceConfig {
            workers: 1,
            queue_cap: Some(2),
            ..ServiceConfig::default()
        })
        .with_fault_hook({
            let entered = Arc::clone(&entered);
            let released = Arc::clone(&released);
            Arc::new(move |seq| {
                if seq == 0 {
                    entered.store(true, Ordering::SeqCst);
                }
                // Hold the lone worker until the reader hits EOF, so
                // pushes 1..=4 land against a worker that cannot drain.
                while !released.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            })
        });
        let ping = |i: u64| -> &'static str {
            // Static request lines keep the script 'static; ids 0..=4.
            [
                "{\"v\":1,\"id\":0,\"job\":{\"kind\":\"ping\"}}",
                "{\"v\":1,\"id\":1,\"job\":{\"kind\":\"ping\"}}",
                "{\"v\":1,\"id\":2,\"job\":{\"kind\":\"ping\"}}",
                "{\"v\":1,\"id\":3,\"job\":{\"kind\":\"ping\"}}",
                "{\"v\":1,\"id\":4,\"job\":{\"kind\":\"ping\"}}",
            ][i as usize]
        };
        let reader = ScriptedReader {
            steps: [
                Step::Line(ping(0)),
                // Only continue once the worker holds seq 0 (popped,
                // out of the queue): occupancy is now exactly 0.
                Step::WaitFor(Arc::clone(&entered)),
                Step::Line(ping(1)), // depth 1
                Step::Line(ping(2)), // depth 2 = cap
                Step::Line(ping(3)), // shed
                Step::Line(ping(4)), // shed
            ]
            .into_iter()
            .collect(),
            buf: Vec::new(),
            pos: 0,
            on_eof: Arc::clone(&released),
        };
        let mut out: Vec<u8> = Vec::new();
        let summary = service.serve(reader, &mut out).expect("serve");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(summary.requests, 5);
        assert_eq!(summary.shed, 2, "pushes past the cap shed, exactly");
        assert_eq!(lines.len(), 5, "shed requests still get responses");
        for (i, line) in lines.iter().enumerate() {
            let expect_shed = i >= 3;
            assert_eq!(
                line.contains("\"kind\":\"overloaded\""),
                expect_shed,
                "line {i}: {line}"
            );
            assert!(
                line.contains(&format!("\"id\":{i}")),
                "responses stay in seq order: {line}"
            );
        }
        let counters = service.fleet_snapshot().counters;
        assert_eq!(counters.get("service.shed.overload"), Some(&2));
        assert_eq!(
            counters.get("service.queue.depth"),
            Some(&2),
            "high-water mark equals the cap the reader filled to"
        );
    }

    #[test]
    fn zero_deadline_expires_in_queue_with_identical_bytes_at_any_worker_count() {
        use leakage_obs::FakeClock;
        let input = "{\"v\":1,\"id\":0,\"deadline_ms\":0,\"job\":{\"kind\":\"ping\"}}\n\
                     {\"v\":1,\"id\":1,\"job\":{\"kind\":\"ping\"}}\n\
                     {\"v\":1,\"id\":2,\"deadline_ms\":3600000,\"job\":{\"kind\":\"ping\"}}\n";
        let mut streams = Vec::new();
        for workers in [1usize, 4] {
            let service = Service::new(ServiceConfig {
                workers,
                ..ServiceConfig::default()
            })
            .with_clock(std::sync::Arc::new(FakeClock::new(1)));
            let (out, _) = serve_text(&service, input);
            streams.push(out);
        }
        let out = streams.first().cloned().unwrap_or_default();
        let lines: Vec<&str> = out.lines().collect();
        assert!(
            lines
                .first()
                .is_some_and(|l| l.contains("\"kind\":\"deadline_exceeded\"")
                    && l.contains("before execution started")),
            "{lines:?}"
        );
        assert!(lines
            .get(1)
            .is_some_and(|l| l.contains("\"kind\":\"pong\"")));
        assert!(
            lines
                .get(2)
                .is_some_and(|l| l.contains("\"kind\":\"pong\"")),
            "a generous deadline does not fire: {lines:?}"
        );
        assert_eq!(streams.first(), streams.get(1));
    }

    #[test]
    fn null_clock_never_expires_even_a_zero_deadline() {
        let service = Service::new(ServiceConfig::default());
        let (out, _) = serve_text(
            &service,
            "{\"v\":1,\"deadline_ms\":0,\"job\":{\"kind\":\"ping\"}}\n",
        );
        assert!(out.contains("\"pong\""), "{out}");
    }

    #[test]
    fn worker_panic_answers_internal_and_the_fleet_survives() {
        let mut streams = Vec::new();
        for workers in [1usize, 2] {
            let service = Service::new(ServiceConfig {
                workers,
                ..ServiceConfig::default()
            })
            .with_fault_hook(std::sync::Arc::new(|seq| {
                if seq == 1 {
                    panic!("injected worker crash at seq 1");
                }
            }));
            let input: String = (0..4)
                .map(|i| format!("{{\"v\":1,\"id\":{i},\"job\":{{\"kind\":\"ping\"}}}}\n"))
                .collect();
            let (out, summary) = serve_text(&service, &input);
            assert_eq!(summary.requests, 4, "serve survives the crash");
            let lines: Vec<&str> = out.lines().collect();
            assert_eq!(lines.len(), 4, "every request is answered exactly once");
            for (i, line) in lines.iter().enumerate() {
                if i == 1 {
                    assert!(line.contains("\"kind\":\"internal\""), "{line}");
                    assert!(line.contains("worker respawned"), "{line}");
                } else {
                    assert!(line.contains("\"kind\":\"pong\""), "{line}");
                }
            }
            let counters = service.fleet_snapshot().counters;
            assert_eq!(counters.get("service.supervisor.respawns"), Some(&1));
            assert_eq!(counters.get("service.responses.ok"), Some(&3));
            assert_eq!(counters.get("service.responses.err"), Some(&1));
            streams.push(out);
        }
        assert_eq!(
            streams.first(),
            streams.get(1),
            "crash responses are byte-identical across worker counts"
        );
    }

    #[test]
    fn accept_backoff_schedule_is_bounded_and_resets() {
        let mut b = AcceptBackoff::new();
        let schedule: Vec<Option<u64>> = (0..7).map(|_| b.next_delay_ms()).collect();
        assert_eq!(
            schedule,
            vec![Some(1), Some(2), Some(4), Some(8), Some(16), Some(32), None]
        );
        b.reset();
        assert_eq!(b.next_delay_ms(), Some(1), "success resets the budget");
    }

    #[test]
    fn transient_accept_errors_are_classified() {
        use std::io::{Error, ErrorKind as IoKind};
        assert!(is_transient_accept_error(&Error::from(IoKind::Interrupted)));
        for errno in [23, 24, 103] {
            assert!(is_transient_accept_error(&Error::from_raw_os_error(errno)));
        }
        assert!(!is_transient_accept_error(&Error::from(
            IoKind::PermissionDenied
        )));
        assert!(!is_transient_accept_error(&Error::from_raw_os_error(13)));
    }

    #[test]
    fn handle_line_matches_serve() {
        let service = Service::new(ServiceConfig::default());
        let line = "{\"v\":1,\"id\":\"x\",\"job\":{\"kind\":\"ping\"}}";
        let (resp, shutdown) = service.handle_line(line);
        assert!(!shutdown);
        let oracle = Service::new(ServiceConfig::default());
        let (out, _) = serve_text(&oracle, &format!("{line}\n"));
        assert_eq!(format!("{resp}\n"), out);
    }
}

// The queue and reorder buffer are private, so their model checks live
// here rather than in `tests/loom_store.rs`. The `test` half of the cfg
// keeps these fns out of the lint call graph (test code is exempt from
// the library rules); the `loom` half swaps the primitives above for
// the scheduler-mediated shims.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use loom::sync::atomic::{AtomicUsize, Ordering};
    use loom::sync::Arc;
    use loom::thread;

    fn item(seq: u64) -> WorkItem {
        WorkItem {
            seq,
            request: Request {
                id: crate::json::Json::Null,
                job: Ok(JobSpec::Ping),
                deadline_ms: None,
            },
            deadline_at: None,
        }
    }

    #[test]
    fn out_buffer_emits_in_seq_order_from_any_handoff_order() {
        loom::model(|| {
            let buf = Arc::new(OutBuffer::new());
            let writer = {
                let buf = Arc::clone(&buf);
                thread::spawn(move || {
                    let mut out = Vec::new();
                    buf.write_all(&mut out);
                    out
                })
            };
            // Worker 2 hands off seq 1 concurrently with the reader
            // thread (here: the model root) handing off seq 0 and
            // announcing the total. The writer must emit seq order on
            // every schedule, never handoff order.
            let racer = {
                let buf = Arc::clone(&buf);
                thread::spawn(move || buf.push(1, "second".to_string()))
            };
            buf.push(0, "first".to_string());
            buf.set_total(2);
            racer.join().expect("racing pusher");
            let out = writer.join().expect("writer");
            assert_eq!(out.as_slice(), b"first\nsecond\n");
        });
    }

    #[test]
    fn work_queue_delivers_each_item_exactly_once_then_drains() {
        loom::model(|| {
            let q = Arc::new(WorkQueue::new(None));
            let seen = Arc::new(AtomicUsize::new(0));
            let worker = |q: &Arc<WorkQueue>| {
                let q = Arc::clone(q);
                let seen = Arc::clone(&seen);
                thread::spawn(move || {
                    while let Some(it) = q.pop() {
                        let bit = 1usize << it.seq;
                        let prev = seen.fetch_or(bit, Ordering::SeqCst);
                        assert_eq!(prev & bit, 0, "item {} delivered twice", it.seq);
                    }
                })
            };
            let w1 = worker(&q);
            let w2 = worker(&q);
            assert!(matches!(q.push(item(0), false), Admission::Admitted { .. }));
            assert!(matches!(q.push(item(1), false), Admission::Admitted { .. }));
            q.close();
            w1.join().expect("worker 1");
            w2.join().expect("worker 2");
            // Both items were delivered (exactly once, per the assert
            // above) and close() woke every blocked popper.
            assert_eq!(seen.load(Ordering::SeqCst), 0b11);
        });
    }

    /// Shed-exactly-once: with a cap of 1 and a worker draining
    /// concurrently, every push either admits or sheds (returning the
    /// item), admitted + shed covers all pushes, and each admitted item
    /// is delivered to the worker exactly once. Which pushes shed is
    /// schedule-dependent; the accounting identity never is.
    #[test]
    fn bounded_queue_sheds_exactly_the_overflow_and_delivers_the_rest() {
        loom::Builder {
            preemption_bound: Some(2),
            max_iterations: 500_000,
            spurious_budget: 1,
        }
        .check(|| {
            let q = Arc::new(WorkQueue::new(Some(1)));
            let seen = Arc::new(AtomicUsize::new(0));
            let worker = {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                thread::spawn(move || {
                    while let Some(it) = q.pop() {
                        let bit = 1usize << it.seq;
                        let prev = seen.fetch_or(bit, Ordering::SeqCst);
                        assert_eq!(prev & bit, 0, "item {} delivered twice", it.seq);
                    }
                })
            };
            let mut admitted = 0usize;
            let mut shed_seqs = 0usize;
            for seq in 0..3u64 {
                match q.push(item(seq), false) {
                    Admission::Admitted { depth } => {
                        assert!((1..=1).contains(&depth), "cap 1 bounds the depth");
                        admitted += 1;
                    }
                    Admission::Shed(it) => {
                        assert_eq!(it.seq, seq, "the shed item comes back intact");
                        shed_seqs |= 1 << it.seq;
                    }
                }
            }
            q.close();
            worker.join().expect("worker");
            let delivered = seen.load(Ordering::SeqCst);
            assert_eq!(
                admitted + shed_seqs.count_ones() as usize,
                3,
                "every push is accounted for: admitted or shed, never dropped"
            );
            assert_eq!(
                delivered.count_ones() as usize,
                admitted,
                "exactly the admitted items reach a worker"
            );
            assert_eq!(
                delivered & shed_seqs,
                0,
                "no item is both shed and delivered"
            );
        });
    }

    /// Respawn-preserves-order: a worker seat dies holding seq 0 while
    /// a survivor deposits seq 1. The supervisor answers the dead seat's
    /// request from its in-flight slot; on every schedule the writer
    /// still emits seq order, gaplessly.
    #[test]
    fn crashed_worker_recovery_keeps_seq_order() {
        loom::model(|| {
            let out = Arc::new(OutBuffer::new());
            let slot = Arc::new(WorkerSlot::new());
            // The doomed worker claimed seq 0 before dying; the model
            // starts at the instant after the unwind.
            slot.set(InFlight {
                seq: 0,
                id: crate::json::Json::Null,
            });
            let writer = {
                let out = Arc::clone(&out);
                thread::spawn(move || {
                    let mut bytes = Vec::new();
                    out.write_all(&mut bytes);
                    bytes
                })
            };
            let survivor = {
                let out = Arc::clone(&out);
                thread::spawn(move || out.push(1, "ok1".to_string()))
            };
            // Supervisor role (model root): answer the in-flight
            // request at its original seq, then finalize.
            if let Some(dead) = slot.take() {
                out.push(dead.seq, "err0".to_string());
            }
            out.set_total(2);
            survivor.join().expect("survivor");
            let bytes = writer.join().expect("writer");
            assert_eq!(bytes.as_slice(), b"err0\nok1\n");
        });
    }

    /// Drain-terminates: close + set_total lets every role exit on
    /// every schedule. loomlite's deadlock detection fails the model if
    /// any interleaving leaves a thread parked forever.
    #[test]
    fn close_then_drain_terminates_every_role() {
        loom::Builder {
            preemption_bound: Some(2),
            max_iterations: 500_000,
            spurious_budget: 1,
        }
        .check(|| {
            let q = Arc::new(WorkQueue::new(Some(2)));
            let out = Arc::new(OutBuffer::new());
            let worker = {
                let q = Arc::clone(&q);
                let out = Arc::clone(&out);
                thread::spawn(move || {
                    while let Some(it) = q.pop() {
                        out.push(it.seq, format!("r{}", it.seq));
                    }
                })
            };
            let writer = {
                let out = Arc::clone(&out);
                thread::spawn(move || {
                    let mut bytes = Vec::new();
                    out.write_all(&mut bytes);
                    bytes
                })
            };
            for seq in 0..2u64 {
                assert!(matches!(
                    q.push(item(seq), false),
                    Admission::Admitted { .. }
                ));
            }
            q.close();
            out.set_total(2);
            worker.join().expect("worker");
            let bytes = writer.join().expect("writer");
            assert_eq!(bytes.as_slice(), b"r0\nr1\n");
        });
    }
}
