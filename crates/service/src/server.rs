//! The `chipleakd` server loop: NDJSON in, NDJSON out, responses in
//! request order regardless of worker count.
//!
//! ## Architecture
//!
//! [`Service::serve`] runs three roles inside one scoped-thread block:
//!
//! - the **reader** (calling thread) pulls size-capped lines, parses
//!   them (parse/protocol errors become work items too — every line
//!   gets a response), and enqueues `(seq, request)` work;
//! - **workers** (`config.workers` threads) pop work FIFO, execute jobs
//!   against the shared [`ArtifactStore`], and deposit rendered
//!   responses keyed by `seq`;
//! - the **writer** thread emits responses strictly in `seq` order, so
//!   the byte stream out of an 8-worker server equals the 1-worker
//!   stream exactly (pinned by the protocol suite run both ways).
//!
//! A dedicated writer (rather than writing at EOF) keeps interactive
//! clients honest: a socket client that writes one request and waits
//! for its response before the next would deadlock a write-at-the-end
//! design.
//!
//! ## Order-sensitive jobs
//!
//! `stats` snapshots fleet counters, which execution mutates — so the
//! server serializes it: the worker holding a `stats` job waits until
//! every earlier response is written, and the reader stops dispatching
//! until the `stats` response is out. Cheap (stats is rare), and it
//! makes the snapshot a pure function of the request prefix, which is
//! what lets the fault suite pin `stats` responses across 1/2/8
//! workers. `shutdown` stops the reader immediately; queued work
//! drains, responses flush, and [`Service::serve`] returns.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, Write};

// Under `--cfg loom` the queue/buffer primitives are model-checked by
// `mod loom_tests` below; everywhere else they are `std::sync`.
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex, PoisonError};

#[cfg(loom)]
use loom::sync::{Condvar, Mutex, PoisonError};

use leakage_obs::{AggregatingRecorder, MetricsSnapshot};

use crate::error::{ErrorKind, ServiceError};
use crate::exec::{self, ExecContext};
use crate::protocol::{render_response, JobSpec, OkBody, Request};
use crate::store::{ArtifactStore, CacheConfig};

/// Server configuration, fixed at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Job-execution threads per stream (≥ 1). Changes scheduling only:
    /// the response byte stream and the fleet snapshot are identical
    /// for every value.
    pub workers: usize,
    /// Artifact cache policy.
    pub cache: CacheConfig,
    /// Default degradation policy for estimate jobs that carry no
    /// `mode` field (the `--resilient` flag).
    pub resilient_default: bool,
    /// Maximum request-line length in bytes; longer lines get a typed
    /// `oversized` error and are discarded without buffering.
    pub max_line_bytes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            cache: CacheConfig::default(),
            resilient_default: false,
            max_line_bytes: 64 * 1024,
        }
    }
}

/// What a finished [`Service::serve`] call saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines consumed (blank lines excluded).
    pub requests: u64,
    /// `true` when the stream ended on a `shutdown` job rather than EOF.
    pub shutdown: bool,
}

/// The long-running estimation service: one shared artifact store, one
/// fleet recorder, any number of streams served against them.
pub struct Service {
    store: std::sync::Arc<ArtifactStore>,
    fleet: std::sync::Arc<AggregatingRecorder>,
    config: ServiceConfig,
}

impl Service {
    /// Builds a service with its own store and fleet recorder.
    pub fn new(config: ServiceConfig) -> Service {
        Service {
            store: ArtifactStore::new(config.cache),
            fleet: std::sync::Arc::new(AggregatingRecorder::new()),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared artifact store (exposed for tests and the binary).
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// A deterministic snapshot of the fleet-level metrics. Only
    /// counters are ever fed here, so the snapshot is bit-identical
    /// across worker counts once the same requests have completed.
    pub fn fleet_snapshot(&self) -> MetricsSnapshot {
        self.fleet.snapshot()
    }

    fn outcome(&self, request: &Request) -> Result<OkBody, ServiceError> {
        match &request.job {
            Err(e) => Err(e.clone()),
            Ok(JobSpec::Stats) => Ok(OkBody::Stats {
                counters: self.fleet_snapshot().counters,
            }),
            Ok(JobSpec::Shutdown) => Ok(OkBody::ShutdownAck),
            Ok(job) => {
                let ctx = ExecContext {
                    store: &self.store,
                    fleet: self.fleet.as_ref(),
                    resilient_default: self.config.resilient_default,
                };
                exec::execute(&ctx, job)
            }
        }
    }

    fn count_outcome(&self, outcome: &Result<OkBody, ServiceError>) {
        use leakage_obs::Recorder as _;
        match outcome {
            Ok(_) => self.fleet.add("service.responses.ok", 1),
            Err(_) => self.fleet.add("service.responses.err", 1),
        }
    }

    /// Parses and executes one request line synchronously, returning
    /// the rendered response and whether it was a `shutdown`. This is
    /// the single-request building block (and the serial oracle the
    /// concurrency tests compare against).
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        use leakage_obs::Recorder as _;
        self.fleet.add("service.requests", 1);
        let request = parse_or_reject(line.as_bytes(), self.config.max_line_bytes);
        let shutdown = matches!(request.job, Ok(JobSpec::Shutdown));
        let outcome = self.outcome(&request);
        self.count_outcome(&outcome);
        (render_response(&request.id, &outcome), shutdown)
    }

    /// Serves one NDJSON stream until EOF or a `shutdown` job.
    ///
    /// # Errors
    ///
    /// Propagates reader and writer I/O failures; protocol-level
    /// problems never surface here (they become error responses).
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        mut reader: R,
        writer: W,
    ) -> std::io::Result<ServeSummary> {
        use leakage_obs::Recorder as _;
        let workers = self.config.workers.max(1);
        let queue = WorkQueue::new();
        let out = OutBuffer::new();
        let mut summary = ServeSummary {
            requests: 0,
            shutdown: false,
        };
        let mut read_error: Option<std::io::Error> = None;

        std::thread::scope(|scope| {
            let writer_handle = scope.spawn(|| out.write_all(writer));
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(WorkItem { seq, request }) = queue.pop() {
                        if matches!(request.job, Ok(JobSpec::Stats)) {
                            // Serialize against everything earlier (the
                            // reader gates everything later).
                            out.wait_written_below(seq);
                        }
                        let outcome = self.outcome(&request);
                        self.count_outcome(&outcome);
                        out.push(seq, render_response(&request.id, &outcome));
                    }
                });
            }

            // Reader role, on the calling thread.
            let mut seq: u64 = 0;
            loop {
                let line = match read_line_limited(&mut reader, self.config.max_line_bytes) {
                    Ok(l) => l,
                    Err(e) => {
                        read_error = Some(e);
                        break;
                    }
                };
                let Some(line) = line else { break };
                if line_is_blank(&line) {
                    continue;
                }
                self.fleet.add("service.requests", 1);
                let request = parse_or_reject(&line, self.config.max_line_bytes);
                let is_shutdown = matches!(request.job, Ok(JobSpec::Shutdown));
                let is_stats = matches!(request.job, Ok(JobSpec::Stats));
                queue.push(WorkItem { seq, request });
                seq += 1;
                if is_stats {
                    // Nothing after a stats job may execute before its
                    // snapshot is taken: hold the reader until the
                    // response is out.
                    out.wait_written_below(seq);
                }
                if is_shutdown {
                    summary.shutdown = true;
                    break;
                }
            }
            summary.requests = seq;
            queue.close();
            out.set_total(seq);
            // Workers drain and exit; the writer exits once everything
            // is flushed; the scope joins them all.
            drop(writer_handle);
        });

        if let Some(e) = read_error {
            return Err(e);
        }
        out.take_write_error().map_or(Ok(summary), Err)
    }

    /// Binds `path` and serves unix-socket connections until one of
    /// them carries a `shutdown` job. Each connection gets the full
    /// [`Service::serve`] treatment (its own worker pool) against the
    /// shared store and fleet recorder; connections run concurrently.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept failures. Per-connection I/O errors
    /// (clients vanishing mid-stream) end that connection only.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &std::path::Path) -> std::io::Result<u64> {
        use leakage_obs::Recorder as _;
        use std::os::unix::net::UnixListener;
        // A stale socket file from a previous run would fail the bind.
        match std::fs::remove_file(path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let stop = std::sync::atomic::AtomicBool::new(false);
        let connections = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| -> std::io::Result<()> {
            loop {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        connections.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        self.fleet.add("service.connections", 1);
                        let stop = &stop;
                        scope.spawn(move || {
                            stream.set_nonblocking(false).ok();
                            let writer = match stream.try_clone() {
                                Ok(w) => w,
                                Err(_) => return,
                            };
                            let reader = std::io::BufReader::new(stream);
                            if let Ok(summary) = self.serve(reader, writer) {
                                if summary.shutdown {
                                    stop.store(true, std::sync::atomic::Ordering::SeqCst);
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if stop.load(std::sync::atomic::Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })?;
        std::fs::remove_file(path).ok();
        Ok(connections.load(std::sync::atomic::Ordering::SeqCst))
    }
}

// ---- work queue --------------------------------------------------------

struct WorkItem {
    seq: u64,
    request: Request,
}

struct WorkQueue {
    state: Mutex<(VecDeque<WorkItem>, bool)>,
    ready: Condvar,
}

impl WorkQueue {
    fn new() -> WorkQueue {
        WorkQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, item: WorkItem) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.0.push_back(item);
        drop(state);
        self.ready.notify_one();
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.1 = true;
        drop(state);
        self.ready.notify_all();
    }

    fn pop(&self) -> Option<WorkItem> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.0.pop_front() {
                return Some(item);
            }
            if state.1 {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

// ---- in-order output buffer --------------------------------------------

struct OutState {
    pending: BTreeMap<u64, String>,
    next_seq: u64,
    total: Option<u64>,
    write_error: Option<std::io::Error>,
}

struct OutBuffer {
    state: Mutex<OutState>,
    changed: Condvar,
}

impl OutBuffer {
    fn new() -> OutBuffer {
        OutBuffer {
            state: Mutex::new(OutState {
                pending: BTreeMap::new(),
                next_seq: 0,
                total: None,
                write_error: None,
            }),
            changed: Condvar::new(),
        }
    }

    fn push(&self, seq: u64, response: String) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.pending.insert(seq, response);
        drop(state);
        self.changed.notify_all();
    }

    fn set_total(&self, total: u64) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.total = Some(total);
        drop(state);
        self.changed.notify_all();
    }

    /// Blocks until every response with `seq < bound` has been written.
    fn wait_written_below(&self, bound: u64) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while state.next_seq < bound {
            state = self
                .changed
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The writer-thread body: emit responses strictly in seq order
    /// until `total` says the stream is complete. On a write failure
    /// the error is parked and draining continues (dropping bytes), so
    /// workers and barriers never deadlock on a dead client.
    fn write_all<W: Write>(&self, mut writer: W) {
        loop {
            let (line, seq) = {
                let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    let next = state.next_seq;
                    if let Some(line) = state.pending.remove(&next) {
                        break (line, next);
                    }
                    if let Some(total) = state.total {
                        if state.next_seq >= total {
                            return;
                        }
                    }
                    state = self
                        .changed
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            let result = writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush());
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            if let Err(e) = result {
                if state.write_error.is_none() {
                    state.write_error = Some(e);
                }
            }
            state.next_seq = seq + 1;
            drop(state);
            self.changed.notify_all();
        }
    }

    fn take_write_error(&self) -> Option<std::io::Error> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.write_error.take()
    }
}

// ---- line reading ------------------------------------------------------

fn line_is_blank(line: &[u8]) -> bool {
    line.iter().all(|b| b.is_ascii_whitespace())
}

/// Turns raw line bytes into a request, handling the two pre-parse
/// failure modes (oversized marker, invalid UTF-8) with typed errors.
fn parse_or_reject(line: &[u8], max_line_bytes: usize) -> Request {
    if line.len() > max_line_bytes {
        return Request::failed(ServiceError::new(
            ErrorKind::Oversized,
            format!("request line exceeds {max_line_bytes} bytes"),
        ));
    }
    match std::str::from_utf8(line) {
        Ok(text) => crate::protocol::parse_request(text),
        Err(_) => Request::failed(ServiceError::new(
            ErrorKind::Parse,
            "request line is not valid UTF-8",
        )),
    }
}

/// Reads one `\n`-terminated line, capping memory at `limit` bytes.
/// Oversized lines are consumed (so the stream stays aligned) and
/// returned as a sentinel vector longer than `limit` — only the first
/// byte is kept, the rest is synthetic padding length.
fn read_line_limited<R: BufRead>(reader: &mut R, limit: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut dropped: usize = 0;
    loop {
        let available = match reader.fill_buf() {
            Ok(a) => a,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            // EOF: a final unterminated line still counts as a line.
            if buf.is_empty() && dropped == 0 {
                return Ok(None);
            }
            break;
        }
        let newline = available.iter().position(|b| *b == b'\n');
        let take = newline.unwrap_or(available.len());
        if dropped == 0 && buf.len() + take <= limit {
            buf.extend_from_slice(available.get(..take).unwrap_or(&[]));
        } else {
            dropped += take.saturating_sub(buf.len().min(take));
            // Past the limit: stop buffering, keep consuming to the
            // newline so the next request parses cleanly.
            dropped += buf.len();
            buf.clear();
            dropped += 1;
        }
        let consumed = newline.map_or(take, |i| i + 1);
        reader.consume(consumed);
        if newline.is_some() {
            break;
        }
    }
    if dropped > 0 {
        // Sentinel: longer than `limit`, content irrelevant.
        return Ok(Some(vec![b'!'; limit + 1]));
    }
    Ok(Some(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_text(service: &Service, input: &str) -> (String, ServeSummary) {
        let mut out: Vec<u8> = Vec::new();
        let summary = service
            .serve(std::io::BufReader::new(input.as_bytes()), &mut out)
            .expect("serve");
        (String::from_utf8(out).expect("utf8 responses"), summary)
    }

    #[test]
    fn ping_roundtrip_and_eof() {
        let service = Service::new(ServiceConfig::default());
        let (out, summary) =
            serve_text(&service, "{\"v\":1,\"id\":1,\"job\":{\"kind\":\"ping\"}}\n");
        assert_eq!(
            out,
            "{\"v\":1,\"id\":1,\"ok\":{\"kind\":\"pong\",\"protocol\":1}}\n"
        );
        assert_eq!(
            summary,
            ServeSummary {
                requests: 1,
                shutdown: false
            }
        );
    }

    #[test]
    fn shutdown_stops_reading() {
        let service = Service::new(ServiceConfig::default());
        let input =
            "{\"v\":1,\"job\":{\"kind\":\"shutdown\"}}\n{\"v\":1,\"job\":{\"kind\":\"ping\"}}\n";
        let (out, summary) = serve_text(&service, input);
        assert_eq!(out.lines().count(), 1, "nothing after shutdown is answered");
        assert!(summary.shutdown);
        assert_eq!(summary.requests, 1);
    }

    #[test]
    fn blank_lines_are_ignored() {
        let service = Service::new(ServiceConfig::default());
        let (out, summary) =
            serve_text(&service, "\n  \n{\"v\":1,\"job\":{\"kind\":\"ping\"}}\n\n");
        assert_eq!(out.lines().count(), 1);
        assert_eq!(summary.requests, 1);
    }

    #[test]
    fn bad_lines_get_in_order_error_responses() {
        let service = Service::new(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        });
        let input = "{broken\n{\"v\":1,\"id\":2,\"job\":{\"kind\":\"ping\"}}\n";
        let (out, _) = serve_text(&service, input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines
            .first()
            .is_some_and(|l| l.contains("\"kind\":\"parse\"")));
        assert!(lines
            .get(1)
            .is_some_and(|l| l.contains("\"kind\":\"pong\"")));
    }

    #[test]
    fn oversized_lines_are_rejected_and_skipped() {
        let service = Service::new(ServiceConfig {
            max_line_bytes: 64,
            ..ServiceConfig::default()
        });
        let big = format!(
            "{{\"v\":1,\"job\":{{\"kind\":\"ping\",\"pad\":\"{}\"}}}}\n",
            "x".repeat(500)
        );
        let input = format!("{big}{{\"v\":1,\"job\":{{\"kind\":\"ping\"}}}}\n");
        let (out, _) = serve_text(&service, &input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines
            .first()
            .is_some_and(|l| l.contains("\"kind\":\"oversized\"")));
        assert!(lines
            .get(1)
            .is_some_and(|l| l.contains("\"kind\":\"pong\"")));
    }

    #[test]
    fn unterminated_final_line_is_served() {
        let service = Service::new(ServiceConfig::default());
        let (out, _) = serve_text(&service, "{\"v\":1,\"job\":{\"kind\":\"ping\"}}");
        assert!(out.contains("\"pong\""));
    }

    #[test]
    fn stats_sees_exactly_its_prefix() {
        let service = Service::new(ServiceConfig {
            workers: 8,
            ..ServiceConfig::default()
        });
        let input = "{\"v\":1,\"job\":{\"kind\":\"ping\"}}\n{\"v\":1,\"job\":{\"kind\":\"stats\"}}\n{\"v\":1,\"job\":{\"kind\":\"ping\"}}\n";
        let (out, _) = serve_text(&service, input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        let stats_line = lines.get(1).copied().unwrap_or("");
        // Prefix: 2 requests counted (ping + stats itself), 1 ok
        // response written.
        assert!(
            stats_line.contains("\"service.requests\":2"),
            "{stats_line}"
        );
        assert!(
            stats_line.contains("\"service.responses.ok\":1"),
            "{stats_line}"
        );
    }

    #[test]
    fn worker_count_never_changes_a_byte() {
        let input: String = (0..40)
            .map(|i| {
                if i % 7 == 3 {
                    format!("{{\"v\":1,\"id\":{i},\"job\":{{\"kind\":\"nope\"}}}}\n")
                } else {
                    format!("{{\"v\":1,\"id\":{i},\"job\":{{\"kind\":\"ping\"}}}}\n")
                }
            })
            .collect();
        let mut streams = Vec::new();
        for workers in [1usize, 2, 8] {
            let service = Service::new(ServiceConfig {
                workers,
                ..ServiceConfig::default()
            });
            let (out, _) = serve_text(&service, &input);
            streams.push(out);
        }
        assert_eq!(streams.first(), streams.get(1));
        assert_eq!(streams.first(), streams.get(2));
    }

    #[test]
    fn handle_line_matches_serve() {
        let service = Service::new(ServiceConfig::default());
        let line = "{\"v\":1,\"id\":\"x\",\"job\":{\"kind\":\"ping\"}}";
        let (resp, shutdown) = service.handle_line(line);
        assert!(!shutdown);
        let oracle = Service::new(ServiceConfig::default());
        let (out, _) = serve_text(&oracle, &format!("{line}\n"));
        assert_eq!(format!("{resp}\n"), out);
    }
}

// The queue and reorder buffer are private, so their model checks live
// here rather than in `tests/loom_store.rs`. The `test` half of the cfg
// keeps these fns out of the lint call graph (test code is exempt from
// the library rules); the `loom` half swaps the primitives above for
// the scheduler-mediated shims.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use loom::sync::atomic::{AtomicUsize, Ordering};
    use loom::sync::Arc;
    use loom::thread;

    fn item(seq: u64) -> WorkItem {
        WorkItem {
            seq,
            request: Request {
                id: crate::json::Json::Null,
                job: Ok(JobSpec::Ping),
            },
        }
    }

    #[test]
    fn out_buffer_emits_in_seq_order_from_any_handoff_order() {
        loom::model(|| {
            let buf = Arc::new(OutBuffer::new());
            let writer = {
                let buf = Arc::clone(&buf);
                thread::spawn(move || {
                    let mut out = Vec::new();
                    buf.write_all(&mut out);
                    out
                })
            };
            // Worker 2 hands off seq 1 concurrently with the reader
            // thread (here: the model root) handing off seq 0 and
            // announcing the total. The writer must emit seq order on
            // every schedule, never handoff order.
            let racer = {
                let buf = Arc::clone(&buf);
                thread::spawn(move || buf.push(1, "second".to_string()))
            };
            buf.push(0, "first".to_string());
            buf.set_total(2);
            racer.join().expect("racing pusher");
            let out = writer.join().expect("writer");
            assert_eq!(out.as_slice(), b"first\nsecond\n");
        });
    }

    #[test]
    fn work_queue_delivers_each_item_exactly_once_then_drains() {
        loom::model(|| {
            let q = Arc::new(WorkQueue::new());
            let seen = Arc::new(AtomicUsize::new(0));
            let worker = |q: &Arc<WorkQueue>| {
                let q = Arc::clone(q);
                let seen = Arc::clone(&seen);
                thread::spawn(move || {
                    while let Some(it) = q.pop() {
                        let bit = 1usize << it.seq;
                        let prev = seen.fetch_or(bit, Ordering::SeqCst);
                        assert_eq!(prev & bit, 0, "item {} delivered twice", it.seq);
                    }
                })
            };
            let w1 = worker(&q);
            let w2 = worker(&q);
            q.push(item(0));
            q.push(item(1));
            q.close();
            w1.join().expect("worker 1");
            w2.join().expect("worker 2");
            // Both items were delivered (exactly once, per the assert
            // above) and close() woke every blocked popper.
            assert_eq!(seen.load(Ordering::SeqCst), 0b11);
        });
    }
}
