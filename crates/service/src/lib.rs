//! `leakage-service`: the batch estimation job server behind the
//! `chipleakd` binary.
//!
//! A long-running process accepts estimation jobs — (design, process
//! corner, method, thread budget) tuples — as newline-delimited JSON on
//! stdin or a unix socket, and answers each line with exactly one JSON
//! response line, in request order. Expensive artifacts (characterized
//! libraries, Eq. 17 correlation tables, circulant FFT plans) live in a
//! shared content-addressed [`store::ArtifactStore`], so a fleet of
//! clients pays for characterization once.
//!
//! Everything here is pinned by determinism tests: the response byte
//! stream is identical across worker counts, cache on/off, and request
//! reordering of independent jobs; fleet metrics snapshots are pure
//! functions of the request prefix. See DESIGN.md §14 for the protocol
//! grammar and the determinism discipline that makes this hold.
//!
//! Layering:
//!
//! - [`json`] — serde-free JSON value model, strict parser, and the
//!   canonical float wire format;
//! - [`keys`] — FNV-1a content-addressed artifact keys;
//! - [`protocol`] — request/response schema: parsing into [`protocol::JobSpec`],
//!   rendering of [`protocol::OkBody`] / [`error::ServiceError`];
//! - [`store`] — single-flight cache families with deterministic
//!   hit/miss/eviction counters;
//! - [`exec`] — job execution against the store, with per-request
//!   metrics teed into the fleet recorder;
//! - [`server`] — the serve loop: reader, worker pool, in-order writer,
//!   stdin and unix-socket frontends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod exec;
pub mod json;
pub mod keys;
pub mod protocol;
pub mod server;
pub mod store;

pub use error::{ErrorKind, ServiceError};
pub use exec::{Deadline, ExecContext};
pub use json::Json;
pub use protocol::{parse_request, render_response, JobSpec, OkBody, Request, PROTOCOL_VERSION};
pub use server::{ServeSummary, Service, ServiceConfig, Sleeper, ThreadSleeper};
pub use store::{ArtifactStore, CacheConfig, CacheFamily};

// Deadline enforcement is injected-clock-driven; re-export the clock
// types so embedders (the binary, tests, benches) name them without a
// direct `leakage-obs` dependency.
pub use leakage_obs::{Clock, FakeClock, NullClock, WallClock};
