//! Minimal, deterministic JSON for the `chipleakd` wire protocol.
//!
//! The protocol's conformance suite diffs responses *byte-for-byte*
//! (`tests/service_protocol.rs`), so the serializer must be a pure
//! function of the response value: object keys are emitted in a fixed
//! hand-written order by the protocol layer, floats render as their
//! shortest round-trip form, and no formatting decision depends on
//! platform, locale, or library version. An in-tree emitter/parser keeps
//! the entire byte stream under this crate's control — `serde_json`
//! remains in use by the `chipleak` CLI for artifact files, but the wire
//! format is pinned here.
//!
//! The parser is strict JSON (RFC 8259): no trailing garbage, duplicate
//! object keys rejected, nesting capped at [`MAX_DEPTH`], non-finite
//! numbers rejected. Strictness is what turns the fault-injection
//! corpus's corrupted lines (`tests/fault_injection.rs`) into *typed*
//! parse errors instead of silently-coerced garbage. Everything here is
//! panic-free: lint L9 walks this file via the service roots.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. The protocol needs three
/// levels (`{"job":{"die":[w,h]}}`); 32 leaves headroom while bounding
/// recursion on adversarial input (deep nesting must not abort the
/// server by exhausting the stack — L9 covers unwinding panics only).
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value. Objects use [`BTreeMap`] (lint L1: deterministic
/// iteration); the protocol layer never iterates request objects in a
/// way that reaches the wire, but the rule holds structurally.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as a finite `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Duplicate keys are a parse error.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one exactly (integer-valued, in
    /// range). `1e2` qualifies; `1.5` and `-1` do not.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_num()?;
        if v.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&v) {
            Some(v as u64)
        } else {
            None
        }
    }

    /// The bool, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Renders this value in the protocol's canonical form: object keys
    /// in `BTreeMap` order, floats via [`write_number`], strings via
    /// [`write_string`]. Used for echoing request `id`s back verbatim
    /// in meaning (not in byte layout — `1e0` echoes as `1`).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends a JSON string literal (quoted, escaped) to `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                // `write!` to a String is infallible; ignore the Ok.
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number to `out` in canonical protocol form:
/// integer-valued floats inside the exact-`i64` range print as integers
/// (`62`, `-3`), everything else as Rust's shortest round-trip
/// scientific form (`1.2e-6`), and non-finite values — which the
/// protocol never produces on purpose — degrade to `null` rather than
/// emitting invalid JSON.
pub fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    if v.fract() == 0.0 && v.abs() <= 9.007_199_254_740_992e15 {
        // `as` is saturating, but the range check keeps it exact.
        // Negative zero keeps its sign so bit-identity survives the wire.
        if v == 0.0 && v.is_sign_negative() {
            out.push_str("-0");
            return;
        }
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v:e}");
    }
}

/// Where a parse failed, as a byte offset into the input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What went wrong, deterministically worded.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    match p.peek() {
        None => Ok(v),
        Some(_) => Err(p.err("trailing characters after JSON value")),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        let end = self.pos + lit.len();
        if self.bytes.get(self.pos..end) == Some(lit.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.bump(); // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.bump(); // consume '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key string"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if map.insert(key, value).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.bump(); // consume '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: scan a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and the run stops on ASCII
                // delimiters, so the slice lies on char boundaries.
                if let Some(bytes) = self.bytes.get(start..self.pos) {
                    match std::str::from_utf8(bytes) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.escape(&mut out)?,
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        match self.bump() {
            Some(b'"') => out.push('"'),
            Some(b'\\') => out.push('\\'),
            Some(b'/') => out.push('/'),
            Some(b'b') => out.push('\u{08}'),
            Some(b'f') => out.push('\u{0c}'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(b't') => out.push('\t'),
            Some(b'u') => {
                let hi = self.hex4()?;
                let c = if (0xd800..0xdc00).contains(&hi) {
                    // High surrogate: require the paired low surrogate.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err("unpaired surrogate in \\u escape"));
                    }
                    let lo = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(self.err("invalid low surrogate in \\u escape"));
                    }
                    let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    char::from_u32(cp)
                } else {
                    char::from_u32(hi)
                };
                match c {
                    Some(c) => out.push(c),
                    None => return Err(self.err("invalid \\u escape")),
                }
            }
            _ => return Err(self.err("invalid escape sequence")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits in \\u escape")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        // Integer part: '0' alone or a nonzero-led digit run.
        match self.bump() {
            Some(b'0') => {}
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.bump();
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or("");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(self.err("number out of range")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        let v = parse(src).expect(src);
        let mut out = String::new();
        v.write(&mut out);
        out
    }

    #[test]
    fn parses_the_scalar_zoo() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("0").unwrap(), Json::Num(0.0));
        assert_eq!(parse("-12.5e-1").unwrap(), Json::Num(-1.25));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(
            parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("é😀".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "nul",
            "tru",
            "{",
            "[",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1,}",
            "01",
            "1.",
            "1e",
            "NaN",
            "Infinity",
            "-",
            "\"",
            "\"\\x\"",
            "\"\\ud800\"",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "\"\u{01}\"",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn canonical_output_is_stable() {
        assert_eq!(
            roundtrip("{\"b\":1,\"a\":[true,null]}"),
            "{\"a\":[true,null],\"b\":1}"
        );
        assert_eq!(roundtrip("1e0"), "1");
        assert_eq!(roundtrip("-42"), "-42");
        assert_eq!(roundtrip("1.25e-6"), "1.25e-6");
        assert_eq!(roundtrip("\"tab\\there\""), "\"tab\\there\"");
    }

    #[test]
    fn number_formatting_roundtrips_exactly() {
        for v in [
            0.0,
            -0.0,
            62.0,
            1.0 / 3.0,
            2.5e-9,
            f64::MIN_POSITIVE,
            9.007199254740992e15,
            1.797e308,
        ] {
            let mut s = String::new();
            write_number(&mut s, v);
            let back: f64 = s.parse().expect(&s);
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s}");
        }
        let mut s = String::new();
        write_number(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn u64_extraction_is_exact() {
        assert_eq!(parse("100").unwrap().as_u64(), Some(100));
        assert_eq!(parse("1e2").unwrap().as_u64(), Some(100));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn depth_bound_is_exact_at_max_depth() {
        // Depth MAX_DEPTH parses; one more level is a typed error, for
        // arrays, objects, and mixed nesting alike.
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let ok = open.repeat(MAX_DEPTH) + "0" + &close.repeat(MAX_DEPTH);
            assert!(parse(&ok).is_ok(), "{open}x{MAX_DEPTH} should parse");
            let deep = open.repeat(MAX_DEPTH + 1) + "0" + &close.repeat(MAX_DEPTH + 1);
            let err = parse(&deep).expect_err("one level past the bound");
            assert_eq!(err.message, "nesting too deep");
        }
        let mixed = "[{\"a\":".repeat(MAX_DEPTH / 2) + "0" + &"}]".repeat(MAX_DEPTH / 2);
        assert!(parse(&mixed).is_ok());
    }

    #[test]
    fn every_control_character_escapes_and_roundtrips() {
        for cp in 0u32..0x20 {
            let c = char::from_u32(cp).expect("control chars are chars");
            let original = Json::Str(format!("a{c}b"));
            let mut wire = String::new();
            original.write(&mut wire);
            // The wire form never carries a raw control byte...
            assert!(wire.bytes().all(|b| b >= 0x20), "{cp:#x} leaked raw");
            // ...and parses back to the identical value.
            assert_eq!(parse(&wire).unwrap(), original, "{cp:#x}");
        }
        // Spot-check the \u spellings at the window edges.
        assert_eq!(parse("\"\\u0000\"").unwrap(), Json::Str("\u{0}".into()));
        assert_eq!(parse("\"\\u001f\"").unwrap(), Json::Str("\u{1f}".into()));
        assert_eq!(parse("\"\\uffff\"").unwrap(), Json::Str("\u{ffff}".into()));
    }

    #[test]
    fn surrogate_escapes_pair_or_fail() {
        // A correct pair decodes to one astral char and survives a
        // write/parse cycle (the writer emits it raw, not re-escaped).
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Json::Str("😀".into()));
        let mut wire = String::new();
        v.write(&mut wire);
        assert_eq!(wire, "\"😀\"");
        assert_eq!(parse(&wire).unwrap(), v);
        // Every broken spelling is a typed error, not replacement junk.
        for bad in [
            "\"\\udc00\"",        // lone low surrogate
            "\"\\ud800\"",        // lone high surrogate
            "\"\\ud800\\ud800\"", // high followed by high
            "\"\\ud800\\u0041\"", // high followed by non-surrogate
            "\"\\ud800x\"",       // high followed by plain text
            "\"\\ud83d\\ude0\"",  // truncated low half
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn oversized_numbers_are_rejected_not_saturated() {
        let wide = "1".repeat(400); // 400-digit mantissa overflows f64
        for bad in [
            "1e309",
            "-1e999",
            "2e308",
            "1e99999999999999999999",
            wide.as_str(),
        ] {
            let err = parse(bad).expect_err(bad);
            assert_eq!(err.message, "number out of range", "{bad:?}");
        }
        // Underflow is not overflow: tiny magnitudes flush toward zero,
        // stay finite, and are accepted.
        assert_eq!(parse("1e-350").unwrap(), Json::Num(0.0));
        // The largest finite double is in range.
        assert!(parse("1.7976931348623157e308").is_ok());
    }

    #[test]
    fn u64_and_integer_printing_agree_at_the_2p53_window() {
        // 2^53 is the last f64 whose integer value is exact; it is both
        // extractable and printed in integer form.
        let edge = parse("9007199254740992").unwrap();
        assert_eq!(edge.as_u64(), Some(9007199254740992));
        let mut s = String::new();
        write_number(&mut s, 9007199254740992.0);
        assert_eq!(s, "9007199254740992");
        // Just past the window, printing switches to scientific form but
        // still round-trips bit-exactly.
        let past = 9.007199254740994e15;
        let mut s = String::new();
        write_number(&mut s, past);
        assert_eq!(s, "9.007199254740994e15");
        assert_eq!(s.parse::<f64>().unwrap().to_bits(), past.to_bits());
        assert_eq!(parse(&s).unwrap().as_u64(), None);
        // Negative zero keeps its sign across the wire.
        let mut s = String::new();
        write_number(&mut s, -0.0);
        assert_eq!(s, "-0");
        let back = parse("-0").unwrap().as_num().unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
    }
}
