//! Job execution against the shared artifact store.
//!
//! This is where a resolved [`JobSpec`] meets the estimator stack. The
//! instrumentation discipline here is load-bearing for determinism
//! (DESIGN.md §14.5):
//!
//! - **Cache lookups and artifact computes** report only to the fleet's
//!   counter sink ([`CountersOnly`]). Whether *this* request was the
//!   one that computed a shared artifact depends on scheduling, so none
//!   of that may leak into the per-request view — only into fleet
//!   totals, which single-flight makes schedule-free.
//! - **Estimator/sampler work** that every request performs regardless
//!   of cache state reports through a [`TeeRecorder`] to both the
//!   per-request recorder and the fleet counter sink. The per-request
//!   counter echo (`"metrics":true`) is therefore a pure function of
//!   the job — bit-identical under reordering and any worker count.
//!
//! Estimates run with the Vt mean correction enabled, matching what the
//! one-shot `chipleak estimate` CLI always does — the conformance suite
//! diffs the two paths byte-for-byte.

use std::collections::BTreeMap;
use std::sync::Arc;

use leakage_cells::charax::{CharMethod, Characterizer};
use leakage_cells::model::CharacterizedLibrary;
use leakage_cells::CellLibrary;
use leakage_core::estimator::LadderStage;
use leakage_core::{ChipLeakageEstimator, HighLevelCharacteristics, LeakageDistribution};
use leakage_montecarlo::ChipSamplerBuilder;
use leakage_netlist::generate::RandomCircuitGenerator;
use leakage_netlist::placement::{place_in_die, PlacementStyle};
use leakage_numeric::parallel::Parallelism;
use leakage_obs::{
    AggregatingRecorder, Clock, CountersOnly, Instruments, NullClock, Recorder, TeeRecorder,
};
use leakage_process::correlation::TentCorrelation;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::{ErrorKind, ServiceError};
use crate::keys;
use crate::protocol::{
    CharacterizeSpec, EstimateSpec, JobSpec, ModeSpec, MonteCarloSpec, OkBody, TechSpec,
};
use crate::store::ArtifactStore;

/// What an executing job can see: the shared store and the fleet
/// recorder (only ever fed counters from here).
pub struct ExecContext<'a> {
    /// The process-wide artifact store.
    pub store: &'a ArtifactStore,
    /// The fleet-level recorder shared by every worker.
    pub fleet: &'a dyn Recorder,
    /// Server-level default degradation policy (`chipleakd --resilient`),
    /// applied when a job carries no `mode` of its own.
    pub resilient_default: bool,
    /// The request's deadline, checked at kernel checkpoint boundaries.
    /// `None` (the common case) skips every check — and every clock
    /// read — so deadline-free execution is byte-for-byte what it was
    /// before deadlines existed.
    pub deadline: Option<Deadline<'a>>,
}

/// A cooperative cancellation token: the absolute expiry plus the clock
/// that measures it. Kernels are never interrupted mid-flight; the
/// execution path polls [`ExecContext::checkpoint`] *between* kernels
/// (after the characterization fetch, before the estimator or sampler
/// runs), which keeps every kernel's output bit-exact while bounding
/// how much work a doomed request can still burn.
pub struct Deadline<'a> {
    /// Time source (the server's injected clock).
    pub clock: &'a dyn Clock,
    /// Absolute expiry in clock nanoseconds.
    pub at: u64,
}

impl ExecContext<'_> {
    /// Returns a typed `deadline_exceeded` error if this request's
    /// deadline has passed; a no-deadline context always passes. The
    /// checkpoint `name` is part of the response message, so operators
    /// can see *where* budgets run out — messages stay deterministic
    /// because checkpoint names are static and carry no timings.
    pub fn checkpoint(&self, name: &str) -> Result<(), ServiceError> {
        let Some(deadline) = &self.deadline else {
            return Ok(());
        };
        if deadline.clock.now_nanos() > deadline.at {
            self.fleet.add("service.deadline.cancelled", 1);
            return Err(ServiceError::new(
                ErrorKind::DeadlineExceeded,
                format!("deadline expired at checkpoint `{name}`"),
            ));
        }
        Ok(())
    }
}

fn parallelism(threads: usize) -> Parallelism {
    if threads == 0 {
        Parallelism::auto()
    } else {
        Parallelism::threads(threads)
    }
}

fn counter_echo(rec: &AggregatingRecorder) -> BTreeMap<String, u64> {
    rec.snapshot().counters
}

/// Executes one job. `Stats` and `Shutdown` are handled by the server
/// (they touch server state, not the estimator stack); routing them
/// here is an internal error, not a panic.
pub fn execute(ctx: &ExecContext<'_>, job: &JobSpec) -> Result<OkBody, ServiceError> {
    ctx.checkpoint("admission")?;
    match job {
        JobSpec::Ping => Ok(OkBody::Pong),
        JobSpec::Characterize(spec) => characterize(ctx, spec),
        JobSpec::Estimate(spec) => estimate(ctx, spec),
        JobSpec::MonteCarlo(spec) => montecarlo(ctx, spec),
        JobSpec::Stats | JobSpec::Shutdown => Err(ServiceError::new(
            ErrorKind::Internal,
            "stats/shutdown jobs are handled by the server loop",
        )),
    }
}

/// Fetches (or computes, exactly once fleet-wide) the characterized
/// library for a corner. The key hashes the corner's resolved physical
/// parameters, so two spellings of the same corner share one artifact.
fn library(
    ctx: &ExecContext<'_>,
    tech: TechSpec,
    sweep_points: usize,
    threads: usize,
) -> Result<Arc<CharacterizedLibrary>, ServiceError> {
    let technology = tech.technology();
    let lv = technology.l_variation();
    let key = keys::library_key(
        technology.name(),
        technology.vdd(),
        technology.temperature(),
        technology.vt_sigma(),
        lv.nominal(),
        lv.sigma_d2d(),
        lv.sigma_wid(),
        sweep_points,
    );
    let fleet_counters = CountersOnly::new(ctx.fleet);
    let fleet_ins = Instruments::new(&fleet_counters, &NullClock);
    ctx.store.libraries.get_or_compute(key, fleet_ins, || {
        ctx.fleet.add("service.characterizations", 1);
        Characterizer::new(&technology)
            .characterize_library_instrumented(
                &CellLibrary::standard_62(),
                CharMethod::Analytical { sweep_points },
                parallelism(threads),
                fleet_ins,
            )
            .map_err(ServiceError::from)
    })
}

fn characterize(ctx: &ExecContext<'_>, spec: &CharacterizeSpec) -> Result<OkBody, ServiceError> {
    let lib = library(ctx, spec.tech, spec.sweep_points, spec.threads)?;
    let _ = spec.metrics; // characterize's echo is its summary body
    Ok(OkBody::Characterized {
        tech: spec.tech.tag(),
        sweep_points: spec.sweep_points,
        cells: lib.len(),
        l_sigma: lib.l_sigma,
    })
}

fn estimate(ctx: &ExecContext<'_>, spec: &EstimateSpec) -> Result<OkBody, ServiceError> {
    let charlib = library(ctx, spec.tech, spec.sweep_points, spec.threads)?;
    // A cold characterization above may have consumed the whole
    // budget; bail before spending estimator time on a doomed request.
    ctx.checkpoint("library")?;
    let technology = spec.tech.technology();
    let histogram = spec.mix.histogram(&CellLibrary::standard_62())?;
    let chars = HighLevelCharacteristics::builder()
        .histogram(histogram)
        .n_cells(spec.n_cells)
        .die_dimensions(spec.die_w, spec.die_h)
        .signal_probability(spec.p)
        .build()?;
    let wid = TentCorrelation::new(spec.dmax)?;
    let est = ChipLeakageEstimator::new(&charlib, &technology, chars, wid)?
        .with_vt_correction(&technology);

    let request_rec = AggregatingRecorder::new();
    let fleet_counters = CountersOnly::new(ctx.fleet);
    let tee = TeeRecorder::new(&request_rec, &fleet_counters);
    let work_ins = Instruments::new(&tee, &NullClock);
    let fleet_ins = Instruments::new(&fleet_counters, &NullClock);

    let mode = spec.mode.unwrap_or(if ctx.resilient_default {
        ModeSpec::Resilient
    } else {
        ModeSpec::Default
    });
    ctx.checkpoint("estimator")?;
    let (e, method, degraded) = match mode {
        ModeSpec::Resilient => {
            let res = est.estimate_resilient_instrumented(work_ins)?;
            let stage = res.report.accepted().ok_or_else(|| {
                ServiceError::new(
                    ErrorKind::Internal,
                    "resilient ladder succeeded without an accepted stage",
                )
            })?;
            (res.estimate, stage.name(), res.report.rejection_lines())
        }
        ModeSpec::Strict => {
            let e = est
                .estimate_strict_instrumented(spec.method, work_ins)
                .map_err(|e| ServiceError::new(ErrorKind::StrictRefusal, e.to_string()))?;
            (e, spec.method.name(), Vec::new())
        }
        ModeSpec::Default => {
            let e = match spec.method {
                LadderStage::Linear => {
                    // The histogram-only fast path: the Eq. 17 table
                    // depends only on (grid, corner), so bursts of
                    // queries over one floorplan share a cached table.
                    let grid = est.grid();
                    let key = keys::table_key(
                        grid.rows(),
                        grid.cols(),
                        grid.width(),
                        grid.height(),
                        est.rho_c(),
                        spec.dmax,
                    );
                    let table = ctx.store.tables.get_or_compute(key, fleet_ins, || {
                        Ok::<_, ServiceError>(est.correlation_table())
                    })?;
                    est.estimate_linear_tabulated_instrumented(&table, work_ins)?
                }
                LadderStage::Integral2d => est.estimate_integral_2d_instrumented(work_ins)?,
                LadderStage::Polar1d => est.estimate_polar_1d_instrumented(work_ins)?,
                LadderStage::ExactLattice => {
                    return Err(ServiceError::invalid(
                        "method exact-lattice requires strict or resilient mode",
                    ))
                }
            };
            (e, spec.method.name(), Vec::new())
        }
    };
    let dist = LeakageDistribution::from_estimate(&e)?;
    Ok(OkBody::Estimate {
        method,
        mean: e.mean,
        std: e.std(),
        relative_std: e.relative_std(),
        q95: dist.quantile(0.95),
        q99: dist.quantile(0.99),
        degraded,
        metrics: spec.metrics.then(|| counter_echo(&request_rec)),
    })
}

fn montecarlo(ctx: &ExecContext<'_>, spec: &MonteCarloSpec) -> Result<OkBody, ServiceError> {
    let charlib = library(ctx, spec.tech, spec.sweep_points, spec.threads)?;
    ctx.checkpoint("library")?;
    let technology = spec.tech.technology();
    let histogram = spec.mix.histogram(&CellLibrary::standard_62())?;
    let circuit = RandomCircuitGenerator::new(histogram)
        .generate_exact(spec.n_cells, &mut StdRng::seed_from_u64(spec.netlist_seed))?;
    let placed = place_in_die(&circuit, PlacementStyle::RowMajor, spec.die_w, spec.die_h)?;
    let wid = TentCorrelation::new(spec.dmax)?;

    let request_rec = AggregatingRecorder::new();
    let fleet_counters = CountersOnly::new(ctx.fleet);
    let tee = TeeRecorder::new(&request_rec, &fleet_counters);
    let work_ins = Instruments::new(&tee, &NullClock);
    let fleet_ins = Instruments::new(&fleet_counters, &NullClock);

    // Sampler construction reports fleet-only: whether the colouring
    // plan was a cache hit is scheduling, not job content.
    ctx.checkpoint("sampler")?;
    let sampler = ChipSamplerBuilder::new(&placed, &charlib, &technology, &wid)
        .signal_probability(spec.p)
        .plan_cache(&ctx.store.plans)
        .instruments(fleet_ins)
        .build()?;
    let stats = sampler.run_seeded_instrumented(
        spec.trials,
        spec.seed,
        parallelism(spec.threads),
        work_ins,
    );
    Ok(OkBody::MonteCarlo {
        trials: spec.trials,
        mean: stats.mean(),
        std: stats.sample_variance().sqrt(),
        metrics: spec.metrics.then(|| counter_echo(&request_rec)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CacheConfig;
    use leakage_obs::NoopRecorder;

    fn ctx_with<'a>(store: &'a ArtifactStore, fleet: &'a dyn Recorder) -> ExecContext<'a> {
        ExecContext {
            store,
            fleet,
            resilient_default: false,
            deadline: None,
        }
    }

    fn estimate_spec() -> EstimateSpec {
        EstimateSpec {
            tech: TechSpec::Cmos90,
            sweep_points: 5,
            n_cells: 5000,
            die_w: 400.0,
            die_h: 300.0,
            dmax: 100.0,
            p: 0.5,
            mix: crate::protocol::MixSpec::Uniform,
            method: LadderStage::Linear,
            mode: None,
            threads: 1,
            metrics: false,
        }
    }

    #[test]
    fn estimate_hits_the_library_and_table_caches() {
        let store = ArtifactStore::new(CacheConfig::default());
        let fleet = AggregatingRecorder::new();
        let ctx = ctx_with(&store, &fleet);
        let first = execute(&ctx, &JobSpec::Estimate(estimate_spec())).unwrap();
        let second = execute(&ctx, &JobSpec::Estimate(estimate_spec())).unwrap();
        assert_eq!(first, second, "cache hits must not perturb a single bit");
        let counters = fleet.snapshot().counters;
        assert_eq!(counters.get("service.cache.lib.misses"), Some(&1));
        assert_eq!(counters.get("service.cache.lib.hits"), Some(&1));
        assert_eq!(counters.get("service.cache.table.misses"), Some(&1));
        assert_eq!(counters.get("service.cache.table.hits"), Some(&1));
        assert_eq!(counters.get("service.characterizations"), Some(&1));
    }

    #[test]
    fn cached_and_uncached_responses_are_bit_identical() {
        let cached = ArtifactStore::new(CacheConfig::default());
        let uncached = ArtifactStore::new(CacheConfig {
            enabled: false,
            capacity: None,
        });
        let fleet = NoopRecorder;
        for job in [
            JobSpec::Estimate(estimate_spec()),
            JobSpec::Estimate(EstimateSpec {
                method: LadderStage::Polar1d,
                mode: Some(ModeSpec::Resilient),
                ..estimate_spec()
            }),
        ] {
            let ctx = ctx_with(&cached, &fleet);
            let warm = execute(&ctx, &job).unwrap();
            let again = execute(&ctx, &job).unwrap();
            let ctx = ctx_with(&uncached, &fleet);
            let cold = execute(&ctx, &job).unwrap();
            assert_eq!(warm, again);
            assert_eq!(warm, cold);
        }
    }

    #[test]
    fn exact_lattice_needs_a_guarded_mode() {
        let store = ArtifactStore::new(CacheConfig::default());
        let fleet = NoopRecorder;
        let ctx = ctx_with(&store, &fleet);
        let err = execute(
            &ctx,
            &JobSpec::Estimate(EstimateSpec {
                method: LadderStage::ExactLattice,
                ..estimate_spec()
            }),
        )
        .unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidArgument);
        let ok = execute(
            &ctx,
            &JobSpec::Estimate(EstimateSpec {
                method: LadderStage::ExactLattice,
                mode: Some(ModeSpec::Strict),
                n_cells: 400,
                ..estimate_spec()
            }),
        );
        assert!(ok.is_ok(), "small grids admit the exact rung: {ok:?}");
    }

    #[test]
    fn metrics_echo_is_cache_state_independent() {
        let store = ArtifactStore::new(CacheConfig::default());
        let fleet = NoopRecorder;
        let ctx = ctx_with(&store, &fleet);
        let spec = EstimateSpec {
            metrics: true,
            ..estimate_spec()
        };
        // First call computes the artifacts, second hits the cache; the
        // per-request echo must not see the difference.
        let cold = execute(&ctx, &JobSpec::Estimate(spec.clone())).unwrap();
        let warm = execute(&ctx, &JobSpec::Estimate(spec)).unwrap();
        assert_eq!(cold, warm);
        match cold {
            OkBody::Estimate {
                metrics: Some(m), ..
            } => {
                assert!(
                    m.keys().all(|k| !k.starts_with("service.cache")),
                    "cache counters must stay out of the echo: {m:?}"
                );
                assert!(!m.is_empty(), "the estimator path is instrumented");
            }
            other => panic!("expected an estimate body, got {other:?}"),
        }
    }
}
