//! Content-addressed cache keys.
//!
//! Every cacheable artifact — a characterized library, an Eq. 17
//! correlation table, a circulant FFT plan — is addressed by an FNV-1a
//! hash of the inputs that fully determine its bytes. Two jobs share an
//! artifact exactly when their keys collide *by construction* (same
//! inputs), never by coincidence of request wording: `"sweep_points":13`
//! and an omitted `sweep_points` (default 13) hash identically because
//! the key is built from the resolved value, not the request text.
//!
//! Floats enter the hash as their IEEE-754 bit patterns, so keying is as
//! exact as the artifacts themselves (`0.1 + 0.2` and `0.3` are
//! different corners). FNV-1a is the workspace's standard content hash
//! (chipleak-lint's incremental cache uses the same function); at 64
//! bits over a handful of cache entries, accidental collision is not a
//! realistic failure mode, and a collision would require identical
//! *resolved* parameter tuples anyway.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over typed fields. Field order matters and
/// is fixed by the key constructors below; strings are length-prefixed
/// so adjacent fields cannot alias.
#[derive(Debug, Clone, Copy)]
pub struct KeyHasher(u64);

impl KeyHasher {
    /// Starts a hash with a domain tag separating key families
    /// (`"lib"` keys can never collide with `"table"` keys).
    pub fn new(domain: &str) -> KeyHasher {
        let mut h = KeyHasher(FNV_OFFSET);
        h.write_str(domain);
        h
    }

    /// Folds raw bytes into the hash.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a float's exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The final 64-bit key.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Key for a characterized library: the corner's physical parameters
/// plus the characterization sweep resolution.
#[allow(clippy::too_many_arguments)]
pub fn library_key(
    tech_name: &str,
    vdd: f64,
    temperature: f64,
    vt_sigma: f64,
    l_nominal: f64,
    l_sigma_d2d: f64,
    l_sigma_wid: f64,
    sweep_points: usize,
) -> u64 {
    let mut h = KeyHasher::new("lib");
    h.write_str(tech_name);
    h.write_f64(vdd);
    h.write_f64(temperature);
    h.write_f64(vt_sigma);
    h.write_f64(l_nominal);
    h.write_f64(l_sigma_d2d);
    h.write_f64(l_sigma_wid);
    h.write_u64(sweep_points as u64);
    h.finish()
}

/// Key for an Eq. 17 correlation table: the site grid's exact shape and
/// the total-correlation model (D2D floor `ρ_C` + tent range `dmax`).
/// Deliberately excludes everything the table does not depend on
/// (library, histogram, signal probability) so histogram-only query
/// bursts share one table.
pub fn table_key(rows: usize, cols: usize, width: f64, height: f64, rho_c: f64, dmax: f64) -> u64 {
    let mut h = KeyHasher::new("table");
    h.write_u64(rows as u64);
    h.write_u64(cols as u64);
    h.write_f64(width);
    h.write_f64(height);
    h.write_f64(rho_c);
    h.write_f64(dmax);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_separate_families() {
        assert_ne!(
            KeyHasher::new("lib").finish(),
            KeyHasher::new("table").finish()
        );
    }

    #[test]
    fn library_key_is_sensitive_to_each_field() {
        let base = library_key("cmos90", 1.2, 300.0, 0.03, 100.0, 4.0, 4.0, 13);
        assert_eq!(
            base,
            library_key("cmos90", 1.2, 300.0, 0.03, 100.0, 4.0, 4.0, 13)
        );
        assert_ne!(
            base,
            library_key("cmos65", 1.2, 300.0, 0.03, 100.0, 4.0, 4.0, 13)
        );
        assert_ne!(
            base,
            library_key("cmos90", 1.0, 300.0, 0.03, 100.0, 4.0, 4.0, 13)
        );
        assert_ne!(
            base,
            library_key("cmos90", 1.2, 300.0, 0.03, 100.0, 4.0, 4.0, 7)
        );
    }

    #[test]
    fn float_keys_are_bit_exact() {
        let a = table_key(4, 5, 100.0, 80.0, 0.5, 0.1 + 0.2);
        let b = table_key(4, 5, 100.0, 80.0, 0.5, 0.3);
        assert_ne!(a, b, "0.1 + 0.2 is not bitwise 0.3");
    }

    #[test]
    fn string_fields_are_length_prefixed() {
        let mut a = KeyHasher::new("t");
        a.write_str("ab");
        a.write_str("c");
        let mut b = KeyHasher::new("t");
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
