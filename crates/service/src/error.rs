//! Typed wire errors and the mapping from domain errors.
//!
//! Every failure a request can provoke — from a corrupt byte on the
//! wire to an exhausted resilient ladder — becomes a `{"err":{"kind":
//! ...,"message":...}}` response with a kind from the closed set below.
//! Nothing panics (lint L9 roots at this crate) and nothing is stringly
//! ad hoc: clients dispatch on `kind`, humans read `message`. Messages
//! reuse the domain errors' `Display` forms, which are deterministic
//! (no addresses, no timestamps), so the golden transcripts can pin
//! error responses byte-for-byte.

/// The closed set of wire error kinds (DESIGN.md §14.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not valid JSON.
    Parse,
    /// Valid JSON that violates the protocol shape (bad version,
    /// unknown job kind, wrong field type, unknown field).
    Protocol,
    /// The request line exceeded the configured size limit.
    Oversized,
    /// A domain precondition failed (invalid corner, bad grid, ...).
    InvalidArgument,
    /// Strict mode refused to run: the requested method failed its
    /// applicability or validation check and fallback is forbidden.
    StrictRefusal,
    /// The resilient ladder ran out of rungs.
    Exhausted,
    /// The server shed this request at admission: the bounded work
    /// queue was full (`--queue-cap`). The job never executed; retry
    /// after backing off.
    Overloaded,
    /// The request's deadline (`deadline_ms` / `--default-deadline-ms`)
    /// expired before a result was produced — either while queued or at
    /// a cooperative checkpoint mid-execution.
    DeadlineExceeded,
    /// A server-side invariant failed. Should be unreachable.
    Internal,
}

impl ErrorKind {
    /// The wire tag for this kind.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Oversized => "oversized",
            ErrorKind::InvalidArgument => "invalid_argument",
            ErrorKind::StrictRefusal => "strict_refusal",
            ErrorKind::Exhausted => "exhausted",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A typed error response body.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceError {
    /// Dispatch tag.
    pub kind: ErrorKind,
    /// Deterministic human-readable detail.
    pub message: String,
}

impl ServiceError {
    /// Builds an error of `kind` with `message`.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ServiceError {
        ServiceError {
            kind,
            message: message.into(),
        }
    }

    /// Shorthand for a protocol-shape violation.
    pub fn protocol(message: impl Into<String>) -> ServiceError {
        ServiceError::new(ErrorKind::Protocol, message)
    }

    /// Shorthand for a domain-precondition failure.
    pub fn invalid(message: impl Into<String>) -> ServiceError {
        ServiceError::new(ErrorKind::InvalidArgument, message)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.tag(), self.message)
    }
}

impl std::error::Error for ServiceError {}

impl From<leakage_core::CoreError> for ServiceError {
    fn from(e: leakage_core::CoreError) -> ServiceError {
        let kind = match &e {
            leakage_core::CoreError::EstimationExhausted { .. } => ErrorKind::Exhausted,
            _ => ErrorKind::InvalidArgument,
        };
        ServiceError::new(kind, e.to_string())
    }
}

impl From<leakage_cells::CellError> for ServiceError {
    fn from(e: leakage_cells::CellError) -> ServiceError {
        ServiceError::invalid(e.to_string())
    }
}

impl From<leakage_process::ProcessError> for ServiceError {
    fn from(e: leakage_process::ProcessError) -> ServiceError {
        ServiceError::invalid(e.to_string())
    }
}

impl From<leakage_netlist::NetlistError> for ServiceError {
    fn from(e: leakage_netlist::NetlistError) -> ServiceError {
        ServiceError::invalid(e.to_string())
    }
}

impl From<leakage_montecarlo::McError> for ServiceError {
    fn from(e: leakage_montecarlo::McError) -> ServiceError {
        ServiceError::invalid(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable() {
        for (kind, tag) in [
            (ErrorKind::Parse, "parse"),
            (ErrorKind::Protocol, "protocol"),
            (ErrorKind::Oversized, "oversized"),
            (ErrorKind::InvalidArgument, "invalid_argument"),
            (ErrorKind::StrictRefusal, "strict_refusal"),
            (ErrorKind::Exhausted, "exhausted"),
            (ErrorKind::Overloaded, "overloaded"),
            (ErrorKind::DeadlineExceeded, "deadline_exceeded"),
            (ErrorKind::Internal, "internal"),
        ] {
            assert_eq!(kind.tag(), tag);
        }
    }
}
