//! Boundary proptests for the reader's byte-cap line framing
//! ([`read_line_limited`]) and its pre-parse rejection partner
//! ([`parse_or_reject`]).
//!
//! The cap is the server's first line of overload defense — a client
//! cannot make the reader buffer more than `max_line_bytes` per line —
//! so its edges are pinned exactly: a line of precisely `limit` bytes
//! survives intact, one byte more collapses to the oversized sentinel
//! (and from there to a typed `oversized` wire error), CRLF parses like
//! LF, and an unterminated final line is still delivered.

use leakage_service::server::{parse_or_reject, read_line_limited};
use leakage_service::ErrorKind;
use proptest::prelude::*;

/// One `read_line_limited` call over an in-memory stream, with the
/// smallest BufRead buffer that still exercises refills.
fn read_first(input: &[u8], limit: usize) -> Option<Vec<u8>> {
    let mut reader = std::io::BufReader::with_capacity(8, input);
    read_line_limited(&mut reader, limit).expect("in-memory reads cannot fail")
}

/// Reads every line until EOF.
fn read_all(input: &[u8], limit: usize) -> Vec<Vec<u8>> {
    let mut reader = std::io::BufReader::with_capacity(8, input);
    let mut lines = Vec::new();
    while let Some(line) = read_line_limited(&mut reader, limit).expect("in-memory read") {
        lines.push(line);
    }
    lines
}

proptest! {
    /// A line of exactly `limit` bytes is returned byte-for-byte; the
    /// cap is inclusive.
    #[test]
    fn exact_cap_line_survives_intact(limit in 1usize..200, byte in 0x20u8..0x7f) {
        let line = vec![byte; limit];
        let mut input = line.clone();
        input.push(b'\n');
        prop_assert_eq!(read_first(&input, limit), Some(line));
    }

    /// One byte past the cap collapses to the sentinel: longer than
    /// `limit`, so downstream cannot mistake it for a real request.
    #[test]
    fn one_past_the_cap_yields_the_oversized_sentinel(limit in 1usize..200, byte in 0x20u8..0x7f) {
        let mut input = vec![byte; limit + 1];
        input.push(b'\n');
        let got = read_first(&input, limit).expect("a line was read");
        prop_assert!(got.len() > limit, "sentinel must exceed the cap");
    }

    /// An oversized line never desynchronizes the stream: the next
    /// line is still read intact, whatever the overflow length.
    #[test]
    fn oversized_lines_keep_the_stream_aligned(
        limit in 1usize..64,
        overflow in 1usize..300,
        next in proptest::collection::vec(0x20u8..0x7f, 0..32),
    ) {
        prop_assume!(next.len() <= limit);
        let mut input = vec![b'x'; limit + overflow];
        input.push(b'\n');
        input.extend_from_slice(&next);
        input.push(b'\n');
        let lines = read_all(&input, limit);
        prop_assert_eq!(lines.len(), 2);
        prop_assert!(lines[0].len() > limit);
        prop_assert_eq!(lines[1].clone(), next);
    }

    /// EOF mid-line: a final unterminated line still counts, under and
    /// at the cap.
    #[test]
    fn eof_mid_line_still_delivers_the_partial_line(limit in 1usize..200, len in 1usize..200) {
        prop_assume!(len <= limit);
        let input = vec![b'a'; len];
        let lines = read_all(&input, limit);
        prop_assert_eq!(lines, vec![vec![b'a'; len]]);
    }

    /// EOF mid-line past the cap is still the oversized sentinel, not
    /// a truncated impostor request.
    #[test]
    fn eof_mid_oversized_line_is_still_the_sentinel(limit in 1usize..64, overflow in 1usize..300) {
        let input = vec![b'a'; limit + overflow];
        let lines = read_all(&input, limit);
        prop_assert_eq!(lines.len(), 1);
        prop_assert!(lines[0].len() > limit);
    }

    /// The sentinel maps to the typed `oversized` wire error, with the
    /// configured cap quoted in the message.
    #[test]
    fn sentinel_parses_to_a_typed_oversized_error(limit in 8usize..200) {
        let sentinel = vec![b'!'; limit + 1];
        let request = parse_or_reject(&sentinel, limit);
        let err = request.job.expect_err("oversized must not parse");
        prop_assert_eq!(err.kind, ErrorKind::Oversized);
        prop_assert!(err.message.contains(&limit.to_string()));
    }
}

#[test]
fn crlf_and_lf_requests_parse_identically() {
    // The framing layer keeps the `\r` (it splits on `\n` only); the
    // JSON layer treats it as trailing whitespace, so a CRLF client and
    // an LF client see identical responses.
    let limit = 512;
    let body = br#"{"v":1,"id":7,"job":{"kind":"ping"}}"#;
    let lf = read_first(&[body.as_slice(), b"\n"].concat(), limit).expect("lf line");
    let crlf = read_first(&[body.as_slice(), b"\r\n"].concat(), limit).expect("crlf line");
    assert_eq!(lf, body.as_slice());
    assert_eq!(crlf, [body.as_slice(), b"\r"].concat());
    let parsed_lf = parse_or_reject(&lf, limit);
    let parsed_crlf = parse_or_reject(&crlf, limit);
    assert!(parsed_lf.job.is_ok() && parsed_crlf.job.is_ok());
    assert_eq!(
        format!("{:?}", parsed_lf.job),
        format!("{:?}", parsed_crlf.job)
    );
    assert_eq!(
        format!("{:?}", parsed_lf.id),
        format!("{:?}", parsed_crlf.id)
    );
}

#[test]
fn a_crlf_line_at_the_cap_counts_the_cr_against_the_budget() {
    // `limit` bytes of payload plus the retained `\r` is limit+1 —
    // over the cap. The CR is real bytes on the wire; it must not get
    // a free pass.
    let limit = 16;
    let mut input = vec![b'x'; limit];
    input.extend_from_slice(b"\r\n");
    let got = read_first(&input, limit).expect("a line was read");
    assert!(got.len() > limit, "CR must count toward the cap");
}
