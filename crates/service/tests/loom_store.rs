//! Loom model check of the single-flight store protocol.
//!
//! Compile and run with the model-checked shims swapped in:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p leakage-service --test loom_store
//! ```
//!
//! Every test asserts its property on *every* explored interleaving
//! (including one injected spurious condvar wakeup per schedule):
//! racing askers compute each key exactly once, hit/miss totals are a
//! pure function of the request multiset, and a failed compute vacates
//! its `Pending` slot so later askers retry instead of hanging.
#![cfg(loom)]

use leakage_obs::{AggregatingRecorder, FakeClock, Instruments};
use leakage_service::store::{CacheConfig, CacheFamily};
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

#[test]
fn racing_askers_compute_once_with_schedule_free_counters() {
    loom::model(|| {
        let fam = Arc::new(CacheFamily::<u64>::for_model(CacheConfig::default()));
        let computes = Arc::new(AtomicUsize::new(0));
        let rec = Arc::new(AggregatingRecorder::new());
        let clock = Arc::new(FakeClock::new(1));

        let asker = |fam: &Arc<CacheFamily<u64>>| {
            let fam = Arc::clone(fam);
            let computes = Arc::clone(&computes);
            let rec = Arc::clone(&rec);
            let clock = Arc::clone(&clock);
            thread::spawn(move || {
                let ins = Instruments::new(&*rec, &*clock);
                let v = fam
                    .get_or_compute(7, ins, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        Ok::<u64, ()>(70)
                    })
                    .expect("compute never fails");
                assert_eq!(*v, 70);
            })
        };
        let t1 = asker(&fam);
        let t2 = asker(&fam);
        t1.join().expect("asker 1");
        t2.join().expect("asker 2");

        // The artifact is built exactly once on every schedule, and the
        // counters land schedule-free: misses == distinct keys (1),
        // hits == requests - distinct keys (1).
        assert_eq!(computes.load(Ordering::SeqCst), 1);
        assert_eq!(fam.len(), 1);
        let counters = rec.snapshot().counters;
        assert_eq!(counters.get("model.misses"), Some(&1));
        assert_eq!(counters.get("model.hits"), Some(&1));
    });
}

#[test]
fn failed_compute_vacates_the_slot_in_every_interleaving() {
    loom::model(|| {
        let fam = Arc::new(CacheFamily::<u64>::for_model(CacheConfig::default()));
        let asker = |fam: &Arc<CacheFamily<u64>>| {
            let fam = Arc::clone(fam);
            thread::spawn(move || {
                // Whether this thread owns the compute or waits on the
                // other's `Pending` slot, it must see the error: errors
                // are never cached, and a waiter whose owner failed
                // retries as a fresh asker (which fails again here).
                let r = fam.get_or_compute(1, Instruments::none(), || Err::<u64, &str>("nope"));
                assert_eq!(r.expect_err("compute always fails"), "nope");
            })
        };
        let t1 = asker(&fam);
        let t2 = asker(&fam);
        t1.join().expect("asker 1");
        t2.join().expect("asker 2");

        // No schedule may leave a stranded Pending slot behind...
        assert!(fam.is_empty());
        // ...so a later request retries and lands.
        let v = fam
            .get_or_compute(1, Instruments::none(), || Ok::<u64, &str>(9))
            .expect("retry lands");
        assert_eq!(*v, 9);
        assert_eq!(fam.len(), 1);
    });
}

#[test]
fn three_askers_two_keys_compute_once_per_key() {
    // Three threads exceed the default exhaustive budget comfortably;
    // bound involuntary preemptions at 2 (the classic bugs — lost
    // wakeups, double computes — all need at most 2).
    let schedules = loom::Builder {
        preemption_bound: Some(2),
        max_iterations: 500_000,
        spurious_budget: 1,
    }
    .check(|| {
        let fam = Arc::new(CacheFamily::<u64>::for_model(CacheConfig::default()));
        let computes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = [1u64, 1, 2]
            .iter()
            .map(|&key| {
                let fam = Arc::clone(&fam);
                let computes = Arc::clone(&computes);
                thread::spawn(move || {
                    let v = fam
                        .get_or_compute(key, Instruments::none(), || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            Ok::<u64, ()>(key + 100)
                        })
                        .expect("compute never fails");
                    assert_eq!(*v, key + 100);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("asker");
        }
        assert_eq!(computes.load(Ordering::SeqCst), 2);
        assert_eq!(fam.len(), 2);
    });
    assert!(schedules > 1, "the model explored only one schedule");
}
