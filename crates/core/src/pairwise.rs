//! Per-type-pair leakage covariance tables for the O(n²) reference
//! ("true leakage") computation.
//!
//! For a *specific placed design*, the variance is a double sum of
//! pairwise covariances `C_{m,n}(ρ_L(d_ab))` over all placed instances
//! (paper §3, the quadratic-cost reference the Random Gate model is
//! validated against). Evaluating the bivariate MGF for every one of the
//! `n²` pairs would be prohibitive, so covariance-vs-`ρ_L` curves are
//! pre-tabulated once per *type pair* in the design's support and
//! interpolated per instance pair.

use crate::error::CoreError;
use leakage_cells::corrmap::{cell_leakage_covariance, CorrelationPolicy};
use leakage_cells::library::CellId;
use leakage_cells::model::CharacterizedLibrary;
use leakage_cells::state::state_probabilities;
use leakage_numeric::interp::LinearInterp;
use leakage_numeric::Instruments;
use std::collections::BTreeMap;

/// Number of `ρ_L` knots per pair table (`2⁵ + 1`, so the knots are the
/// dyadic rationals `k/32` — exactly representable in `f64`, which lets the
/// tiled kernel's flat [`leakage_numeric::interp::UnitDyadicTables`] bank
/// reproduce [`LinearInterp`] evaluation bit-for-bit).
pub const PAIR_KNOTS: usize = 33;

/// Pre-tabulated pairwise covariance kernel over a support of cell types.
#[derive(Debug, Clone)]
pub struct PairwiseCovariance {
    /// Mixture mean per cell id (0 outside the support).
    ///
    /// Ordered maps keep iteration (and `Debug` output) independent of
    /// insertion order and the process hash seed.
    means: BTreeMap<CellId, f64>,
    /// Mixture std per cell id.
    stds: BTreeMap<CellId, f64>,
    /// Covariance tables per unordered type pair.
    tables: BTreeMap<(CellId, CellId), LinearInterp>,
    policy: CorrelationPolicy,
}

impl PairwiseCovariance {
    /// Builds tables for every unordered pair of types in `support`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for an empty or out-of-range
    /// support, and propagates cell-model failures (e.g. missing triplets
    /// under the exact policy).
    pub fn new(
        charlib: &CharacterizedLibrary,
        support: &[CellId],
        signal_probability: f64,
        policy: CorrelationPolicy,
    ) -> Result<PairwiseCovariance, CoreError> {
        PairwiseCovariance::new_instrumented(
            charlib,
            support,
            signal_probability,
            policy,
            Instruments::none(),
        )
    }

    /// [`PairwiseCovariance::new`] reporting to an injected [`Instruments`]:
    /// a span over the tabulation plus type-pair and MGF-evaluation (knot)
    /// counters.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`PairwiseCovariance::new`].
    pub fn new_instrumented(
        charlib: &CharacterizedLibrary,
        support: &[CellId],
        signal_probability: f64,
        policy: CorrelationPolicy,
        ins: Instruments<'_>,
    ) -> Result<PairwiseCovariance, CoreError> {
        let span = ins.span("core.pairwise_tabulate");
        if support.is_empty() {
            return Err(CoreError::InvalidArgument {
                reason: "support must contain at least one cell type".into(),
            });
        }
        let mut means = BTreeMap::new();
        let mut stds = BTreeMap::new();
        let mut cells_by_id = BTreeMap::new();
        let mut probs_by_id: BTreeMap<CellId, Vec<f64>> = BTreeMap::new();
        for id in support {
            let cell = charlib
                .cell(*id)
                .ok_or_else(|| CoreError::InvalidArgument {
                    reason: format!("cell id {} outside characterized library", id.0),
                })?;
            let probs = state_probabilities(cell.n_inputs, signal_probability)?;
            let (m, s) = cell.mixture_stats(&probs)?;
            means.insert(*id, m);
            stds.insert(*id, s);
            cells_by_id.insert(*id, cell);
            probs_by_id.insert(*id, probs);
        }
        let mut tables = BTreeMap::new();
        for (i, m) in support.iter().enumerate() {
            for n in &support[i..] {
                let key = if m.0 <= n.0 { (*m, *n) } else { (*n, *m) };
                if tables.contains_key(&key) {
                    continue;
                }
                let cm = cells_by_id[&key.0];
                let cn = cells_by_id[&key.1];
                let pm = &probs_by_id[&key.0];
                let pn = &probs_by_id[&key.1];
                let mut knots = Vec::with_capacity(PAIR_KNOTS);
                let mut values = Vec::with_capacity(PAIR_KNOTS);
                for k in 0..PAIR_KNOTS {
                    let rho = k as f64 / (PAIR_KNOTS - 1) as f64;
                    let cov =
                        cell_leakage_covariance(cm, pm, cn, pn, charlib.l_sigma, rho, policy)?;
                    knots.push(rho);
                    values.push(cov);
                }
                tables.insert(key, LinearInterp::new(knots, values)?);
            }
        }
        ins.add("core.pairwise.types", means.len() as u64);
        ins.add("core.pairwise.tables", tables.len() as u64);
        ins.add(
            "core.pairwise.mgf_evals",
            (tables.len() * PAIR_KNOTS) as u64,
        );
        drop(span);
        Ok(PairwiseCovariance {
            means,
            stds,
            tables,
            policy,
        })
    }

    /// Mixture mean leakage of a type (A).
    ///
    /// # Panics
    ///
    /// Panics if the type is not in the support.
    pub fn mean(&self, id: CellId) -> f64 {
        // chipleak-lint: allow(l9): panic on unknown type is the documented support-membership contract
        self.means[&id]
    }

    /// Mixture leakage standard deviation of a type (A).
    ///
    /// # Panics
    ///
    /// Panics if the type is not in the support.
    pub fn std(&self, id: CellId) -> f64 {
        // chipleak-lint: allow(l9): panic on unknown type is the documented support-membership contract
        self.stds[&id]
    }

    /// Covariance between two *distinct instances* of types `m` and `n`
    /// whose channel-length correlation is `ρ_L` (clamped to `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if either type is not in the support.
    pub fn covariance(&self, m: CellId, n: CellId, rho_l: f64) -> f64 {
        let key = if m.0 <= n.0 { (m, n) } else { (n, m) };
        // chipleak-lint: allow(l9): panic on unknown type is the documented support-membership contract
        self.tables[&key].eval(rho_l.clamp(0.0, 1.0))
    }

    /// Raw covariance values at the [`PAIR_KNOTS`] uniform `ρ_L` knots for
    /// the unordered pair `(m, n)` — the exact numbers
    /// [`PairwiseCovariance::covariance`] interpolates between. Used to
    /// fill the tiled kernel's flat table bank without re-evaluating MGFs.
    ///
    /// # Panics
    ///
    /// Panics if either type is not in the support.
    pub fn table_values(&self, m: CellId, n: CellId) -> &[f64] {
        let key = if m.0 <= n.0 { (m, n) } else { (n, m) };
        // chipleak-lint: allow(l9): panic on unknown type is the documented support-membership contract
        self.tables[&key].values()
    }

    /// The correlation policy used to build the tables.
    pub fn policy(&self) -> CorrelationPolicy {
        self.policy
    }

    /// Types in the support, in ascending id order.
    pub fn support(&self) -> Vec<CellId> {
        self.means.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_cells::model::{CharacterizedCell, LeakageTriplet, StateModel};

    const SIGMA: f64 = 4.5;

    fn charlib() -> CharacterizedLibrary {
        let t1 = LeakageTriplet::new(1e-9, -0.06, 0.0009).unwrap();
        let t2 = LeakageTriplet::new(3e-9, -0.05, 0.0006).unwrap();
        let mk = |id: usize, t: LeakageTriplet| CharacterizedCell {
            id: CellId(id),
            name: format!("cell{id}"),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(SIGMA).unwrap(),
                std: t.std(SIGMA).unwrap(),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        };
        CharacterizedLibrary {
            cells: vec![mk(0, t1), mk(1, t2)],
            l_sigma: SIGMA,
        }
    }

    #[test]
    fn self_covariance_at_full_correlation_is_variance() {
        let lib = charlib();
        let pw =
            PairwiseCovariance::new(&lib, &[CellId(0), CellId(1)], 0.5, CorrelationPolicy::Exact)
                .unwrap();
        // Two distinct instances of the same single-state type at ρ_L = 1
        // share the same length, so covariance = that type's variance.
        let s0 = pw.std(CellId(0));
        let c = pw.covariance(CellId(0), CellId(0), 1.0);
        assert!((c - s0 * s0).abs() / (s0 * s0) < 1e-3, "{c} vs {}", s0 * s0);
    }

    #[test]
    fn covariance_is_symmetric_and_zero_at_rho0() {
        let lib = charlib();
        let pw =
            PairwiseCovariance::new(&lib, &[CellId(0), CellId(1)], 0.5, CorrelationPolicy::Exact)
                .unwrap();
        let ab = pw.covariance(CellId(0), CellId(1), 0.4);
        let ba = pw.covariance(CellId(1), CellId(0), 0.4);
        assert_eq!(ab, ba);
        assert!(pw.covariance(CellId(0), CellId(1), 0.0).abs() < 1e-30);
    }

    #[test]
    fn simplified_matches_closed_form() {
        let lib = charlib();
        let pw = PairwiseCovariance::new(
            &lib,
            &[CellId(0), CellId(1)],
            0.5,
            CorrelationPolicy::Simplified,
        )
        .unwrap();
        let expect = 0.7 * pw.std(CellId(0)) * pw.std(CellId(1));
        let got = pw.covariance(CellId(0), CellId(1), 0.7);
        assert!((got - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn rejects_empty_or_unknown_support() {
        let lib = charlib();
        assert!(PairwiseCovariance::new(&lib, &[], 0.5, CorrelationPolicy::Exact).is_err());
        assert!(
            PairwiseCovariance::new(&lib, &[CellId(7)], 0.5, CorrelationPolicy::Exact).is_err()
        );
    }

    #[test]
    fn stats_are_bit_identical_across_support_insertion_orders() {
        let lib = charlib();
        let fwd =
            PairwiseCovariance::new(&lib, &[CellId(0), CellId(1)], 0.5, CorrelationPolicy::Exact)
                .unwrap();
        let rev =
            PairwiseCovariance::new(&lib, &[CellId(1), CellId(0)], 0.5, CorrelationPolicy::Exact)
                .unwrap();
        assert_eq!(fwd.support(), rev.support());
        for id in fwd.support() {
            assert_eq!(fwd.mean(id).to_bits(), rev.mean(id).to_bits());
            assert_eq!(fwd.std(id).to_bits(), rev.std(id).to_bits());
        }
        for rho in [0.0, 0.25, 0.5, 0.99] {
            for (m, n) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                let a = fwd.covariance(CellId(m), CellId(n), rho);
                let b = rev.covariance(CellId(m), CellId(n), rho);
                assert_eq!(a.to_bits(), b.to_bits(), "pair ({m},{n}) at rho={rho}");
            }
        }
    }

    #[test]
    fn support_listing() {
        let lib = charlib();
        let pw = PairwiseCovariance::new(
            &lib,
            &[CellId(1), CellId(0)],
            0.5,
            CorrelationPolicy::Simplified,
        )
        .unwrap();
        assert_eq!(pw.support(), vec![CellId(0), CellId(1)]);
    }
}
